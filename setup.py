"""Legacy setup shim.

The offline environment used for this reproduction has setuptools but no
``wheel`` package, so PEP 660 editable installs (``pip install -e .``) cannot
build the editable wheel.  ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation`` on systems with ``wheel`` available) keeps working via
this shim; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
