"""repro — reproduction of *Optimal State Preparation for Logical Arrays on
Zoned Neutral Atom Quantum Computers* (DATE 2025).

The package is organised as a stack of self-contained substrates with the
paper's contribution on top:

``repro.sat``
    A CDCL SAT solver (the decision procedure underlying the SMT layer).
``repro.smt``
    A quantifier-free finite-domain SMT layer (bounded integers and booleans)
    bit-blasted onto the SAT core.  This replaces Z3 in the paper.
``repro.qec``
    Stabilizer codes, the six evaluation codes, and graph-state based
    state-preparation circuit synthesis (the STABGRAPH step of the paper).
``repro.simulator``
    A stabilizer (tableau) simulator used to verify circuits and schedules.
``repro.circuit``
    A small quantum-circuit IR (|+>-init, CZ layers, final Hadamards).
``repro.arch``
    The zoned neutral-atom architecture model: zones, geometry, AOD rules and
    the hardware figures of merit from the paper's Sec. V-A.
``repro.core``
    The paper's contribution: symbolic formulation (V1-V3), constraints
    (C1-C6), and the optimal state-preparation scheduler plus structured and
    greedy baselines.
``repro.metrics``
    Execution-time model and Approximated Success Probability (ASP).
``repro.evaluation``
    The harness regenerating Table I and Figure 4.
"""

from repro._version import __version__

__all__ = ["__version__"]
