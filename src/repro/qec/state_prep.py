"""Generation of logical-|0> state-preparation circuits.

Ties together the QEC substrate: take a code, form the stabilizer generators
of its logical |0...0>_L state (code stabilizers plus logical-Z operators),
reduce to a graph state and emit the rigid circuit structure of the paper's
Fig. 1b (``|+>`` inits, CZ list, final single-qubit corrections).
"""

from __future__ import annotations

from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.qec.graph_state import stabilizer_state_to_graph_state
from repro.qec.stabilizer_code import StabilizerCode


def state_preparation_circuit(code: StabilizerCode) -> StatePrepCircuit:
    """Return a state-preparation circuit for the logical |0...0>_L of *code*.

    The circuit prepares the stabilizer state fixed by the code stabilizers
    together with the canonical logical-Z operators; its CZ count is the
    "#CZ" column of the paper's Table I.
    """
    generators = code.zero_state_stabilizers()
    decomposition = stabilizer_state_to_graph_state(generators)
    return StatePrepCircuit(
        num_qubits=code.num_qubits,
        cz_gates=list(decomposition.edges),
        local_corrections=dict(decomposition.local_corrections),
        name=code.name,
    )
