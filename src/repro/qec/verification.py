"""Verification helpers for state-preparation circuits.

These helpers close the loop between the QEC substrate and the simulator:
they run a (flat or structured) state-preparation circuit on the tableau
simulator and check that the resulting state is stabilized by all code
stabilizers and by the logical-Z operators (i.e. that it really is the
logical |0...0>_L state).
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.qec.stabilizer_code import StabilizerCode
from repro.simulator.tableau import TableauSimulator


def simulate_state_prep(circuit: Circuit) -> TableauSimulator:
    """Run *circuit* from |0...0> and return the resulting simulator state."""
    simulator = TableauSimulator(circuit.num_qubits)
    simulator.run_circuit(circuit)
    return simulator


def prepares_logical_zero(
    circuit: Circuit | StatePrepCircuit, code: StabilizerCode
) -> bool:
    """True when *circuit* prepares the logical |0...0>_L state of *code*.

    The check requires the prepared state to be stabilized by every code
    stabilizer *and* by every canonical logical-Z operator, which pins the
    state uniquely within the code space.
    """
    flat = circuit.to_circuit() if isinstance(circuit, StatePrepCircuit) else circuit
    if flat.num_qubits != code.num_qubits:
        return False
    simulator = simulate_state_prep(flat)
    for stabilizer in code.stabilizers:
        if not simulator.is_stabilized_by(stabilizer):
            return False
    for logical in code.logical_z_operators():
        if not simulator.is_stabilized_by(logical):
            return False
    return True


def stabilized_violations(
    circuit: Circuit | StatePrepCircuit, code: StabilizerCode
) -> list[str]:
    """Diagnostic variant of :func:`prepares_logical_zero`.

    Returns the labels of all code stabilizers / logical-Z operators that do
    not stabilize the prepared state (empty list means success).
    """
    flat = circuit.to_circuit() if isinstance(circuit, StatePrepCircuit) else circuit
    simulator = simulate_state_prep(flat)
    violations: list[str] = []
    for stabilizer in code.stabilizers:
        if not simulator.is_stabilized_by(stabilizer):
            violations.append(f"stabilizer {stabilizer.to_label()}")
    for logical in code.logical_z_operators():
        if not simulator.is_stabilized_by(logical):
            violations.append(f"logical-Z {logical.to_label()}")
    return violations
