"""Pauli strings in binary-symplectic representation.

A Pauli operator on ``n`` qubits is stored as two binary vectors ``x`` and
``z`` plus a phase exponent ``p`` (power of ``i``), representing

    P = i^p * prod_j X_j^{x_j} Z_j^{z_j}.

With this convention ``Y = i X Z`` has ``(x, z, p) = (1, 1, 1)``.  The class
supports multiplication, commutation checks, single-qubit Clifford
conjugation (H, S, S†, X, Y, Z) and CZ/CX conjugation — everything needed by
the graph-state reduction and the tableau-free verification paths.
"""

from __future__ import annotations

import numpy as np

_SINGLE_LABELS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_LABELS_BY_BITS = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


class PauliString:
    """An n-qubit Pauli operator with an explicit ``i^p`` phase."""

    __slots__ = ("x", "z", "phase")

    def __init__(self, x: np.ndarray, z: np.ndarray, phase: int = 0) -> None:
        self.x = np.asarray(x, dtype=np.uint8) % 2
        self.z = np.asarray(z, dtype=np.uint8) % 2
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be 1-D arrays of identical length")
        self.phase = int(phase) % 4

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity operator on *num_qubits* qubits."""
        zeros = np.zeros(num_qubits, dtype=np.uint8)
        return cls(zeros, zeros.copy(), 0)

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "PauliString":
        """Create from a label such as ``"XZIIY"`` (qubit 0 first).

        The *phase* argument is the sign exponent of the labelled operator
        (0 for ``+``, 2 for ``-``); the internal ``i`` factors of Y tensor
        components are accounted for automatically.
        """
        x = np.zeros(len(label), dtype=np.uint8)
        z = np.zeros(len(label), dtype=np.uint8)
        internal_phase = phase
        for i, char in enumerate(label.upper()):
            if char not in _SINGLE_LABELS:
                raise ValueError(f"invalid Pauli character {char!r}")
            x[i], z[i] = _SINGLE_LABELS[char]
            if char == "Y":
                internal_phase += 1
        return cls(x, z, internal_phase)

    @classmethod
    def from_support(
        cls, num_qubits: int, kind: str, support: "list[int] | tuple[int, ...]"
    ) -> "PauliString":
        """Create ``X``/``Y``/``Z`` acting on the given *support* qubits."""
        if kind.upper() not in ("X", "Y", "Z"):
            raise ValueError("kind must be X, Y or Z")
        x = np.zeros(num_qubits, dtype=np.uint8)
        z = np.zeros(num_qubits, dtype=np.uint8)
        phase = 0
        for qubit in support:
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
            sx, sz = _SINGLE_LABELS[kind.upper()]
            x[qubit], z[qubit] = sx, sz
            if kind.upper() == "Y":
                phase += 1
        return cls(x, z, phase)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self.x | self.z))

    @property
    def support(self) -> list[int]:
        """Indices of qubits with a non-identity factor."""
        return list(np.nonzero(self.x | self.z)[0])

    @property
    def symplectic(self) -> np.ndarray:
        """The concatenated ``[x | z]`` binary vector."""
        return np.concatenate([self.x, self.z])

    @property
    def sign(self) -> complex:
        """The scalar prefactor ``i^phase``."""
        return (1j) ** self.phase

    def is_identity(self) -> bool:
        """True for the (possibly phased) identity operator."""
        return self.weight == 0

    def to_label(self) -> str:
        """Label such as ``"+XZY"`` including the sign prefix."""
        prefix = {0: "+", 1: "+i", 2: "-", 3: "-i"}[self.phase_without_y_convention()]
        body = "".join(
            _LABELS_BY_BITS[(int(xi), int(zi))] for xi, zi in zip(self.x, self.z)
        )
        return prefix + body

    def phase_without_y_convention(self) -> int:
        """Phase exponent with the ``i`` factors of Y absorbed.

        ``from_label("Y")`` has internal phase 1 because ``Y = i X Z``; for
        display we want that operator to read ``+Y``.
        """
        y_count = int(np.count_nonzero(self.x & self.z))
        return (self.phase - y_count) % 4

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot multiply Pauli strings of different sizes")
        # X^x Z^z * X^x' Z^z' picks up (-1)^(z . x') when commuting Z past X.
        anti = int(np.dot(self.z, other.x)) % 2
        phase = (self.phase + other.phase + 2 * anti) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two operators commute."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("operator size mismatch")
        symplectic_product = (
            int(np.dot(self.x, other.z)) + int(np.dot(self.z, other.x))
        ) % 2
        return symplectic_product == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
            and self.phase == other.phase
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    def __repr__(self) -> str:
        return f"PauliString({self.to_label()!r})"

    def copy(self) -> "PauliString":
        """Return an independent copy."""
        return PauliString(self.x.copy(), self.z.copy(), self.phase)

    # ------------------------------------------------------------------ #
    # Clifford conjugation:  P  ->  U P U†
    # ------------------------------------------------------------------ #
    def apply_h(self, qubit: int) -> None:
        """Conjugate by a Hadamard on *qubit* (in place)."""
        xq, zq = int(self.x[qubit]), int(self.z[qubit])
        # H X H = Z, H Z H = X, H Y H = -Y.
        self.phase = (self.phase + 2 * xq * zq) % 4
        self.x[qubit], self.z[qubit] = zq, xq

    def apply_s(self, qubit: int) -> None:
        """Conjugate by the phase gate S on *qubit* (in place)."""
        xq = int(self.x[qubit])
        # S X S† = Y (= iXZ), S Z S† = Z.
        self.phase = (self.phase + xq) % 4
        self.z[qubit] ^= xq

    def apply_sdg(self, qubit: int) -> None:
        """Conjugate by S† on *qubit* (in place)."""
        xq = int(self.x[qubit])
        # S† X S = -Y, S† Z S = Z.
        self.phase = (self.phase - xq) % 4
        self.z[qubit] ^= xq

    def apply_x(self, qubit: int) -> None:
        """Conjugate by Pauli X on *qubit* (in place)."""
        self.phase = (self.phase + 2 * int(self.z[qubit])) % 4

    def apply_z(self, qubit: int) -> None:
        """Conjugate by Pauli Z on *qubit* (in place)."""
        self.phase = (self.phase + 2 * int(self.x[qubit])) % 4

    def apply_y(self, qubit: int) -> None:
        """Conjugate by Pauli Y on *qubit* (in place)."""
        self.apply_x(qubit)
        self.apply_z(qubit)

    def apply_cz(self, a: int, b: int) -> None:
        """Conjugate by CZ on qubits *a*, *b* (in place).

        CZ maps X_a -> X_a Z_b, X_b -> X_b Z_a, Z unchanged, and introduces a
        -1 phase when both X components are present (CZ (X⊗X) CZ = Y⊗Y).
        """
        xa, xb = int(self.x[a]), int(self.x[b])
        self.z[b] ^= xa
        self.z[a] ^= xb
        self.phase = (self.phase + 2 * (xa & xb)) % 4

    def apply_cx(self, control: int, target: int) -> None:
        """Conjugate by CNOT (in place)."""
        # X_c -> X_c X_t, Z_t -> Z_c Z_t; phase change when both X_c Z_t and
        # (x_t z_c terms) align (standard tableau update).
        xc, zc = int(self.x[control]), int(self.z[control])
        xt, zt = int(self.x[target]), int(self.z[target])
        self.phase = (self.phase + 2 * (xc * zt * (xt ^ zc ^ 1))) % 4
        self.x[target] ^= xc
        self.z[control] ^= zt
