"""Stabilizer-state → graph-state reduction.

This module plays the role of the STABGRAPH tool referenced by the paper: it
takes the ``n`` stabilizer generators of the target state (code stabilizers
plus logical-Z operators) and produces

* a graph ``G`` (the CZ gates of the preparation circuit are exactly the
  edges of ``G``), and
* a single-qubit Clifford correction per qubit (Hadamards for the qubits
  whose X-rank had to be completed, phase gates for self-loops, Pauli-Z/X
  corrections for sign fixing),

such that the target state equals the corrections applied to the graph state
``|G> = prod_{(a,b) in E} CZ_ab |+>^n``.

The reduction is the textbook binary-symplectic Gaussian elimination (every
stabilizer state is local-Clifford equivalent to a graph state); phases are
tracked exactly so that the resulting circuit can be verified gate-by-gate
with the tableau simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.gates import GateKind
from repro.qec.pauli import PauliString


@dataclass
class GraphStateDecomposition:
    """Result of the graph-state reduction.

    Attributes
    ----------
    num_qubits:
        Number of physical qubits.
    edges:
        Graph edges; each edge corresponds to one CZ gate of the
        state-preparation circuit.
    local_corrections:
        Per-qubit tuple of gate kinds applied (in order) *after* the graph
        state has been created.
    hadamard_qubits:
        Qubits whose correction includes the Hadamard produced by the
        X-rank completion step (the "H qubits" of the paper's Fig. 1b).
    """

    num_qubits: int
    edges: list[tuple[int, int]]
    local_corrections: dict[int, tuple[GateKind, ...]] = field(default_factory=dict)
    hadamard_qubits: list[int] = field(default_factory=list)

    @property
    def num_cz_gates(self) -> int:
        """Number of CZ gates needed to create the graph state."""
        return len(self.edges)

    def adjacency_matrix(self) -> np.ndarray:
        """Adjacency matrix of the graph."""
        adjacency = np.zeros((self.num_qubits, self.num_qubits), dtype=np.uint8)
        for a, b in self.edges:
            adjacency[a, b] = adjacency[b, a] = 1
        return adjacency


class _Tableau:
    """Mutable stabilizer-generator tableau with exact phase tracking."""

    def __init__(self, generators: Sequence[PauliString]) -> None:
        self.rows = [g.copy() for g in generators]
        self.n = generators[0].num_qubits

    def multiply_row(self, target: int, source: int) -> None:
        """Replace row *target* by row[source] * row[target]."""
        self.rows[target] = self.rows[source] * self.rows[target]

    def apply_h(self, qubit: int) -> None:
        for row in self.rows:
            row.apply_h(qubit)

    def apply_s(self, qubit: int) -> None:
        for row in self.rows:
            row.apply_s(qubit)

    def apply_z(self, qubit: int) -> None:
        for row in self.rows:
            row.apply_z(qubit)

    def x_matrix(self) -> np.ndarray:
        return np.vstack([row.x for row in self.rows])

    def z_matrix(self) -> np.ndarray:
        return np.vstack([row.z for row in self.rows])


def _gauss_x_block(tableau: _Tableau) -> list[int]:
    """Row-reduce the X block; return the pivot columns (qubits)."""
    n = tableau.n
    pivot_cols: list[int] = []
    row_index = 0
    for col in range(n):
        pivot = None
        for i in range(row_index, len(tableau.rows)):
            if tableau.rows[i].x[col]:
                pivot = i
                break
        if pivot is None:
            continue
        tableau.rows[row_index], tableau.rows[pivot] = (
            tableau.rows[pivot],
            tableau.rows[row_index],
        )
        for i in range(len(tableau.rows)):
            if i != row_index and tableau.rows[i].x[col]:
                tableau.multiply_row(i, row_index)
        pivot_cols.append(col)
        row_index += 1
    return pivot_cols


def stabilizer_state_to_graph_state(
    generators: Sequence[PauliString],
) -> GraphStateDecomposition:
    """Reduce a stabilizer *state* (n generators on n qubits) to a graph state.

    Raises
    ------
    ValueError
        If the generators do not describe a state (wrong count, not
        commuting, or not independent).
    """
    if not generators:
        raise ValueError("no generators given")
    n = generators[0].num_qubits
    if len(generators) != n:
        raise ValueError(
            f"a stabilizer state on {n} qubits needs exactly {n} generators, "
            f"got {len(generators)}"
        )
    for i, a in enumerate(generators):
        for b in generators[i + 1 :]:
            if not a.commutes_with(b):
                raise ValueError("state generators must commute")

    tableau = _Tableau(generators)
    corrections: dict[int, list[GateKind]] = {q: [] for q in range(n)}

    # Step 1: make the X block full rank.  Qubits outside the pivot set of
    # the X block receive a Hadamard (swapping their X/Z columns).
    pivots = _gauss_x_block(tableau)
    hadamard_qubits = [q for q in range(n) if q not in pivots]
    for qubit in hadamard_qubits:
        tableau.apply_h(qubit)
    pivots = _gauss_x_block(tableau)
    if len(pivots) != n:
        raise ValueError("generators are not independent (X-rank completion failed)")

    # Step 2: the X block is now an invertible matrix in row-echelon form
    # with pivot columns in increasing order; full Gaussian elimination in
    # _gauss_x_block already normalised it to the identity (pivot columns
    # are cleared in all other rows).  Reorder rows so that row i has its X
    # pivot on qubit i.
    order = sorted(range(n), key=lambda i: int(np.argmax(tableau.rows[i].x)))
    tableau.rows = [tableau.rows[i] for i in order]

    # Step 3: remove self-loops (Z on the pivot qubit of its own row) with
    # S† gates, i.e. generators of the form Y_i ... become X_i ....
    for qubit in range(n):
        if tableau.rows[qubit].z[qubit]:
            # Apply S on the state; it maps the Y_i at the pivot to an X_i
            # and thereby removes the self-loop.
            tableau.apply_s(qubit)
            corrections[qubit].append(GateKind.S)

    # Step 4: fix signs.  Each generator is now X_i Z_{N(i)} with phase ±1;
    # applying Z_i on the state flips the sign of generator i only.
    for qubit in range(n):
        phase = tableau.rows[qubit].phase
        if phase % 2 != 0:
            raise ValueError("unexpected imaginary phase in reduced tableau")
        if phase == 2:
            tableau.apply_z(qubit)
            corrections[qubit].append(GateKind.Z)

    # The tableau now describes a graph state exactly; read off the edges.
    adjacency = tableau.z_matrix()
    x_block = tableau.x_matrix()
    if not np.array_equal(x_block, np.eye(n, dtype=np.uint8)):
        raise AssertionError("internal error: X block is not the identity")
    if not np.array_equal(adjacency, adjacency.T) or adjacency.diagonal().any():
        raise AssertionError("internal error: Z block is not a graph adjacency matrix")
    if any(row.phase != 0 for row in tableau.rows):
        raise AssertionError("internal error: residual phases after sign fixing")

    edges = [
        (a, b) for a in range(n) for b in range(a + 1, n) if adjacency[a, b]
    ]

    # The operations recorded above were applied *to the state* to turn it
    # into the graph state:  (Z layer)(S layer)(H layer) |psi> = |G>.
    # Hence |psi> = (H layer)† (S layer)† (Z layer)† |G>; the emitted circuit
    # therefore applies, per qubit, the recorded gates inverted and in
    # reverse chronological order (Z first, then S†, then H).
    final_corrections: dict[int, tuple[GateKind, ...]] = {}
    inverse = {
        GateKind.SDG: GateKind.S,
        GateKind.S: GateKind.SDG,
        GateKind.Z: GateKind.Z,
        GateKind.X: GateKind.X,
        GateKind.H: GateKind.H,
    }
    for qubit in range(n):
        applied = ([GateKind.H] if qubit in hadamard_qubits else []) + corrections[qubit]
        sequence = [inverse[kind] for kind in reversed(applied)]
        if sequence:
            final_corrections[qubit] = tuple(sequence)

    return GraphStateDecomposition(
        num_qubits=n,
        edges=edges,
        local_corrections=final_corrections,
        hadamard_qubits=sorted(hadamard_qubits),
    )
