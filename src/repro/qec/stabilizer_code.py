"""Stabilizer and CSS code types.

A :class:`StabilizerCode` is defined by a list of independent, commuting
Pauli generators.  :class:`CSSCode` specialises the construction to a pair of
binary parity-check matrices ``Hx`` (X-type checks) and ``Hz`` (Z-type
checks) with ``Hx @ Hz.T = 0`` and provides canonical logical operators and
exhaustive distance computation for the code sizes used in the paper.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.qec import gf2
from repro.qec.pauli import PauliString


class StabilizerCode:
    """An [[n, k, d]] stabilizer code given by its generators."""

    def __init__(
        self,
        stabilizers: Sequence[PauliString],
        name: str = "",
        distance: int | None = None,
    ) -> None:
        if not stabilizers:
            raise ValueError("a stabilizer code needs at least one generator")
        num_qubits = stabilizers[0].num_qubits
        for stabilizer in stabilizers:
            if stabilizer.num_qubits != num_qubits:
                raise ValueError("stabilizers act on different numbers of qubits")
        for i, a in enumerate(stabilizers):
            for b in stabilizers[i + 1 :]:
                if not a.commutes_with(b):
                    raise ValueError(
                        f"stabilizers do not commute: {a.to_label()} vs {b.to_label()}"
                    )
        symplectic = np.vstack([s.symplectic for s in stabilizers])
        if gf2.rank(symplectic) != len(stabilizers):
            raise ValueError("stabilizer generators are not independent")
        self._stabilizers = [s.copy() for s in stabilizers]
        self._name = name or "stabilizer-code"
        self._declared_distance = distance

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable code name."""
        return self._name

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits (n)."""
        return self._stabilizers[0].num_qubits

    @property
    def num_logical_qubits(self) -> int:
        """Number of logical qubits (k = n - number of generators)."""
        return self.num_qubits - len(self._stabilizers)

    @property
    def stabilizers(self) -> list[PauliString]:
        """The stabilizer generators."""
        return [s.copy() for s in self._stabilizers]

    @property
    def declared_distance(self) -> int | None:
        """The code distance claimed at construction time (if any)."""
        return self._declared_distance

    def parameters(self) -> tuple[int, int, int | None]:
        """The [[n, k, d]] triple (d may be None when not declared)."""
        return (self.num_qubits, self.num_logical_qubits, self._declared_distance)

    def __repr__(self) -> str:
        n, k, d = self.parameters()
        return f"{type(self).__name__}(name={self._name!r}, n={n}, k={k}, d={d})"

    # ------------------------------------------------------------------ #
    def logical_z_operators(self) -> list[PauliString]:
        """Canonical logical-Z operators (k of them).

        Generic implementation via the symplectic Gaussian-elimination
        recipe: find Z-type-or-mixed operators commuting with every
        stabilizer that are independent of the stabilizer group.  Subclasses
        (CSS) override this with the cleaner CSS-specific construction.
        """
        n = self.num_qubits
        stab_matrix = np.vstack([s.symplectic for s in self._stabilizers])
        # Operators commuting with all stabilizers form the kernel of the
        # symplectic product map.
        omega = np.zeros((2 * n, 2 * n), dtype=np.uint8)
        omega[:n, n:] = np.eye(n, dtype=np.uint8)
        omega[n:, :n] = np.eye(n, dtype=np.uint8)
        commutant_basis = gf2.nullspace((stab_matrix @ omega) % 2)
        logicals: list[PauliString] = []
        accumulated = stab_matrix
        for row in commutant_basis:
            if gf2.row_space_contains(accumulated, row):
                continue
            candidate = PauliString(row[:n], row[n:])
            # Prefer pure-Z representatives when possible.
            logicals.append(candidate)
            accumulated = np.vstack([accumulated, row])
            if len(logicals) == self.num_logical_qubits:
                break
        return logicals

    def zero_state_stabilizers(self) -> list[PauliString]:
        """Generators of the logical |0...0>_L state (stabilizers + logical Zs)."""
        return self.stabilizers + self.logical_z_operators()


class CSSCode(StabilizerCode):
    """A CSS code built from parity-check matrices ``Hx`` and ``Hz``."""

    def __init__(
        self,
        hx: np.ndarray,
        hz: np.ndarray,
        name: str = "",
        distance: int | None = None,
    ) -> None:
        hx = np.asarray(hx, dtype=np.uint8) % 2
        hz = np.asarray(hz, dtype=np.uint8) % 2
        if hx.ndim != 2 or hz.ndim != 2 or hx.shape[1] != hz.shape[1]:
            raise ValueError("Hx and Hz must be matrices over the same qubit count")
        if ((hx @ hz.T) % 2).any():
            raise ValueError("Hx @ Hz^T must vanish for a CSS code")
        hx = gf2.independent_rows(hx)
        hz = gf2.independent_rows(hz)
        self._hx = hx
        self._hz = hz
        n = hx.shape[1]
        stabilizers = [
            PauliString(row, np.zeros(n, dtype=np.uint8)) for row in hx
        ] + [PauliString(np.zeros(n, dtype=np.uint8), row) for row in hz]
        super().__init__(stabilizers, name=name, distance=distance)

    # ------------------------------------------------------------------ #
    @property
    def hx(self) -> np.ndarray:
        """X-type parity-check matrix (rows are X stabilizer supports)."""
        return self._hx.copy()

    @property
    def hz(self) -> np.ndarray:
        """Z-type parity-check matrix (rows are Z stabilizer supports)."""
        return self._hz.copy()

    @property
    def x_stabilizers(self) -> list[PauliString]:
        """The X-type stabilizer generators."""
        n = self.num_qubits
        return [PauliString(row, np.zeros(n, dtype=np.uint8)) for row in self._hx]

    @property
    def z_stabilizers(self) -> list[PauliString]:
        """The Z-type stabilizer generators."""
        n = self.num_qubits
        return [PauliString(np.zeros(n, dtype=np.uint8), row) for row in self._hz]

    # ------------------------------------------------------------------ #
    def logical_z_operators(self) -> list[PauliString]:
        """Pure-Z logical operators: ker(Hx) modulo rowspace(Hz)."""
        n = self.num_qubits
        kernel = gf2.nullspace(self._hx)
        logicals: list[PauliString] = []
        accumulated = self._hz.copy() if self._hz.size else np.zeros((0, n), np.uint8)
        for row in kernel:
            if gf2.row_space_contains(accumulated, row):
                continue
            logicals.append(PauliString(np.zeros(n, dtype=np.uint8), row))
            accumulated = np.vstack([accumulated, row])
            if len(logicals) == self.num_logical_qubits:
                break
        return logicals

    def logical_x_operators(self) -> list[PauliString]:
        """Pure-X logical operators: ker(Hz) modulo rowspace(Hx)."""
        n = self.num_qubits
        kernel = gf2.nullspace(self._hz)
        logicals: list[PauliString] = []
        accumulated = self._hx.copy() if self._hx.size else np.zeros((0, n), np.uint8)
        for row in kernel:
            if gf2.row_space_contains(accumulated, row):
                continue
            logicals.append(PauliString(row, np.zeros(n, dtype=np.uint8)))
            accumulated = np.vstack([accumulated, row])
            if len(logicals) == self.num_logical_qubits:
                break
        return logicals

    # ------------------------------------------------------------------ #
    def compute_distance(self, max_weight: int | None = None) -> int | None:
        """Exhaustively compute the code distance.

        The distance of a CSS code is the minimum weight of a codeword of
        ``ker(Hz) \\ rowspace(Hx)`` (X-type logicals) or
        ``ker(Hx) \\ rowspace(Hz)`` (Z-type logicals).  The kernels of the
        evaluation codes are small enough (≤ 2^11 elements) to enumerate.
        Returns ``None`` when only weights up to *max_weight* were examined
        and no logical operator was found.
        """
        dx = self._min_logical_weight(self._hz, self._hx, max_weight)
        dz = self._min_logical_weight(self._hx, self._hz, max_weight)
        if dx is None or dz is None:
            return None
        return min(dx, dz)

    def _min_logical_weight(
        self,
        kernel_of: np.ndarray,
        modulo: np.ndarray,
        max_weight: int | None,
    ) -> int | None:
        kernel = gf2.nullspace(kernel_of)
        if kernel.shape[0] == 0:
            return None
        best: int | None = None
        dimension = kernel.shape[0]
        if dimension > 22:  # pragma: no cover - guard for misuse on huge codes
            raise ValueError("kernel too large for exhaustive distance computation")
        for count in range(1, dimension + 1):
            for combo in itertools.combinations(range(dimension), count):
                word = np.bitwise_xor.reduce(kernel[list(combo)], axis=0)
                weight = int(word.sum())
                if best is not None and weight >= best:
                    continue
                if max_weight is not None and weight > max_weight:
                    continue
                if not gf2.row_space_contains(modulo, word):
                    best = weight
        return best
