"""Dense linear algebra over GF(2).

All functions operate on ``numpy`` arrays with values in {0, 1} and dtype
``uint8``/``int``; they never modify their inputs.
"""

from __future__ import annotations

import numpy as np


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.uint8) % 2
    if array.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return array.copy()


def rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns the reduced matrix and the list of pivot column indices.
    """
    array = _as_matrix(matrix)
    rows, cols = array.shape
    pivot_cols: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot = None
        for i in range(r, rows):
            if array[i, c]:
                pivot = i
                break
        if pivot is None:
            continue
        array[[r, pivot]] = array[[pivot, r]]
        for i in range(rows):
            if i != r and array[i, c]:
                array[i] ^= array[r]
        pivot_cols.append(c)
        r += 1
    return array, pivot_cols


def rank(matrix: np.ndarray) -> int:
    """Rank of *matrix* over GF(2)."""
    if np.asarray(matrix).size == 0:
        return 0
    _, pivots = rref(matrix)
    return len(pivots)


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right null space of *matrix* (rows are basis vectors)."""
    array = _as_matrix(matrix)
    rows, cols = array.shape
    reduced, pivots = rref(array)
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for row, pivot in enumerate(pivots):
            if reduced[row, free]:
                basis[i, pivot] = 1
    return basis


def row_space_contains(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """True when *vector* lies in the row space of *matrix*."""
    array = _as_matrix(matrix)
    vec = np.asarray(vector, dtype=np.uint8) % 2
    if array.size == 0:
        return not vec.any()
    stacked = np.vstack([array, vec])
    return rank(stacked) == rank(array)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Express *rhs* as a GF(2) combination of the rows of *matrix*.

    Finds a row vector ``x`` such that ``x @ matrix == rhs`` (mod 2).
    Returns ``None`` when no solution exists.
    """
    array = _as_matrix(matrix)
    vec = np.asarray(rhs, dtype=np.uint8) % 2
    rows, cols = array.shape
    if vec.shape != (cols,):
        raise ValueError("dimension mismatch between matrix and rhs")
    # Solve A^T y = rhs by Gaussian elimination on the augmented matrix.
    augmented = np.concatenate([array.T, vec.reshape(-1, 1)], axis=1).astype(np.uint8)
    reduced, pivots = rref(augmented)
    # Inconsistent system: a pivot in the augmentation column.
    if rows in pivots:
        return None
    solution = np.zeros(rows, dtype=np.uint8)
    for row, pivot in enumerate(pivots):
        if pivot == rows:
            return None
        if pivot < rows:
            solution[pivot] = reduced[row, -1]
    # Verify (guards against free-variable corner cases).
    if not np.array_equal((solution @ array) % 2, vec):
        return None
    return solution


def independent_rows(matrix: np.ndarray) -> np.ndarray:
    """Return a maximal set of linearly independent rows (in original order)."""
    array = _as_matrix(matrix)
    kept: list[np.ndarray] = []
    current_rank = 0
    for row in array:
        candidate = np.vstack(kept + [row]) if kept else row.reshape(1, -1)
        new_rank = rank(candidate)
        if new_rank > current_rank:
            kept.append(row)
            current_rank = new_rank
    if not kept:
        return np.zeros((0, array.shape[1]), dtype=np.uint8)
    return np.vstack(kept)
