"""Quantum error correction substrate.

Provides the stabilizer-code machinery needed to generate the paper's inputs:

* :mod:`repro.qec.gf2` — dense GF(2) linear algebra,
* :mod:`repro.qec.pauli` — Pauli strings in binary-symplectic form,
* :mod:`repro.qec.stabilizer_code` — general stabilizer codes and CSS codes,
* :mod:`repro.qec.codes` — the six codes of the paper's evaluation,
* :mod:`repro.qec.graph_state` — stabilizer-state → graph-state reduction
  (the role of the STABGRAPH tool in the paper),
* :mod:`repro.qec.state_prep` — generation of |0>_L state-preparation
  circuits in the Fig. 1b format.
"""

from repro.qec.pauli import PauliString
from repro.qec.stabilizer_code import CSSCode, StabilizerCode
from repro.qec.codes import (
    available_codes,
    get_code,
    hamming_code,
    honeycomb_code,
    shor_code,
    steane_code,
    surface_code,
    tetrahedral_code,
)
from repro.qec.graph_state import GraphStateDecomposition, stabilizer_state_to_graph_state
from repro.qec.state_prep import state_preparation_circuit

__all__ = [
    "CSSCode",
    "GraphStateDecomposition",
    "PauliString",
    "StabilizerCode",
    "available_codes",
    "get_code",
    "hamming_code",
    "honeycomb_code",
    "shor_code",
    "state_preparation_circuit",
    "stabilizer_state_to_graph_state",
    "steane_code",
    "surface_code",
    "tetrahedral_code",
]
