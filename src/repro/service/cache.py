"""Certified-result memo store keyed by canonical problem hashes.

The cache answers one question: *has any isomorphic copy of this problem
already been solved to a certified optimum?*  Keys are the
process-stable SHA-256 canonical keys of :mod:`repro.core.canonical`, so
a relabeled re-submission of a solved instance hits without a single
solver probe.  Only **certified** results are admitted — a deadline or
backend-error answer is request-specific (a later request with a larger
budget may do better) and must never shadow a future certification.

Entries are plain JSON-serialisable dicts (the service's result-event
payload shape).  With a *path* the store is persistent: every admitted
entry is appended as one JSONL line and flushed, the same
crash-consistency discipline as the bench journal — a torn final line
loses at most that entry.
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Optional

from repro.core.report import TERMINATION_CERTIFIED


class CertifiedResultCache:
    """In-memory (optionally file-backed) certified-result store.

    Thread-safe: the service reads from the event loop thread while the
    dispatcher thread records solver results.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self._entries: dict[str, dict] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        self._path = os.fspath(path) if path is not None else None
        self._handle: Optional[IO[str]] = None
        if self._path is not None:
            self._load(self._path)
            self._handle = open(self._path, "a", encoding="utf-8")

    def _load(self, path: str) -> None:
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line: keep what parsed
                key = record.get("key")
                entry = record.get("entry")
                if isinstance(key, str) and isinstance(entry, dict):
                    self._entries[key] = entry

    # ------------------------------------------------------------------ #
    # Lookup / admission
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[dict]:
        """Return a copy of the entry for *key*, counting hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            return dict(entry)

    def put(self, key: str, entry: dict) -> bool:
        """Admit a certified entry; returns False when *key* is present.

        First certificate wins: certified optima of isomorphic problems
        are equal by definition, so overwriting buys nothing and keeping
        the first makes concurrent duplicate solves idempotent.  Raises
        ``ValueError`` for non-certified entries — caching a
        budget-dependent answer would serve it to requests with budgets
        it never saw.
        """
        if entry.get("termination") != TERMINATION_CERTIFIED:
            raise ValueError(
                "only certified results are cacheable, got termination="
                f"{entry.get('termination')!r}"
            )
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = dict(entry)
            if self._handle is not None:
                self._handle.write(
                    json.dumps({"key": key, "entry": entry}, sort_keys=True) + "\n"
                )
                self._handle.flush()
            return True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
