"""Scheduling-as-a-service: asyncio HTTP/JSON front end of the scheduler.

Stdlib only — the server speaks HTTP/1.1 by hand over
:func:`asyncio.start_server`; there is deliberately no web framework.

Endpoints
---------

``POST /v1/schedule``
    Submit a scheduling problem (JSON body, see
    :func:`problem_from_document`).  The response is an **anytime stream**
    of chunked JSON lines (``Transfer-Encoding: chunked``,
    ``application/x-ndjson``), one event object per line, in order:

    1. ``{"event": "accepted", ...}`` — request id, canonical key, cache
       hit/miss, queue depth;
    2. ``{"event": "witness", ...}`` — the validated structured witness
       and the analytic lower bound, streamed immediately while the exact
       solve is still running (omitted on cache hits — the certified
       answer is already at hand);
    3. ``{"event": "result", ...}`` — the final verdict: the certified
       optimum, a deadline-degraded best-known answer, or an error.

    Every post-accept event is stamped with a ``termination`` field —
    ``"pending"`` while the solve is in flight, then the report vocabulary
    of :data:`repro.core.report.TERMINATIONS` — plus the bound values and
    their provenance (``lower_bound_source`` / ``upper_bound_source``).
    ``solver_probes`` on the result counts SMT probes spent on *this*
    request: a cache hit reports ``0`` and ``"cached": true``.

    A full request queue is answered with ``503`` before any work starts;
    an invalid document with ``400``.

``GET /v1/healthz``
    Liveness plus per-worker health from the pool's bookkeeping.

``GET /v1/stats``
    Aggregate counters: requests, cache hits/misses/hit-rate, pool stats.

Architecture: requests land on the asyncio event loop, which performs
validation, canonicalisation and cache lookups inline (cheap, pure
Python).  Misses are pushed onto a **bounded** ``queue.Queue`` consumed
by a dispatcher thread that feeds the persistent
:class:`~repro.evaluation.executor.WorkerPool` and routes each
:class:`~repro.evaluation.executor.TaskOutcome` back to its request's
``asyncio.Queue`` via ``call_soon_threadsafe`` — the event loop never
blocks on the solver, and backpressure is a 503, not an unbounded buffer.
A worker crash mid-solve degrades that one request to ``termination:
"backend-error"`` while the pool replaces the worker underneath.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.budget import Deadline
from repro.core.canonical import canonical_key
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_CERTIFIED,
    TERMINATION_DEADLINE,
)
from repro.evaluation.executor import (
    TASK_CRASHED,
    TASK_OK,
    TASK_TIMEOUT,
    TaskOutcome,
    WorkerPool,
)
from repro.service.cache import CertifiedResultCache
from repro.service.ledger import RequestLedger

#: ``termination`` stamp of events emitted while the solve is in flight.
TERMINATION_PENDING = "pending"

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    503: "Service Unavailable",
}

#: Payload keys of a certified solve that are cached and replayed verbatim
#: to isomorphic re-submissions.  ``num_horizons``/``solver_seconds`` are
#: provenance of the original solve; the per-request ``solver_probes`` of
#: a replay is always 0.
_CACHEABLE_KEYS = (
    "found",
    "optimal",
    "validated",
    "termination",
    "num_stages",
    "num_rydberg_stages",
    "num_transfer_stages",
    "lower_bound",
    "upper_bound",
    "lower_bound_source",
    "upper_bound_source",
    "strategy",
    "sat_backend",
    "num_horizons",
    "solver_seconds",
)


# --------------------------------------------------------------------------- #
# Request documents
# --------------------------------------------------------------------------- #
def problem_from_document(doc: dict):
    """Build a :class:`~repro.core.problem.SchedulingProblem` from a request.

    Document shape::

        {
          "num_qubits": 4,
          "gates": [[0, 1], [1, 2]],
          "layout": "bottom",                 # reduced-layout kind, or
          "layout": {"kind": "bottom", "x_max": 2, ...},   # explicit dims, or
          "layout": "full:(2) Bottom Storage",  # a Table I evaluation layout
          "shielding": true                   # optional (layout default)
        }

    ``layout`` defaults to the reduced bottom-storage architecture — the
    same zone structure as the paper's evaluation at a size the pure-Python
    exact solver certifies in interactive time.
    """
    from repro.arch import evaluation_layouts, reduced_layout
    from repro.core.problem import SchedulingProblem

    layout = doc.get("layout", "bottom")
    if isinstance(layout, str):
        if layout.startswith("full:"):
            layouts = evaluation_layouts()
            name = layout[len("full:"):]
            if name not in layouts:
                raise ValueError(
                    f"unknown evaluation layout {name!r} "
                    f"(choose from {sorted(layouts)})"
                )
            architecture = layouts[name]
        else:
            architecture = reduced_layout(layout)
    elif isinstance(layout, dict):
        kwargs = {k: v for k, v in layout.items() if k != "kind"}
        architecture = reduced_layout(layout.get("kind", "bottom"), **kwargs)
    else:
        raise ValueError(f"layout must be a string or object, got {type(layout)}")
    gates = [tuple(gate) for gate in doc["gates"]]
    return SchedulingProblem.from_gates(
        architecture,
        int(doc["num_qubits"]),
        gates,
        shielding=doc.get("shielding"),
    )


def _execute_service_solve(spec: dict) -> dict:
    """Worker-side execution of one service request (module-level: pickles).

    Returns the result-event payload (without the ``event``/``cached``
    stamps the server adds).  ``spec["deadline"]`` is an already-ticking
    :class:`~repro.core.budget.Deadline` started when the request was
    accepted, so queueing time counts against the request's budget —
    a service promises end-to-end latency, not solver latency.
    """
    selftest = spec.get("selftest") or {}
    op = selftest.get("op")
    if op == "crash":
        os._exit(int(selftest.get("exit_code", 66)))
    if op == "sleep":
        time.sleep(float(selftest.get("seconds", 60.0)))

    from repro.core.scheduler import SMTScheduler
    from repro.core.validator import validate_schedule
    from repro.sat.chaos import CHAOS_SPEC_ENV

    chaos_spec = spec.get("chaos_spec")
    saved_chaos = os.environ.get(CHAOS_SPEC_ENV)
    if chaos_spec is not None:
        os.environ[CHAOS_SPEC_ENV] = str(chaos_spec)
    try:
        problem = problem_from_document(spec["problem"])
        scheduler = SMTScheduler(
            strategy=spec.get("strategy") or "bisection",
            sat_backend=spec.get("sat_backend"),
            time_limit_per_instance=spec.get("time_limit"),
        )
        report = scheduler.schedule(problem, deadline=spec.get("deadline"))
    finally:
        if chaos_spec is not None:
            # Workers are persistent: a per-request chaos plan must not
            # leak into the next request's solve.
            if saved_chaos is None:
                os.environ.pop(CHAOS_SPEC_ENV, None)
            else:
                os.environ[CHAOS_SPEC_ENV] = saved_chaos
    payload = {
        "strategy": spec.get("strategy") or "bisection",
        "sat_backend": report.sat_backend,
        "found": report.found,
        "optimal": report.optimal,
        "lower_bound": report.lower_bound,
        "upper_bound": report.upper_bound,
        "lower_bound_source": report.lower_bound_source,
        "upper_bound_source": report.upper_bound_source,
        "num_horizons": report.num_horizons,
        "solver_seconds": report.solver_seconds,
        "termination": report.termination,
        "backend_retries": int(report.statistics.get("backend_retries", 0)),
    }
    if report.found:
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        payload.update(
            num_stages=report.schedule.num_stages,
            num_rydberg_stages=report.schedule.num_rydberg_stages,
            num_transfer_stages=report.schedule.num_transfer_stages,
            validated=True,
        )
    return payload


def _warm_service_worker() -> None:
    """Import the scheduling stack once per worker (fork-time warm-up)."""
    import repro.core.scheduler  # noqa: F401
    import repro.core.structured  # noqa: F401
    import repro.sat.backend  # noqa: F401
    import repro.smt.solver  # noqa: F401


# --------------------------------------------------------------------------- #
# Service core (pool + queue + dispatcher)
# --------------------------------------------------------------------------- #
@dataclass
class _ServiceJob:
    """One queued request: its spec plus the route back to its stream."""

    request_id: str
    spec: dict
    timeout: Optional[float]
    loop: asyncio.AbstractEventLoop
    outcomes: "asyncio.Queue[TaskOutcome]" = field(default=None)  # type: ignore[assignment]

    def deliver(self, outcome: TaskOutcome) -> None:
        """Called from the dispatcher thread; hops onto the event loop."""
        try:
            self.loop.call_soon_threadsafe(self.outcomes.put_nowait, outcome)
        except RuntimeError:
            pass  # loop already closed: the client is gone


class SchedulingService:
    """The service core: bounded queue, dispatcher thread, pool, cache.

    Single process, three kinds of threads: the asyncio event loop calls
    :meth:`try_submit` / cache lookups; the dispatcher thread moves jobs
    from the bounded queue onto idle pool workers and routes outcomes
    back; the pool's workers solve.  ``queue_limit`` bounds *waiting*
    requests — when every worker is busy and the queue is full,
    :meth:`try_submit` refuses and the server answers 503 instead of
    accumulating unbounded work it cannot finish.
    """

    def __init__(
        self,
        jobs: int = 2,
        queue_limit: int = 8,
        cache: Optional[CertifiedResultCache] = None,
        cache_path: str | os.PathLike | None = None,
        ledger_path: str | os.PathLike | None = None,
        default_strategy: str = "bisection",
        default_time_limit: Optional[float] = None,
        hard_timeout: Optional[float] = None,
        allow_selftest: bool = False,
        warm: bool = True,
    ):
        if cache is not None and cache_path is not None:
            raise ValueError("pass either cache or cache_path, not both")
        self.default_strategy = default_strategy
        self.default_time_limit = default_time_limit
        self.hard_timeout = hard_timeout
        self.allow_selftest = allow_selftest
        self.queue_limit = max(1, queue_limit)
        self.cache = (
            cache if cache is not None else CertifiedResultCache(path=cache_path)
        )
        self.ledger: Optional[RequestLedger] = (
            RequestLedger(ledger_path) if ledger_path is not None else None
        )
        self.counters = {
            "requests_total": 0,
            "invalid_requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "rejected_queue_full": 0,
            "results_ok": 0,
            "results_degraded": 0,
            "worker_crashes": 0,
        }
        # The pool forks its workers eagerly here, before any server
        # thread exists — forking from a single-threaded parent is the
        # only portable-safe moment to do it.
        self._pool = WorkerPool(
            jobs, warmup=_warm_service_worker if warm else None, name="service"
        )
        self._queue: "queue.Queue[_ServiceJob]" = queue.Queue(
            maxsize=self.queue_limit
        )
        self._inflight: dict[int, _ServiceJob] = {}
        # Request ids carry a per-instance token so ids from successive
        # service lives never collide in a shared ledger file.
        self._instance = uuid.uuid4().hex[:8]
        self._request_ids = itertools.count(1)
        self._stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatch", daemon=True
        )
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if not self._started:
            self._started = True
            self._dispatcher.start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._started:
            self._dispatcher.join(timeout=30.0)
        self._pool.shutdown()
        if self.ledger is not None:
            self.ledger.close()
        self.cache.close()

    def __enter__(self) -> "SchedulingService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Event-loop side
    # ------------------------------------------------------------------ #
    def next_request_id(self) -> str:
        return f"req-{self._instance}-{next(self._request_ids):06d}"

    def try_submit(self, request_id: str, spec: dict) -> Optional[_ServiceJob]:
        """Queue a solve; returns None when the bounded queue is full."""
        job = _ServiceJob(
            request_id=request_id,
            spec=spec,
            timeout=self.hard_timeout,
            loop=asyncio.get_running_loop(),
        )
        job.outcomes = asyncio.Queue()
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            return None
        return job

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def health(self) -> dict:
        pool_stats = self._pool.stats()
        workers = self._pool.health()
        return {
            "status": "ok" if any(w["alive"] for w in workers) else "degraded",
            "workers": workers,
            "pool": pool_stats,
            "queue": {"depth": self._queue.qsize(), "limit": self.queue_limit},
            "cache": self.cache.stats(),
            "counters": dict(self.counters),
        }

    def stats(self) -> dict:
        return {
            "counters": dict(self.counters),
            "cache": self.cache.stats(),
            "pool": self._pool.stats(),
            "queue": {"depth": self._queue.qsize(), "limit": self.queue_limit},
        }

    # ------------------------------------------------------------------ #
    # Dispatcher thread
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            moved = False
            while self._pool.idle_count() > 0:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                task_id = self._pool.submit(
                    _execute_service_solve, job.spec, timeout=job.timeout
                )
                self._inflight[task_id] = job
                moved = True
            events = self._pool.poll(timeout=0.05)
            for event in events:
                job = self._inflight.pop(event.task_id)
                job.deliver(event)
            if not moved and not events and self._pool.busy_count() == 0:
                self._stop.wait(0.02)
        # Shutdown: fail whatever is still queued or in flight so no
        # stream hangs waiting for an outcome that will never come.
        drained = list(self._inflight.values())
        self._inflight.clear()
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for job in drained:
            job.deliver(
                TaskOutcome(
                    task_id=-1,
                    status="error",
                    error="service shutting down",
                )
            )


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #
class _BadRequest(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, dict, bytes]]:
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _BadRequest("header section too large")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _send_json(
    writer: asyncio.StreamWriter, status: int, obj: dict
) -> None:
    body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def _start_stream(writer: asyncio.StreamWriter) -> Callable:
    """Open a chunked ndjson response; returns ``send(event)``."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )

    async def send(event: dict) -> None:
        line = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
        await writer.drain()

    return send


async def _end_stream(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()


class ServiceServer:
    """asyncio HTTP server wired to a :class:`SchedulingService`."""

    def __init__(
        self,
        service: SchedulingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except (_BadRequest, ValueError, asyncio.IncompleteReadError) as exc:
                await _send_json(writer, 400, {"error": str(exc)})
                return
            if request is None:
                return
            method, target, _headers, body = request
            if target == "/v1/schedule":
                if method != "POST":
                    await _send_json(writer, 405, {"error": "POST required"})
                    return
                await self._handle_schedule(body, writer)
            elif target == "/v1/healthz":
                await _send_json(writer, 200, self.service.health())
            elif target == "/v1/stats":
                await _send_json(writer, 200, self.service.stats())
            else:
                await _send_json(writer, 404, {"error": f"no route {target}"})
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_schedule(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        service = self.service
        try:
            doc = json.loads(body.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("request body must be a JSON object")
            if doc.get("selftest") and not service.allow_selftest:
                raise ValueError("selftest ops are disabled on this server")
            problem = problem_from_document(doc)
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            service.counters["invalid_requests"] += 1
            await _send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"}
            )
            return

        request_id = service.next_request_id()
        service.counters["requests_total"] += 1
        received = time.monotonic()
        key = canonical_key(problem)

        cached_entry = service.cache.get(key)
        if cached_entry is not None:
            service.counters["cache_hits"] += 1
            await self._serve_cache_hit(
                writer, request_id, key, cached_entry, received
            )
            return
        service.counters["cache_misses"] += 1

        spec = {
            "problem": {
                "num_qubits": doc["num_qubits"],
                "gates": [list(gate) for gate in doc["gates"]],
                "layout": doc.get("layout", "bottom"),
                "shielding": doc.get("shielding"),
            },
            "strategy": doc.get("strategy") or service.default_strategy,
            "sat_backend": doc.get("sat_backend"),
            "time_limit": doc.get("time_limit", service.default_time_limit),
            "chaos_spec": doc.get("chaos_spec"),
        }
        if service.allow_selftest and doc.get("selftest"):
            spec["selftest"] = doc["selftest"]
        deadline = doc.get("deadline")
        if deadline is not None:
            # The budget starts ticking NOW: queueing time counts against
            # the request, because the service promises end-to-end latency.
            spec["deadline"] = Deadline.after(float(deadline))

        job = service.try_submit(request_id, spec)
        if job is None:
            service.counters["rejected_queue_full"] += 1
            await _send_json(
                writer,
                503,
                {
                    "error": "request queue is full",
                    "queue_limit": service.queue_limit,
                    "request_id": request_id,
                },
            )
            return

        if service.ledger is not None:
            service.ledger.record_request(request_id)
        send = _start_stream(writer)
        await send(
            {
                "event": "accepted",
                "request_id": request_id,
                "canonical_key": key,
                "cache": "miss",
                "queue_depth": service.queue_depth(),
                "termination": TERMINATION_PENDING,
            }
        )
        # The structured witness streams while the exact solve runs: the
        # client holds a validated schedule (an upper-bound certificate)
        # strictly before the certified optimum lands.
        loop = asyncio.get_running_loop()
        witness = await loop.run_in_executor(
            None, _witness_event, problem, request_id
        )
        await send(witness)
        outcome = await job.outcomes.get()
        result = self._result_event(outcome, request_id, key)
        if (
            outcome.status == TASK_OK
            and result.get("termination") == TERMINATION_CERTIFIED
            and result.get("optimal")
            and result.get("found")
        ):
            service.cache.put(
                key, {k: result[k] for k in _CACHEABLE_KEYS if k in result}
            )
        await send(result)
        await _end_stream(writer)
        self._finish_ledger(request_id, key, result, received)

    async def _serve_cache_hit(
        self,
        writer: asyncio.StreamWriter,
        request_id: str,
        key: str,
        entry: dict,
        received: float,
    ) -> None:
        service = self.service
        if service.ledger is not None:
            service.ledger.record_request(request_id)
        send = _start_stream(writer)
        await send(
            {
                "event": "accepted",
                "request_id": request_id,
                "canonical_key": key,
                "cache": "hit",
                "queue_depth": service.queue_depth(),
                "termination": entry.get("termination", TERMINATION_CERTIFIED),
            }
        )
        result = {
            "event": "result",
            "request_id": request_id,
            "canonical_key": key,
            "cached": True,
            "solver_probes": 0,
            **entry,
        }
        await send(result)
        await _end_stream(writer)
        service.counters["results_ok"] += 1
        self._finish_ledger(request_id, key, result, received)

    def _result_event(
        self, outcome: TaskOutcome, request_id: str, key: str
    ) -> dict:
        service = self.service
        base = {
            "event": "result",
            "request_id": request_id,
            "canonical_key": key,
            "cached": False,
            "worker_seconds": outcome.seconds,
        }
        if outcome.status == TASK_OK:
            payload = dict(outcome.value)
            service.counters[
                "results_ok"
                if payload.get("termination") == TERMINATION_CERTIFIED
                else "results_degraded"
            ] += 1
            return {
                **base,
                "solver_probes": payload.get("num_horizons", 0),
                **payload,
            }
        if outcome.status == TASK_CRASHED:
            # The worker died mid-solve (the pool has already replaced
            # it); to the client this is a backend error on this request,
            # not a service outage.
            service.counters["worker_crashes"] += 1
            termination = TERMINATION_BACKEND_ERROR
        elif outcome.status == TASK_TIMEOUT:
            termination = TERMINATION_DEADLINE
        else:
            termination = TERMINATION_BACKEND_ERROR
        service.counters["results_degraded"] += 1
        return {
            **base,
            "solver_probes": 0,
            "found": False,
            "optimal": False,
            "termination": termination,
            "error": outcome.error,
        }

    def _finish_ledger(
        self, request_id: str, key: str, result: dict, received: float
    ) -> None:
        if self.service.ledger is None:
            return
        self.service.ledger.record_verdict(
            request_id,
            {
                "canonical_key": key,
                "cached": bool(result.get("cached")),
                "termination": result.get("termination"),
                "status": "ok" if result.get("found") else "degraded",
                "seconds": time.monotonic() - received,
            },
        )


def _witness_event(problem, request_id: str) -> dict:
    """The anytime witness: analytic lower bound + structured upper bound.

    Runs in a thread-pool executor (pure Python, but milliseconds of
    work the event loop should not absorb under concurrency).
    """
    from repro.core.strategies.bisection import (
        structured_upper_bound,
        witness_source,
    )

    breakdown = problem.bound_breakdown()
    event = {
        "event": "witness",
        "request_id": request_id,
        "termination": TERMINATION_PENDING,
        "lower_bound": breakdown.total,
        "lower_bound_source": breakdown.source,
        "found": False,
        "validated": False,
    }
    witness = structured_upper_bound(problem)
    if witness is not None:
        event.update(
            found=True,
            validated=True,
            num_stages=witness.num_stages,
            num_rydberg_stages=witness.num_rydberg_stages,
            num_transfer_stages=witness.num_transfer_stages,
            upper_bound=witness.num_stages,
            upper_bound_source=witness_source(witness),
        )
    return event


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
@dataclass
class RunningService:
    """A started service + server pair (tests and the load-test harness)."""

    service: SchedulingService
    server: ServiceServer

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def aclose(self) -> None:
        await self.server.aclose()
        self.service.close()


async def start_service(
    host: str = "127.0.0.1", port: int = 0, **config
) -> RunningService:
    """Start a service and its HTTP server on *host*:*port* (0 = ephemeral)."""
    service = SchedulingService(**config)
    service.start()
    server = ServiceServer(service, host=host, port=port)
    try:
        await server.start()
    except BaseException:
        service.close()
        raise
    return RunningService(service=service, server=server)


def run_service(host: str = "127.0.0.1", port: int = 8537, **config) -> None:
    """Blocking entry point of ``repro-nasp serve`` (Ctrl-C to stop)."""

    async def _serve() -> None:
        running = await start_service(host=host, port=port, **config)
        print(
            f"repro-nasp service listening on http://{running.host}:{running.port} "
            f"(jobs={running.service._pool.stats()['jobs']}, "
            f"queue_limit={running.service.queue_limit})"
        )
        try:
            await asyncio.Event().wait()
        finally:
            await running.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
