"""Scheduling-as-a-service: the long-lived front end of the scheduler.

The paper's scheduler is a batch library; this package wraps it into a
service shaped for real traffic:

* :mod:`repro.service.server` — an asyncio HTTP/JSON server (stdlib only)
  with a bounded request queue feeding the persistent warm worker pool of
  :mod:`repro.evaluation.executor`, streaming **anytime** responses as
  chunked JSON lines: a validated structured witness immediately, the
  certified optimum when it lands, every event stamped with its
  ``termination`` verdict and bound provenance.
* :mod:`repro.service.cache` — the certified-result memo store keyed by
  the canonical problem hash of :mod:`repro.core.canonical`, so
  isomorphic re-submissions are answered without a single solver probe.
* :mod:`repro.service.ledger` — the request ledger, reusing the bench
  journal's append-only JSONL format (PR 6) so the same tooling reads it.
* :mod:`repro.service.client` — a minimal asyncio client for the chunked
  streaming protocol (used by the tests and the load-test harness).
* :mod:`repro.service.loadtest` — ``repro-nasp loadtest``: seeded traffic
  of isomorphically relabeled instances, reporting p50/p99 latency and
  the cache hit-rate in the bench JSON schema (v8).
"""

from repro.service.cache import CertifiedResultCache
from repro.service.ledger import RequestLedger, load_ledger
from repro.service.server import (
    SchedulingService,
    ServiceServer,
    problem_from_document,
    run_service,
    start_service,
)
from repro.service.client import get_json, stream_schedule
from repro.service.loadtest import (
    format_loadtest,
    loadtest_result,
    percentile,
    run_loadtest,
)

__all__ = [
    "CertifiedResultCache",
    "RequestLedger",
    "format_loadtest",
    "SchedulingService",
    "ServiceServer",
    "get_json",
    "load_ledger",
    "loadtest_result",
    "percentile",
    "problem_from_document",
    "run_loadtest",
    "run_service",
    "start_service",
    "stream_schedule",
]
