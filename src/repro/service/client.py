"""Minimal asyncio HTTP client for the service (stdlib only).

Speaks exactly the dialect :mod:`repro.service.server` emits — HTTP/1.1
with ``Connection: close``, chunked ``application/x-ndjson`` streams for
``/v1/schedule`` and plain JSON bodies elsewhere.  Used by the service
tests and the load-test harness; it is *not* a general HTTP client.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Optional


async def _read_status_and_headers(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before responding")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _iter_chunks(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip() or b"0", 16)
        if size == 0:
            await reader.readline()  # terminating CRLF
            return
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF
        yield data


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        parts = [chunk async for chunk in _iter_chunks(reader)]
        return b"".join(parts)
    length = int(headers.get("content-length", "0") or "0")
    return await reader.readexactly(length) if length else await reader.read()


def _parse_ndjson(payload: bytes) -> list[dict]:
    events = []
    for line in payload.decode("utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


async def stream_schedule(
    host: str,
    port: int,
    doc: dict,
    timeout: Optional[float] = 120.0,
) -> tuple[int, list[dict]]:
    """POST *doc* to ``/v1/schedule``; return ``(status, events)``.

    On 200 the events are the full anytime stream in arrival order
    (``accepted``, ``witness``, ``result``); on 4xx/5xx the single error
    body is returned as a one-element list.  *timeout* bounds the whole
    exchange.
    """

    async def _exchange() -> tuple[int, list[dict]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = json.dumps(doc).encode("utf-8")
            writer.write(
                (
                    "POST /v1/schedule HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
            status, headers = await _read_status_and_headers(reader)
            payload = await _read_body(reader, headers)
            return status, _parse_ndjson(payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    if timeout is None:
        return await _exchange()
    return await asyncio.wait_for(_exchange(), timeout=timeout)


async def get_json(
    host: str,
    port: int,
    path: str,
    timeout: Optional[float] = 30.0,
) -> tuple[int, dict]:
    """GET *path*; return ``(status, parsed JSON body)``."""

    async def _exchange() -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status, headers = await _read_status_and_headers(reader)
            payload = await _read_body(reader, headers)
            return status, json.loads(payload.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    if timeout is None:
        return await _exchange()
    return await asyncio.wait_for(_exchange(), timeout=timeout)
