"""Load-test harness: service latency percentiles + cache hit-rate.

``repro-nasp loadtest`` stands up an in-process service on an ephemeral
localhost port, fires a seeded mix of requests at it with bounded
concurrency, and reports p50/p99 end-to-end latency plus the certified-
result cache hit-rate in the bench JSON schema (v8 payload keys
``latency_p50_seconds`` / ``latency_p99_seconds`` / ``cache_hit_rate``
— older schema versions strip them, see
:func:`repro.evaluation.runner.save_results`).

The traffic is the cache's worst honest adversary and best showcase at
once: every request is a random **qubit relabeling** of one of the named
bench instances, so requests are pairwise non-identical byte-wise, yet
every request after the first solve of each base instance is isomorphic
to a cached certificate — the hit-rate measures canonicalisation working
end to end, not byte-equality caching.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from typing import Optional, Sequence

from repro.evaluation.runner import (
    REDUCED_LAYOUT_KWARGS,
    SMT_INSTANCES,
    BenchResult,
)
from repro.service.client import get_json, stream_schedule
from repro.service.server import start_service

#: Default request mix: the four fastest-certifying bench instances.
DEFAULT_INSTANCES = ("single-gate", "chain-2", "triangle", "disjoint-pairs")


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (inclusive): p50 of [1,2,3,4] is 2.

    Nearest-rank is exact on small samples — the interpolating variants
    report latencies no request actually experienced.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def _build_requests(
    requests: int,
    instances: Sequence[str],
    seed: int,
    layout_kind: str,
    strategy: str,
    deadline: Optional[float],
) -> list[dict]:
    """Seeded request mix: isomorphic relabelings of the named instances."""
    rng = random.Random(seed)
    docs = []
    for i in range(requests):
        name = instances[i % len(instances)]
        num_qubits, gates = SMT_INSTANCES[name]
        relabeling = list(range(num_qubits))
        rng.shuffle(relabeling)
        relabeled = [[relabeling[a], relabeling[b]] for a, b in gates]
        rng.shuffle(relabeled)
        doc = {
            "num_qubits": num_qubits,
            "gates": relabeled,
            "layout": {"kind": layout_kind, **REDUCED_LAYOUT_KWARGS},
            "strategy": strategy,
        }
        if deadline is not None:
            doc["deadline"] = deadline
        docs.append(doc)
    return docs


def run_loadtest(
    requests: int = 24,
    concurrency: int = 4,
    jobs: int = 2,
    seed: int = 0,
    instances: Sequence[str] = DEFAULT_INSTANCES,
    layout_kind: str = "bottom",
    strategy: str = "bisection",
    deadline: Optional[float] = None,
    time_limit: Optional[float] = 60.0,
    queue_limit: Optional[int] = None,
) -> dict:
    """Run the load test; returns the schema-v8 payload dict.

    The service queue is sized to hold the whole request budget by
    default, so the measurement is latency under load, not 503 behaviour
    (pass an explicit *queue_limit* to measure shedding instead —
    rejections are then counted in ``rejected``).
    """
    unknown = set(instances) - set(SMT_INSTANCES)
    if unknown:
        raise ValueError(
            f"unknown instances {sorted(unknown)} "
            f"(choose from {sorted(SMT_INSTANCES)})"
        )
    if requests < 1:
        raise ValueError("at least one request is required")
    return asyncio.run(
        _run_loadtest(
            requests=requests,
            concurrency=max(1, concurrency),
            jobs=max(1, jobs),
            seed=seed,
            instances=tuple(instances),
            layout_kind=layout_kind,
            strategy=strategy,
            deadline=deadline,
            time_limit=time_limit,
            queue_limit=queue_limit,
        )
    )


async def _run_loadtest(
    requests: int,
    concurrency: int,
    jobs: int,
    seed: int,
    instances: tuple[str, ...],
    layout_kind: str,
    strategy: str,
    deadline: Optional[float],
    time_limit: Optional[float],
    queue_limit: Optional[int],
) -> dict:
    docs = _build_requests(
        requests, instances, seed, layout_kind, strategy, deadline
    )
    running = await start_service(
        jobs=jobs,
        queue_limit=queue_limit if queue_limit is not None else max(4, requests),
        default_strategy=strategy,
        default_time_limit=time_limit,
    )
    wall_start = time.monotonic()
    latencies: list[Optional[float]] = [None] * requests
    statuses: list[Optional[int]] = [None] * requests
    streams: list[list[dict]] = [[] for _ in range(requests)]
    gate = asyncio.Semaphore(concurrency)

    async def one(index: int) -> None:
        async with gate:
            start = time.monotonic()
            status, events = await stream_schedule(
                running.host, running.port, docs[index]
            )
            latencies[index] = time.monotonic() - start
            statuses[index] = status
            streams[index] = events

    try:
        outcomes = await asyncio.gather(
            *(one(index) for index in range(requests)), return_exceptions=True
        )
        _status, stats = await get_json(running.host, running.port, "/v1/stats")
    finally:
        await running.aclose()
    wall = time.monotonic() - wall_start

    transport_errors = sum(1 for o in outcomes if isinstance(o, BaseException))
    rejected = sum(1 for s in statuses if s == 503)
    ok = 0
    cached_responses = 0
    terminations: dict[str, int] = {}
    completed_latencies: list[float] = []
    for index in range(requests):
        if statuses[index] != 200 or latencies[index] is None:
            continue
        events = streams[index]
        result = events[-1] if events else {}
        if result.get("event") != "result":
            continue
        ok += 1
        completed_latencies.append(latencies[index])
        termination = str(result.get("termination"))
        terminations[termination] = terminations.get(termination, 0) + 1
        if result.get("cached"):
            cached_responses += 1

    cache_stats = stats.get("cache", {})
    payload = {
        "requests": requests,
        "concurrency": concurrency,
        "jobs": jobs,
        "seed": seed,
        "instances": list(instances),
        "strategy": strategy,
        "ok": ok,
        "errors": requests - ok - rejected,
        "rejected": rejected,
        "transport_errors": transport_errors,
        "cached_responses": cached_responses,
        "cache_hits": cache_stats.get("hits", 0),
        "cache_misses": cache_stats.get("misses", 0),
        "cache_hit_rate": cache_stats.get("hit_rate", 0.0),
        "terminations": terminations,
        "seconds_total": wall,
        "requests_per_second": (requests / wall) if wall > 0 else 0.0,
    }
    if completed_latencies:
        payload.update(
            latency_p50_seconds=percentile(completed_latencies, 0.50),
            latency_p99_seconds=percentile(completed_latencies, 0.99),
            latency_mean_seconds=sum(completed_latencies)
            / len(completed_latencies),
            latency_max_seconds=max(completed_latencies),
        )
    return payload


def loadtest_result(payload: dict) -> BenchResult:
    """Wrap a load-test payload as a bench result for ``save_results``."""
    return BenchResult(
        name="service/loadtest",
        suite="service",
        status="ok" if payload.get("errors", 0) == 0 else "error",
        seconds=float(payload.get("seconds_total", 0.0)),
        payload=payload,
        error=(
            None
            if payload.get("errors", 0) == 0
            else f"{payload['errors']} request(s) failed"
        ),
    )


def format_loadtest(payload: dict) -> str:
    """Human-readable one-screen summary of a load-test payload."""
    lines = [
        f"loadtest: {payload['requests']} requests, "
        f"concurrency {payload['concurrency']}, {payload['jobs']} workers",
        f"  ok {payload['ok']}  errors {payload['errors']}  "
        f"rejected(503) {payload['rejected']}",
        f"  cache hit-rate {payload['cache_hit_rate']:.2%} "
        f"({payload['cache_hits']} hits / {payload['cache_misses']} misses)",
    ]
    if "latency_p50_seconds" in payload:
        lines.append(
            f"  latency p50 {payload['latency_p50_seconds'] * 1000:.0f} ms  "
            f"p99 {payload['latency_p99_seconds'] * 1000:.0f} ms  "
            f"max {payload['latency_max_seconds'] * 1000:.0f} ms"
        )
    lines.append(
        f"  wall {payload['seconds_total']:.2f} s "
        f"({payload['requests_per_second']:.1f} req/s)"
    )
    terminations = payload.get("terminations") or {}
    if terminations:
        summary = ", ".join(
            f"{name}: {count}" for name, count in sorted(terminations.items())
        )
        lines.append(f"  terminations: {summary}")
    return "\n".join(lines)
