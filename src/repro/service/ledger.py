"""Request ledger: the service's append-only audit journal.

Reuses the bench journal's JSONL line format (PR 6,
:mod:`repro.evaluation.journal`) instead of inventing a new one, so the
same torn-line-tolerant loader reads both: a ``suite`` header marks each
service run, a ``start`` line records every accepted request, and a
``done`` line carries the request's final verdict entry (canonical key,
cache hit/miss, termination, latency).  A request with a ``start`` but no
``done`` died in flight — exactly the bench journal's crash semantics,
surfaced by :meth:`~repro.evaluation.journal.JournalState.crashed_cells`.
"""

from __future__ import annotations

import os

from repro.evaluation.journal import BenchJournal, JournalState, load_journal


class RequestLedger:
    """Append-only, flush-per-line record of request life cycles."""

    def __init__(self, path: str | os.PathLike):
        self._journal = BenchJournal(path)
        # The request set is unknown upfront (unlike a bench suite), so
        # the header carries an empty cell list; its role here is to mark
        # the run boundary and identify the writer.
        self._journal.write_header([], shard={"kind": "service"})

    @property
    def path(self) -> str:
        return self._journal.path

    def record_request(self, request_id: str) -> None:
        """Record acceptance of *request_id* (before any work happens)."""
        self._journal.record_start(request_id, attempt=1)

    def record_verdict(self, request_id: str, entry: dict) -> None:
        """Record the request's terminal verdict entry."""
        self._journal.record_done(request_id, attempt=1, result_entry=entry)

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "RequestLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_ledger(path: str | os.PathLike) -> JournalState:
    """Parse a ledger file (same loader as the bench journal).

    ``state.completed`` maps request ids to verdict entries;
    ``state.crashed_cells()`` lists requests accepted but never
    completed — in-flight when the service died.
    """
    return load_journal(path)
