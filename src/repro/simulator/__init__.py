"""Stabilizer-circuit simulation.

Used to *verify* (a) that generated state-preparation circuits really
prepare a state in the code space, and (b) that scheduled circuits are
logically equivalent to their input circuits.
"""

from repro.simulator.tableau import TableauSimulator

__all__ = ["TableauSimulator"]
