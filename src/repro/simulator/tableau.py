"""A stabilizer (tableau) simulator in the Aaronson–Gottesman style.

The simulator tracks the stabilizer group of the state as ``n`` generator
rows (phases included) starting from ``|0...0>`` (generators ``Z_i``).  It
supports the Clifford gates appearing in state-preparation circuits, single
qubit computational-basis measurement, and — most importantly for this
project — an exact membership test ``is_stabilized_by`` that checks whether
a given Pauli operator (with sign) stabilizes the current state.

Destabilizer rows are tracked as well so that measurements of anti-commuting
observables can be performed in the standard O(n²) way.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate, GateKind
from repro.qec import gf2
from repro.qec.pauli import PauliString


class TableauSimulator:
    """Simulate Clifford circuits on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, seed: Optional[int] = None) -> None:
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self._n = num_qubits
        self._rng = random.Random(seed)
        n = num_qubits
        # Stabilizers: Z_i ; destabilizers: X_i.
        self._stabilizers = [
            PauliString.from_support(n, "Z", [i]) for i in range(n)
        ]
        self._destabilizers = [
            PauliString.from_support(n, "X", [i]) for i in range(n)
        ]

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of simulated qubits."""
        return self._n

    @property
    def stabilizer_generators(self) -> list[PauliString]:
        """Current stabilizer generators (copies)."""
        return [s.copy() for s in self._stabilizers]

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #
    def _apply_to_all(self, method: str, *qubits: int) -> None:
        for row in self._stabilizers:
            getattr(row, method)(*qubits)
        for row in self._destabilizers:
            getattr(row, method)(*qubits)

    def h(self, qubit: int) -> None:
        """Hadamard."""
        self._apply_to_all("apply_h", qubit)

    def s(self, qubit: int) -> None:
        """Phase gate."""
        self._apply_to_all("apply_s", qubit)

    def sdg(self, qubit: int) -> None:
        """Inverse phase gate."""
        self._apply_to_all("apply_sdg", qubit)

    def x(self, qubit: int) -> None:
        """Pauli X."""
        self._apply_to_all("apply_x", qubit)

    def y(self, qubit: int) -> None:
        """Pauli Y."""
        self._apply_to_all("apply_y", qubit)

    def z(self, qubit: int) -> None:
        """Pauli Z."""
        self._apply_to_all("apply_z", qubit)

    def cz(self, a: int, b: int) -> None:
        """Controlled-Z."""
        self._apply_to_all("apply_cz", a, b)

    def cx(self, control: int, target: int) -> None:
        """Controlled-X."""
        self._apply_to_all("apply_cx", control, target)

    def apply_gate(self, gate: Gate) -> None:
        """Apply a :class:`~repro.circuit.gates.Gate`."""
        dispatch = {
            GateKind.H: self.h,
            GateKind.S: self.s,
            GateKind.SDG: self.sdg,
            GateKind.X: self.x,
            GateKind.Y: self.y,
            GateKind.Z: self.z,
            GateKind.CZ: self.cz,
            GateKind.CX: self.cx,
        }
        dispatch[gate.kind](*gate.qubits)

    def run_circuit(self, circuit: Circuit) -> None:
        """Apply every gate of *circuit* in order."""
        if circuit.num_qubits > self._n:
            raise ValueError("circuit has more qubits than the simulator")
        for gate in circuit:
            self.apply_gate(gate)

    def run_gates(self, gates: Iterable[Gate]) -> None:
        """Apply an iterable of gates."""
        for gate in gates:
            self.apply_gate(gate)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int, forced_outcome: Optional[int] = None) -> int:
        """Measure *qubit* in the computational basis; returns 0 or 1."""
        observable = PauliString.from_support(self._n, "Z", [qubit])
        return self.measure_pauli(observable, forced_outcome)

    def measure_pauli(
        self, observable: PauliString, forced_outcome: Optional[int] = None
    ) -> int:
        """Measure a Hermitian Pauli observable; returns 0 (+1) or 1 (-1)."""
        anticommuting = [
            i
            for i, stab in enumerate(self._stabilizers)
            if not stab.commutes_with(observable)
        ]
        if anticommuting:
            outcome = (
                forced_outcome
                if forced_outcome is not None
                else self._rng.randint(0, 1)
            )
            pivot = anticommuting[0]
            # All other anti-commuting stabilizers are multiplied by the
            # pivot so that only one generator anti-commutes.
            for i in anticommuting[1:]:
                self._stabilizers[i] = self._stabilizers[pivot] * self._stabilizers[i]
            for i, destab in enumerate(self._destabilizers):
                if not destab.commutes_with(observable):
                    self._destabilizers[i] = self._stabilizers[pivot] * destab
            # The old stabilizer becomes the destabilizer of the new one.
            self._destabilizers[pivot] = self._stabilizers[pivot]
            new_stabilizer = observable.copy()
            if outcome == 1:
                new_stabilizer.phase = (new_stabilizer.phase + 2) % 4
            self._stabilizers[pivot] = new_stabilizer
            return outcome
        # Deterministic outcome: the observable (up to sign) is in the group.
        expectation = self.expectation(observable)
        if expectation == 1:
            return 0
        if expectation == -1:
            return 1
        raise RuntimeError("observable commutes with the group but is not in it")

    # ------------------------------------------------------------------ #
    # Stabilizer-group queries
    # ------------------------------------------------------------------ #
    def expectation(self, observable: PauliString) -> int:
        """Expectation value of a Pauli observable: +1, -1, or 0 (random)."""
        for stab in self._stabilizers:
            if not stab.commutes_with(observable):
                return 0
        combination = self._express_in_generators(observable)
        if combination is None:
            raise RuntimeError(
                "observable commutes with all generators but is outside the group"
            )
        product = PauliString.identity(self._n)
        for index in np.nonzero(combination)[0]:
            product = product * self._stabilizers[int(index)]
        phase_difference = (observable.phase - product.phase) % 4
        if phase_difference == 0:
            return 1
        if phase_difference == 2:
            return -1
        raise RuntimeError("imaginary relative phase between Hermitian operators")

    def is_stabilized_by(self, observable: PauliString) -> bool:
        """True when *observable* (including its sign) stabilizes the state."""
        for stab in self._stabilizers:
            if not stab.commutes_with(observable):
                return False
        return self.expectation(observable) == 1

    def _express_in_generators(self, observable: PauliString) -> np.ndarray | None:
        matrix = np.vstack([s.symplectic for s in self._stabilizers])
        return gf2.solve(matrix, observable.symplectic)
