"""Execution-time model for schedules.

Stage durations follow the figures of merit of Sec. V-A:

* a Rydberg stage takes one CZ pulse (0.27 µs) followed by shuttling whose
  duration is the AOD speed (0.55 µs/µm) times the longest move of the stage,
* a transfer stage takes one store batch and/or one load batch (200 µs each)
  followed by shuttling,
* the single-qubit parts of the state-preparation circuit (the global |+>
  initialisation and the final local corrections) are appended once because
  they need no shuttling and can be executed anywhere on the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.core.schedule import Schedule


@dataclass
class ExecutionTimeBreakdown:
    """Per-contribution execution time of a schedule, in microseconds."""

    rydberg_us: float = 0.0
    shuttling_us: float = 0.0
    transfer_us: float = 0.0
    single_qubit_us: float = 0.0
    per_stage_us: list[float] = field(default_factory=list)

    @property
    def total_us(self) -> float:
        """Total execution time in microseconds."""
        return self.rydberg_us + self.shuttling_us + self.transfer_us + self.single_qubit_us

    @property
    def total_ms(self) -> float:
        """Total execution time in milliseconds (the paper's unit)."""
        return self.total_us / 1000.0


def execution_time(
    schedule: Schedule, prep_circuit: StatePrepCircuit | None = None
) -> ExecutionTimeBreakdown:
    """Compute the execution-time breakdown of a schedule.

    When *prep_circuit* is given, the single-qubit initialisation and the
    final correction layer are included in the total.
    """
    parameters = schedule.architecture.parameters
    breakdown = ExecutionTimeBreakdown()
    for index, stage in enumerate(schedule.stages):
        stage_us = 0.0
        if stage.is_execution:
            stage_us += parameters.cz_duration_us
            breakdown.rydberg_us += parameters.cz_duration_us
        else:
            batches = (1 if stage.stored_qubits else 0) + (1 if stage.loaded_qubits else 0)
            transfer_us = batches * parameters.transfer_duration_us
            stage_us += transfer_us
            breakdown.transfer_us += transfer_us
        shuttle_us = parameters.shuttling_duration_us(schedule.shuttling_distance_um(index))
        stage_us += shuttle_us
        breakdown.shuttling_us += shuttle_us
        breakdown.per_stage_us.append(stage_us)
    if prep_circuit is not None:
        # Global |+> initialisation: one global RY pulse.
        single_us = parameters.global_ry_duration_us
        # Final corrections: a local RZ + global RY pulse pair suffices for
        # every single-qubit Clifford appearing in the correction layer.
        if prep_circuit.local_corrections:
            single_us += parameters.local_rz_duration_us + parameters.global_ry_duration_us
        breakdown.single_qubit_us += single_us
    return breakdown
