"""Approximated Success Probability (ASP).

The ASP is the fidelity proxy used in the paper's evaluation (after [17]):

    ASP = exp(-t_idle / T_eff) * prod_i F_{g_i}

where ``t_idle`` is the accumulated idle time of all qubits, ``T_eff`` the
effective coherence time (1 s) and the product runs over all operations of
the executed schedule: CZ gates, the faulty Rydberg identity suffered by
idle qubits that are illuminated by a beam, single-qubit gates, and trap
transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.operations import OperationParameters
from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.core.schedule import Schedule
from repro.metrics.timing import ExecutionTimeBreakdown, execution_time


@dataclass
class ASPBreakdown:
    """The ASP together with its individual factors."""

    cz_factor: float
    rydberg_idle_factor: float
    single_qubit_factor: float
    transfer_factor: float
    decoherence_factor: float
    #: Number of idle-qubit exposures to Rydberg beams.
    unshielded_idle_count: int
    #: Accumulated idle time over all qubits, in microseconds.
    idle_time_us: float
    timing: ExecutionTimeBreakdown

    @property
    def asp(self) -> float:
        """The approximated success probability."""
        return (
            self.cz_factor
            * self.rydberg_idle_factor
            * self.single_qubit_factor
            * self.transfer_factor
            * self.decoherence_factor
        )


def approximate_success_probability(
    schedule: Schedule,
    prep_circuit: StatePrepCircuit | None = None,
    parameters: OperationParameters | None = None,
) -> ASPBreakdown:
    """Compute the ASP of a schedule (optionally including the single-qubit
    parts of the preparation circuit)."""
    params = parameters or schedule.architecture.parameters
    timing = execution_time(schedule, prep_circuit)

    num_cz = len(schedule.executed_gates)
    cz_factor = params.cz_fidelity**num_cz

    unshielded = schedule.total_unshielded_idle()
    rydberg_idle_factor = params.rydberg_idle_fidelity**unshielded

    transfer_ops = schedule.num_transfer_operations
    transfer_factor = params.transfer_fidelity**transfer_ops

    single_qubit_factor = 1.0
    if prep_circuit is not None:
        # |+> initialisation: one global RY rotation per qubit.
        single_qubit_factor *= params.global_ry_fidelity**prep_circuit.num_qubits
        # Final corrections: each corrected qubit needs a local RZ and takes
        # part in a global RY pulse.
        corrected = len(prep_circuit.local_corrections)
        single_qubit_factor *= params.local_rz_fidelity**corrected
        single_qubit_factor *= params.global_ry_fidelity**corrected

    # Accumulated idle time: every qubit idles whenever it is not actively
    # operated on; the per-qubit busy times (sub-microsecond CZ pulses and
    # microsecond-scale rotations) are negligible against the millisecond
    # scale of transfer and shuttling phases but are subtracted anyway.
    total_us = timing.total_us
    busy_us = (
        2 * num_cz * params.cz_duration_us
        + transfer_ops * params.transfer_duration_us
    )
    if prep_circuit is not None:
        busy_us += prep_circuit.num_qubits * params.global_ry_duration_us
        busy_us += len(prep_circuit.local_corrections) * params.local_rz_duration_us
    idle_time_us = max(schedule.num_qubits * total_us - busy_us, 0.0)
    decoherence_factor = math.exp(-idle_time_us / params.effective_coherence_time_us)

    return ASPBreakdown(
        cz_factor=cz_factor,
        rydberg_idle_factor=rydberg_idle_factor,
        single_qubit_factor=single_qubit_factor,
        transfer_factor=transfer_factor,
        decoherence_factor=decoherence_factor,
        unshielded_idle_count=unshielded,
        idle_time_us=idle_time_us,
        timing=timing,
    )
