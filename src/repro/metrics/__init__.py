"""Execution-time model and Approximated Success Probability (ASP)."""

from repro.metrics.timing import ExecutionTimeBreakdown, execution_time
from repro.metrics.asp import ASPBreakdown, approximate_success_probability

__all__ = [
    "ASPBreakdown",
    "ExecutionTimeBreakdown",
    "approximate_success_probability",
    "execution_time",
]
