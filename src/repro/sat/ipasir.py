"""ctypes binding of the IPASIR incremental SAT C API.

`IPASIR <https://github.com/biotomas/ipasir>`_ is the standard incremental
interface of the SAT competition (``ipasir_init`` / ``ipasir_add`` /
``ipasir_assume`` / ``ipasir_solve`` / ``ipasir_val``), exported by
``libcadical.so``, ``libkissat.so`` and friends.  Binding it gives the
scheduler what the ``dimacs-subprocess`` backend fundamentally cannot: a
*native* solver that keeps its learned clauses across horizon probes,
because assumptions are passed through ``ipasir_assume`` instead of being
re-encoded as unit clauses of a fresh DIMACS dump.

The library is located via ``$REPRO_IPASIR_LIB`` (a path or a bare soname)
or by probing well-known sonames; like the subprocess backend, the
registered ``ipasir`` backend stays *registered but unusable* when nothing
loads, so schedulers fail fast and tests skip instead of erroring.

Two optional extensions are used when the loaded library exports them:

* ``ipasir_set_terminate`` — maps ``time_limit`` onto a termination
  callback (expiry reports :data:`~repro.sat.solver.SolveResult.UNKNOWN`);
* CaDiCaL's ``ccadical_*`` C API — ``ipasir_init`` in ``libcadical``
  returns a ``CCaDiCaL`` handle, interchangeable with the ``ccadical_*``
  functions, so ``ccadical_limit`` forwards ``max_conflicts`` and a
  conflict counter becomes observable in :meth:`IpasirBackend.statistics`
  (that is what makes learned-clause reuse *measurable*: a re-probe of the
  same horizon reports fewer conflicts than a fresh solve).
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os
import time
from typing import Iterable, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import SolveResult

#: Environment variable naming (or pointing at) the IPASIR shared library.
IPASIR_LIB_ENV = "REPRO_IPASIR_LIB"

#: Sonames probed (in order) when :data:`IPASIR_LIB_ENV` is unset.
KNOWN_IPASIR_LIBRARIES = (
    "libcadical.so",
    "libcadical.so.1",
    "libcadical.so.2",
    "libkissat.so",
    "libkissat.so.1",
    "libpicosat.so",
    "libpicosat.so.1",
)

#: Bare library names for :func:`ctypes.util.find_library` fallback probing.
_FIND_LIBRARY_NAMES = ("cadical", "kissat", "picosat")

#: The C functions every IPASIR implementation must export.
_REQUIRED_FUNCTIONS = (
    "ipasir_init",
    "ipasir_release",
    "ipasir_add",
    "ipasir_assume",
    "ipasir_solve",
    "ipasir_val",
)

_TERMINATE_CALLBACK = ctypes.CFUNCTYPE(ctypes.c_int, ctypes.c_void_p)


def _has_ipasir_surface(lib: object) -> bool:
    """True when *lib* exposes the required IPASIR entry points."""
    try:
        return all(getattr(lib, name, None) is not None for name in _REQUIRED_FUNCTIONS)
    except Exception:  # pragma: no cover - exotic ctypes loaders
        return False


def _try_load(candidate: str) -> Optional[ctypes.CDLL]:
    try:
        lib = ctypes.CDLL(candidate)
    except OSError:
        return None
    return lib if _has_ipasir_surface(lib) else None


def load_ipasir_library() -> Optional[ctypes.CDLL]:
    """Load and return the IPASIR shared library, or ``None``.

    ``$REPRO_IPASIR_LIB`` wins when set (path or soname; a value that does
    not load or lacks the IPASIR surface yields ``None`` rather than falling
    through to probing — an explicit override should never silently bind a
    different solver).  Otherwise the well-known sonames are probed, then
    :func:`ctypes.util.find_library`.
    """
    override = os.environ.get(IPASIR_LIB_ENV)
    if override:
        return _try_load(override)
    for soname in KNOWN_IPASIR_LIBRARIES:
        lib = _try_load(soname)
        if lib is not None:
            return lib
    for name in _FIND_LIBRARY_NAMES:
        located = ctypes.util.find_library(name)
        if located:
            lib = _try_load(located)
            if lib is not None:
                return lib
    return None


def find_ipasir_library() -> Optional[str]:
    """Name of the loadable IPASIR library, or ``None`` (availability probe).

    Performs a real load attempt (the only reliable probe for a shared
    library) and reports the resolved signature when possible.  The result
    is cached per ``$REPRO_IPASIR_LIB`` value, so registry availability
    checks stay cheap.
    """
    override = os.environ.get(IPASIR_LIB_ENV, "")
    cached = _PROBE_CACHE.get(override, _PROBE_MISSING)
    if cached is not _PROBE_MISSING:
        return cached
    lib = load_ipasir_library()
    result: Optional[str] = None
    if lib is not None:
        result = ipasir_signature(lib) or getattr(lib, "_name", None) or "ipasir"
    _PROBE_CACHE[override] = result
    return result


_PROBE_MISSING = object()
_PROBE_CACHE: dict[str, Optional[str]] = {}


def ipasir_signature(lib: object) -> Optional[str]:
    """The library's ``ipasir_signature()`` string, or ``None``."""
    func = getattr(lib, "ipasir_signature", None)
    if func is None:
        return None
    try:
        func.restype = ctypes.c_char_p
    except (AttributeError, TypeError):
        pass  # test doubles: plain Python callables reject prototype sets
    try:
        raw = func()
    except Exception:
        return None
    if isinstance(raw, bytes):
        return raw.decode("utf-8", "replace")
    return str(raw) if raw else None


class IpasirBackend:
    """SAT backend driving an IPASIR shared library through ctypes.

    The incremental contract maps directly: clauses accumulate in the
    native solver via ``ipasir_add``, every :meth:`solve` passes the call's
    assumptions through ``ipasir_assume`` (so learned clauses survive
    between probes), and models are read back literal-by-literal with
    ``ipasir_val``.

    ``max_conflicts`` is forwarded through CaDiCaL's ``ccadical_limit``
    when the library exports it and ignored otherwise (a budgeted probe may
    run longer; answers never change).  ``time_limit`` uses
    ``ipasir_set_terminate`` when available.  Phase hints have no IPASIR
    entry point and are silently dropped (``supports_phase_hints=False``).

    A mirror :class:`~repro.sat.cnf.CNF` of the added clauses is kept so
    the backend can participate in DIMACS export/differential tests; the
    solver state itself lives in the native library.
    """

    backend_name = "ipasir"
    supports_assumptions = True
    supports_phase_hints = False

    def __init__(self, library: object = None) -> None:
        if library is None:
            library = load_ipasir_library()
            if library is None:
                raise RuntimeError(
                    "no IPASIR shared library found: set "
                    f"${IPASIR_LIB_ENV} or install one of "
                    f"{', '.join(KNOWN_IPASIR_LIBRARIES)}"
                )
        elif isinstance(library, (str, os.PathLike)):
            path = os.fspath(library)
            lib = _try_load(path)
            if lib is None:
                raise RuntimeError(
                    f"{path!r} did not load as an IPASIR shared library"
                )
            library = lib
        if not _has_ipasir_surface(library):
            raise RuntimeError(
                "library object lacks the IPASIR surface "
                f"({', '.join(_REQUIRED_FUNCTIONS)})"
            )
        self._lib = library
        self._configure_prototypes()
        self.signature = ipasir_signature(library)
        self._handle = self._lib.ipasir_init()
        if not self._handle:
            raise RuntimeError("ipasir_init() returned NULL")
        self._cnf = CNF()
        self._ok = True
        self._model: dict[int, bool] = {}
        self._solves = 0
        self._solve_seconds = 0.0
        # Keep the ctypes callback object alive for the duration of a solve
        # call: handing a garbage-collected callback to C is a segfault.
        self._terminate_ref: object = None

    def _configure_prototypes(self) -> None:
        """Declare C prototypes (int32 literals, void* handles).

        Every assignment is individually guarded: test doubles implement
        the surface with plain Python callables, which reject prototype
        attribute writes — they simply receive/return Python ints instead.
        """
        lib = self._lib
        c_void_p, c_int = ctypes.c_void_p, ctypes.c_int
        prototypes = {
            "ipasir_init": ([], c_void_p),
            "ipasir_release": ([c_void_p], None),
            "ipasir_add": ([c_void_p, ctypes.c_int32], None),
            "ipasir_assume": ([c_void_p, ctypes.c_int32], None),
            "ipasir_solve": ([c_void_p], c_int),
            "ipasir_val": ([c_void_p, ctypes.c_int32], ctypes.c_int32),
            "ipasir_failed": ([c_void_p, ctypes.c_int32], c_int),
            "ipasir_set_terminate": ([c_void_p, c_void_p, _TERMINATE_CALLBACK], None),
            "ccadical_limit": ([c_void_p, ctypes.c_char_p, c_int], None),
            "ccadical_conflicts": ([c_void_p], ctypes.c_int64),
        }
        for name, (argtypes, restype) in prototypes.items():
            func = getattr(lib, name, None)
            if func is None:
                continue
            try:
                func.argtypes = argtypes
                func.restype = restype
            except (AttributeError, TypeError):
                pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        handle = getattr(self, "_handle", None)
        lib = getattr(self, "_lib", None)
        if handle and lib is not None:
            try:
                lib.ipasir_release(handle)
            except Exception:
                pass
            self._handle = None

    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables known to the backend."""
        return self._cnf.num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return self._cnf.num_clauses

    def new_var(self) -> int:
        """Reserve and return a fresh variable index."""
        return self._cnf.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Feed a clause to the native solver via ``ipasir_add``.

        Returns ``False`` once the formula is trivially unsatisfiable (an
        empty clause was added) — parity with the in-process cores.
        """
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
        add = self._lib.ipasir_add
        handle = self._handle
        for lit in clause:
            add(handle, lit)
        add(handle, 0)
        self._cnf.add_clause(clause)
        if not clause:
            self._ok = False
        return self._ok

    def add_cnf(self, cnf: CNF) -> bool:
        """Add every clause of *cnf* (parity with the in-process cores)."""
        while self._cnf.num_vars < cnf.num_vars:
            self._cnf.new_var()
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def set_phase_hints(self, phases: dict[int, bool]) -> None:
        """IPASIR has no phase entry point; hints are dropped (see flag)."""

    def statistics(self) -> dict[str, float]:
        """Coarse counters: solve calls and wall-clock, plus ``conflicts``
        when the library exports CaDiCaL's ``ccadical_conflicts`` getter.

        With the conflict counter present, learned-clause reuse becomes
        measurable: re-probing a horizon costs fewer conflicts than the
        fresh solve did.  Consumers must treat every key as optional.
        """
        stats: dict[str, float] = {
            "ipasir_solves": self._solves,
            "solve_seconds": self._solve_seconds,
        }
        getter = getattr(self._lib, "ccadical_conflicts", None)
        if getter is not None:
            try:
                stats["conflicts"] = int(getter(self._handle))
            except Exception:
                pass
        return stats

    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Decide the accumulated formula under *assumptions* (native)."""
        if not self._ok:
            return SolveResult.UNSAT
        start = time.monotonic()
        try:
            return self._solve_native(assumptions, max_conflicts, time_limit)
        finally:
            self._solves += 1
            self._solve_seconds += time.monotonic() - start

    def _solve_native(
        self,
        assumptions: Sequence[int],
        max_conflicts: Optional[int],
        time_limit: Optional[float],
    ) -> SolveResult:
        lib = self._lib
        handle = self._handle
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if abs(lit) > self._cnf.num_vars:
                while self._cnf.num_vars < abs(lit):
                    self._cnf.new_var()
        assume = lib.ipasir_assume
        for lit in assumptions:
            assume(handle, lit)
        limit = getattr(lib, "ccadical_limit", None)
        if max_conflicts is not None and limit is not None:
            try:
                limit(handle, b"conflicts", int(max_conflicts))
            except Exception:
                pass
        self._arm_terminate(time_limit)
        try:
            code = int(lib.ipasir_solve(handle))
        finally:
            self._disarm_terminate()
        if code == 20:
            return SolveResult.UNSAT
        if code == 10:
            self._model = self._read_model()
            return SolveResult.SAT
        if code == 0:
            return SolveResult.UNKNOWN
        raise RuntimeError(
            f"ipasir_solve() returned unexpected code {code} "
            f"(library {self.signature or 'unknown'!r})"
        )

    def _arm_terminate(self, time_limit: Optional[float]) -> None:
        setter = getattr(self._lib, "ipasir_set_terminate", None)
        if setter is None or time_limit is None:
            return
        deadline = time.monotonic() + time_limit

        def expired(_state: object) -> int:
            return 1 if time.monotonic() > deadline else 0

        try:
            callback = _TERMINATE_CALLBACK(expired)
            setter(self._handle, None, callback)
            self._terminate_ref = callback
        except (TypeError, ctypes.ArgumentError):
            # Python test double: hand it the plain callable.
            try:
                setter(self._handle, None, expired)
                self._terminate_ref = expired
            except Exception:
                self._terminate_ref = None

    def _disarm_terminate(self) -> None:
        if self._terminate_ref is None:
            return
        setter = getattr(self._lib, "ipasir_set_terminate", None)
        if setter is not None:
            try:
                setter(self._handle, None, _TERMINATE_CALLBACK())
            except (TypeError, ctypes.ArgumentError, ValueError):
                try:
                    setter(self._handle, None, None)
                except Exception:
                    pass
        self._terminate_ref = None

    def _read_model(self) -> dict[int, bool]:
        val = self._lib.ipasir_val
        handle = self._handle
        model: dict[int, bool] = {}
        for var in range(1, self._cnf.num_vars + 1):
            lit = int(val(handle, var))
            # 0 means "either way": default to False like the flat core's
            # unconstrained variables.
            model[var] = lit > 0
        return model

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last SAT call."""
        if not self._model:
            raise RuntimeError("no model available; call solve() first")
        return dict(self._model)
