"""Backend failure taxonomy for the retry/degradation machinery.

Backends classify their failures so the SMT facade can decide between
retrying and degrading:

* :class:`TransientBackendError` — the solve *attempt* failed but the
  backend's clause database is intact and a retry may succeed (a crashed
  subprocess, a flaky native library call, an injected chaos fault).  The
  :class:`repro.smt.solver.Solver` retries these with bounded deterministic
  backoff before escalating.
* :class:`PermanentBackendError` — the backend cannot serve further solves
  (unparseable model output, unmet runtime requirements, a crash-after-N
  chaos fault).  Never retried; strategies degrade to a report with
  ``termination="backend-error"`` and the analytic interval intact.

Both derive from :class:`BackendError`, which itself derives from
``RuntimeError`` so pre-existing callers catching ``RuntimeError`` keep
working.
"""

from __future__ import annotations


class BackendError(RuntimeError):
    """Base class of every classified SAT-backend failure."""


class TransientBackendError(BackendError):
    """A retryable failure: backend state intact, a retry may succeed."""


class PermanentBackendError(BackendError):
    """A non-retryable failure: the backend cannot serve further solves."""
