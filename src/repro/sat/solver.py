"""A conflict-driven clause-learning (CDCL) SAT solver on flat arrays.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation with *blocker literals*,
* first-UIP conflict analysis with clause learning and local minimisation,
* VSIDS variable activities on an *indexed binary max-heap* (no linear
  scans per decision) with phase saving,
* Luby-sequence restarts,
* LBD-aware learned-clause database reduction (glue clauses are kept),
* *chronological backtracking* (C-bt à la CaDiCaL/Maple-ChronoBT): when
  conflict analysis asks for a backjump much deeper than the current
  decision level, the solver optionally backtracks a single level instead
  and re-attaches the asserting literal there, keeping the still-valid
  propagations of the intermediate levels alive.  Gated by the ``chrono``
  knob; off means bit-identical behaviour to the pre-chrono core,
* *inprocessing between restarts*: clause vivification (probe each
  irredundant clause's literals under the current trail and shrink it when
  a prefix is already contradictory or implies a later literal) and
  bounded forward subsumption / self-subsuming resolution, with an extra
  subsumption sweep folded into learned-DB reduction.  Gated by the
  ``inprocessing`` knob,
* solving under assumptions (used by the SMT layer for incremental queries).

Hot-path data layout
--------------------

Everything the propagate/analyze loop touches lives in flat, integer-indexed
structures instead of per-clause objects or dictionaries:

* ``_ca`` — one clause *arena*: a single Python list holding every clause as
  ``[size, learned, lbd, activity, lit0, lit1, ...]``.  A clause is
  identified by its arena offset, which doubles as the reason reference.
  (A ``array('i')`` arena was measured slower here: CPython re-boxes every
  element read above the small-int cache, whereas a list of already-boxed
  ints is a pointer load.  ``array('i')`` is still used for the per-literal
  assignment values, whose domain {0, 1, 2} always hits the cache.)
* ``_values`` — assignment state per *encoded literal* (``var<<1 | sign``),
  so the inner loop reads truth values with one index, no xor/shift.
* ``_watches`` — per-literal flat lists alternating ``clause_offset,
  blocker``; a true blocker skips the clause without touching the arena.
* ``_bin_watches`` — binary clauses are specialised out of the generic watch
  scheme: per-literal flat lists alternating ``other_literal,
  clause_offset``.  Propagating a binary clause reads the implied literal
  straight from the watch list — no arena dereference, no watch migration
  (both literals of a 2-clause are always watched).  The arena still holds
  the clause so conflict analysis and reason tracking are unchanged.
* ``_trail``/``_trail_lim`` — the assignment trail, inlined into the
  propagation loop (no queue objects, ``_qhead`` is a plain cursor).

The previous object-style implementation is preserved unchanged as
:class:`repro.sat.reference.ReferenceCDCLSolver`; benchmarks race the two
and fail if this rewrite stops being strictly faster.  Both cores return
identical SAT/UNSAT answers on every formula (models may differ).
"""

from __future__ import annotations

import enum
import time
from array import array
from typing import Iterable, Optional, Sequence

from repro.sat.cnf import CNF

_UNASSIGNED = 2

#: Arena slots before a clause's literals: [size, learned, lbd, activity].
_HDR = 4

#: Default for the ``chrono`` knob of :class:`CDCLSolver`.  Chronological
#: backtracking is on by default: the ``repro-nasp microbench --chrono`` gate
#: races the two modes and fails CI if chrono-on stops paying for itself on
#: the UNSAT-heavy cells.  Pass ``chrono=False`` (or the ``flat-nochrono``
#: registry backend) for the bit-identical pre-chrono search.
CHRONO_DEFAULT = True

#: Default for the ``inprocessing`` knob (vivification + subsumption).
INPROCESSING_DEFAULT = True

#: Minimum backjump distance (in decision levels) before chronological
#: backtracking replaces the non-chronological jump.  Short jumps backtrack
#: normally: re-propagating a couple of levels is cheaper than the extra
#: conflicts chrono can take to converge (CaDiCaL ships 100; the Python
#: core's trail is far more expensive to rebuild relative to its conflict
#: analysis, so the microbench-tuned default is much lower).
CHRONO_THRESHOLD_DEFAULT = 8

#: Conflicts between two inprocessing rounds (vivification + subsumption run
#: at the first restart after this many conflicts accumulated).
INPROCESS_INTERVAL_DEFAULT = 2000

#: Propagation budget of one vivification round.
_VIVIFY_BUDGET = 20_000

#: Subset-test budget of one subsumption round.
_SUBSUME_BUDGET = 4_000

#: Clauses longer than this are never vivification/subsumption candidates
#: (quadratic blow-up guard; long clauses rarely subsume anything).
_INPROCESS_MAX_SIZE = 24


class SolveResult(enum.Enum):
    """Outcome of a :meth:`CDCLSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """Return the *i*-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) <= i + 1:
        k += 1
    while True:
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1))
        k = 1
        while (1 << (k + 1)) <= i + 1:
            k += 1


class SolverStatistics:
    """Counters collected during solving (useful for benchmarks and tests).

    All attributes are monotone counters except ``max_decision_level`` (a
    high-water gauge).  ``solve_seconds`` accumulates wall-clock time spent
    inside :meth:`CDCLSolver.solve`; the throughput rates derived from it
    (:attr:`propagations_per_second`, :attr:`conflicts_per_second`) are
    lifetime averages — per-call rates are computed by the SMT layer from
    counter deltas.
    """

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.chrono_backtracks = 0
        self.vivified_literals = 0
        self.subsumed_clauses = 0
        self.max_decision_level = 0
        self.solve_seconds = 0.0

    # The throughput denominators are floored at 1 ns: a trivially-fast probe
    # can record a ``solve_seconds`` tiny enough (denormal floats) that the
    # division overflows to ``inf``, which poisons the bench-trend throughput
    # ratios downstream.  Exactly-zero still reports 0.0 (never solved).

    @property
    def propagations_per_second(self) -> float:
        """Lifetime propagation throughput (0.0 before the first solve)."""
        if not self.solve_seconds:
            return 0.0
        return self.propagations / max(self.solve_seconds, 1e-9)

    @property
    def conflicts_per_second(self) -> float:
        """Lifetime conflict throughput (0.0 before the first solve)."""
        if not self.solve_seconds:
            return 0.0
        return self.conflicts / max(self.solve_seconds, 1e-9)

    def as_dict(self, rates: bool = False) -> dict[str, float]:
        """Return the statistics as a plain dictionary.

        The default returns the raw counters only (diffable across calls);
        ``rates=True`` additionally includes the derived lifetime rates.
        """
        counters = dict(self.__dict__)
        if rates:
            counters["propagations_per_second"] = self.propagations_per_second
            counters["conflicts_per_second"] = self.conflicts_per_second
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStatistics({fields})"


class CDCLSolver:
    """CDCL SAT solver over DIMACS-style literals.

    Typical use::

        solver = CDCLSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a])
        assert solver.solve() is SolveResult.SAT
        assert solver.model()[b] is True
    """

    #: :class:`repro.sat.backend.SatBackend` surface.
    backend_name = "flat"
    supports_assumptions = True
    supports_phase_hints = True

    def __init__(
        self,
        chrono: Optional[bool] = None,
        inprocessing: Optional[bool] = None,
        chrono_threshold: Optional[int] = None,
        inprocess_interval: Optional[int] = None,
    ) -> None:
        """Create an empty solver.

        Parameters
        ----------
        chrono:
            Enable chronological backtracking (``None`` → module default
            :data:`CHRONO_DEFAULT`).  ``False`` is bit-identical to the
            pre-chrono search on every formula.
        inprocessing:
            Enable vivification + subsumption between restarts (``None`` →
            :data:`INPROCESSING_DEFAULT`).
        chrono_threshold:
            Minimum backjump distance before chrono replaces the jump
            (clamped to >= 1 so a chronological step always makes progress).
        inprocess_interval:
            Conflicts between two inprocessing rounds.
        """
        self._chrono = CHRONO_DEFAULT if chrono is None else bool(chrono)
        self._inprocessing = (
            INPROCESSING_DEFAULT if inprocessing is None else bool(inprocessing)
        )
        self._chrono_threshold = max(
            1,
            CHRONO_THRESHOLD_DEFAULT if chrono_threshold is None else int(chrono_threshold),
        )
        self._inprocess_interval = max(
            1,
            INPROCESS_INTERVAL_DEFAULT
            if inprocess_interval is None
            else int(inprocess_interval),
        )
        # Conflict count at the last inprocessing round, rotating cursor of
        # the vivifier, and offsets of clauses killed by the current round
        # (removed from the arena at the next `_rebuild_clause_db`).
        self._last_inprocess = 0
        self._vivify_cursor = 0
        self._dead: set[int] = set()
        self._num_vars = 0
        # Indexed by variable (1-based); index 0 unused.
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._saved_phase: list[bool] = [False]
        self._seen: list[bool] = [False]
        # Assignment state per encoded literal (slots 0/1 unused).
        self._values = array("i", [_UNASSIGNED, _UNASSIGNED])
        # Clause arena + offsets of every live clause (problem and learned).
        self._ca: list = []
        self._clause_refs: list[int] = []
        # Watch lists per encoded literal: flat [offset, blocker, ...] pairs.
        self._watches: list[list[int]] = [[], []]
        # Binary-clause watch lists: flat [other_literal, offset, ...] pairs.
        self._bin_watches: list[list[int]] = [[], []]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # VSIDS order: indexed binary max-heap over variable activities.
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._model: dict[int, bool] = {}
        self.stats = SolverStatistics()

    # ------------------------------------------------------------------ #
    # Literal encoding helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _encode(lit: int) -> int:
        var = abs(lit)
        return (var << 1) | (1 if lit < 0 else 0)

    @staticmethod
    def _decode(enc: int) -> int:
        var = enc >> 1
        return -var if enc & 1 else var

    def _lit_value(self, enc: int) -> int:
        return self._values[enc]

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem plus learned clauses currently stored."""
        return len(self._clause_refs)

    def new_var(self) -> int:
        """Create a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._saved_phase.append(False)
        self._seen.append(False)
        self._values.append(_UNASSIGNED)
        self._values.append(_UNASSIGNED)
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        self._heap_pos.append(-1)
        self._heap_insert(self._num_vars)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause.  Returns ``False`` if the formula became
        trivially unsatisfiable (empty clause or conflicting units)."""
        if not self._ok:
            return False
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            enc = (abs(lit) << 1) | (1 if lit < 0 else 0)
            # Drop literals already false at level 0, ignore clause if a
            # literal is already true at level 0.
            if not self._trail_lim:
                val = self._values[enc]
                if val == 1:
                    return True
                if val == 0:
                    continue
            clause.append(enc)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict != -1:
                self._ok = False
                return False
            return True
        self._attach_clause(clause, learned=False)
        return True

    def set_phase_hints(self, phases: dict[int, bool]) -> None:
        """Seed the saved phase of variables with preferred polarities.

        Phase hints only steer the branching heuristic (the polarity a
        variable is first decided with); they can never change the SAT/UNSAT
        answer.  Phases saved later by backtracking overwrite the hints, so
        seeding is most effective right before a :meth:`solve` call.
        """
        for var, value in phases.items():
            if var <= 0:
                raise ValueError(f"{var} is not a valid variable index")
            self._ensure_var(var)
            self._saved_phase[var] = bool(value)

    def statistics(self) -> dict[str, float]:
        """Counters as a plain dict — the :class:`~repro.sat.backend.SatBackend`
        surface of :attr:`stats` (consumers diff successive snapshots)."""
        return self.stats.as_dict()

    def add_cnf(self, cnf: CNF) -> bool:
        """Add every clause of a :class:`~repro.sat.cnf.CNF` formula."""
        self._ensure_var(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach_clause(self, clause: list[int], learned: bool, lbd: int = 0) -> int:
        ca = self._ca
        offset = len(ca)
        ca.append(len(clause))
        ca.append(1 if learned else 0)
        ca.append(lbd)
        ca.append(0.0)
        ca.extend(clause)
        self._clause_refs.append(offset)
        if len(clause) == 2:
            self._bin_watches[clause[0]].extend((clause[1], offset))
            self._bin_watches[clause[1]].extend((clause[0], offset))
        else:
            self._watches[clause[0]].extend((offset, clause[1]))
            self._watches[clause[1]].extend((offset, clause[0]))
        return offset

    # ------------------------------------------------------------------ #
    # VSIDS order heap (indexed binary max-heap on variable activity)
    # ------------------------------------------------------------------ #
    def _heap_insert(self, var: int) -> None:
        pos = self._heap_pos
        if pos[var] != -1:
            return
        heap = self._heap
        heap.append(var)
        self._heap_sift_up(len(heap) - 1)

    # Heap order: higher activity first, ties broken towards the smaller
    # variable index — exactly the order the seed's linear scan produced, so
    # phase hints and the first descent behave identically across cores.
    def _heap_sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        var = heap[i]
        a = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            pa = act[pv]
            if pa > a or (pa == a and pv < var):
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _heap_sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._heap_pos, self._activity
        n = len(heap)
        var = heap[i]
        a = act[var]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = left
            if right < n:
                la, ra = act[heap[left]], act[heap[right]]
                if ra > la or (ra == la and heap[right] < heap[left]):
                    child = right
            cv = heap[child]
            ca = act[cv]
            if ca < a or (ca == a and var < cv):
                break
            heap[i] = cv
            pos[cv] = i
            i = child
        heap[i] = var
        pos[var] = i

    def _heap_pop(self) -> int:
        heap, pos = self._heap, self._heap_pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _pick_branch_var(self) -> int:
        values = self._values
        heap = self._heap
        while heap:
            var = self._heap_pop()
            if values[var << 1] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------ #
    # Assignment / propagation
    # ------------------------------------------------------------------ #
    def _enqueue(self, enc: int, reason: int) -> bool:
        values = self._values
        val = values[enc]
        if val == 0:
            return False
        if val == 1:
            return True
        values[enc] = 1
        values[enc ^ 1] = 0
        var = enc >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(enc)
        return True

    def _propagate(self) -> int:
        """Unit propagation.  Returns the arena offset of a conflicting
        clause, or -1 when a fixpoint is reached without conflict."""
        # Local aliases: every hot name resolves to a fast local load.
        ca = self._ca
        values = self._values
        watches = self._watches
        bin_watches = self._bin_watches
        trail = self._trail
        trail_lim = self._trail_lim
        level = self._level
        reason = self._reason
        qhead = self._qhead
        propagations = 0
        conflict = -1
        while qhead < len(trail):
            enc = trail[qhead]
            qhead += 1
            propagations += 1
            false_lit = enc ^ 1
            # Binary clauses first: the implied literal sits right in the
            # watch pair, so no arena record is ever dereferenced.
            bwl = bin_watches[false_lit]
            for k in range(0, len(bwl), 2):
                other = bwl[k]
                val = values[other]
                if val == 1:
                    continue
                if val == 0:
                    conflict = bwl[k + 1]
                    break
                values[other] = 1
                values[other ^ 1] = 0
                var = other >> 1
                level[var] = len(trail_lim)
                reason[var] = bwl[k + 1]
                trail.append(other)
            if conflict != -1:
                break
            wl = watches[false_lit]
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                offset = wl[i]
                blocker = wl[i + 1]
                i += 2
                if values[blocker] == 1:
                    wl[j] = offset
                    wl[j + 1] = blocker
                    j += 2
                    continue
                base = offset + _HDR
                first = ca[base]
                if first == false_lit:
                    first = ca[base + 1]
                    ca[base] = first
                    ca[base + 1] = false_lit
                if values[first] == 1:
                    wl[j] = offset
                    wl[j + 1] = first
                    j += 2
                    continue
                # Look for a new literal to watch.
                k = base + 2
                end = base + ca[offset]
                while k < end:
                    other = ca[k]
                    if values[other] != 0:
                        ca[base + 1] = other
                        ca[k] = false_lit
                        watches[other].extend((offset, first))
                        break
                    k += 1
                else:
                    # Clause is unit or conflicting.
                    wl[j] = offset
                    wl[j + 1] = first
                    j += 2
                    if values[first] == 0:
                        # Conflict: keep the remaining watches and report.
                        while i < n:
                            wl[j] = wl[i]
                            j += 1
                            i += 1
                        conflict = offset
                        break
                    values[first] = 1
                    values[first ^ 1] = 0
                    var = first >> 1
                    level[var] = len(trail_lim)
                    reason[var] = offset
                    trail.append(first)
            del wl[j:]
            if conflict != -1:
                break
        self._qhead = qhead
        self.stats.propagations += propagations
        return conflict

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #
    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            # Uniform rescale preserves the heap order.
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
        pos = self._heap_pos[var]
        if pos != -1:
            self._heap_sift_up(pos)

    def _bump_clause(self, offset: int) -> None:
        ca = self._ca
        ca[offset + 3] += self._cla_inc
        if ca[offset + 3] > 1e20:
            for other in self._clause_refs:
                ca[other + 3] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (encoded literals, asserting literal
        first), the backtrack level, and the clause's LBD (number of
        distinct decision levels among its literals).
        """
        ca = self._ca
        level = self._level
        reason = self._reason
        trail = self._trail
        seen = self._seen
        learned: list[int] = [0]  # placeholder for the asserting literal
        counter = 0
        p = -1
        index = len(trail) - 1
        current_level = len(self._trail_lim)
        offset = conflict
        while True:
            if ca[offset + 1]:  # learned clause: bump its activity
                self._bump_clause(offset)
            base = offset + _HDR
            # Skip the literal being resolved on by value, not by position:
            # binary clauses are propagated without normalising the arena
            # record, so the implied literal is not guaranteed to sit first.
            for k in range(base, base + ca[offset]):
                enc = ca[k]
                if enc == p:
                    continue
                var = enc >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(enc)
            # Select next literal to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            var = p >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            offset = reason[var]
        learned[0] = p ^ 1
        # Clause minimisation (Sörensson/Biere "local" minimisation): a
        # literal is redundant when every literal of its reason clause is
        # either at level 0 or already part of the learned clause.
        original = list(learned)
        learned_vars = {enc >> 1 for enc in learned}
        minimized = [learned[0]]
        for enc in learned[1:]:
            var = enc >> 1
            r = reason[var]
            if r == -1:
                minimized.append(enc)
                continue
            redundant = True
            base = r + _HDR
            for k in range(base, base + ca[r]):
                other = ca[k] >> 1
                if other != var and level[other] != 0 and other not in learned_vars:
                    redundant = False
                    break
            if not redundant:
                minimized.append(enc)
        learned = minimized
        # Clear the seen flags of *all* literals touched by this analysis,
        # including the ones dropped by minimisation.
        for enc in original:
            seen[enc >> 1] = False
        lbd = len({level[enc >> 1] for enc in learned})
        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the literal with the second-highest level and move it to
            # position 1 (needed for correct watching).
            max_i = 1
            for i in range(2, len(learned)):
                if level[learned[i] >> 1] > level[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backtrack_level = level[learned[1] >> 1]
        return learned, backtrack_level, lbd

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        values = self._values
        saved_phase = self._saved_phase
        reason = self._reason
        heap_pos = self._heap_pos
        trail = self._trail
        bound = self._trail_lim[level]
        for enc in reversed(trail[bound:]):
            var = enc >> 1
            saved_phase[var] = not (enc & 1)
            values[enc] = _UNASSIGNED
            values[enc ^ 1] = _UNASSIGNED
            reason[var] = -1
            if heap_pos[var] == -1:
                self._heap_insert(var)
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------ #
    # Learned clause database reduction (LBD-aware)
    # ------------------------------------------------------------------ #
    def _reduce_db(self) -> None:
        """Drop half of the unhelpful learned clauses.

        Candidates are learned clauses longer than 2 literals that are not
        *glue* (LBD <= 2) and not locked as a reason on the trail; they are
        ranked worst-first by (high LBD, low activity), glucose-style.

        With inprocessing enabled, a kill-only subsumption sweep runs first
        (strengthening is unsafe at a non-zero decision level — see
        :meth:`_subsume_round`) and its casualties ride along in the same
        arena rebuild.
        """
        ca = self._ca
        locked = {self._reason[enc >> 1] for enc in self._trail}
        if self._inprocessing:
            # Kill-only: never returns False without strengthening.
            self._subsume_round(locked=frozenset(locked), strengthen=False)
        dead = self._dead
        candidates = [
            offset
            for offset in self._clause_refs
            if ca[offset + 1]
            and ca[offset] > 2
            and ca[offset + 2] > 2
            and offset not in dead
        ]
        to_remove = set()
        if len(candidates) >= 100:
            candidates.sort(key=lambda offset: (-ca[offset + 2], ca[offset + 3]))
            for offset in candidates[: len(candidates) // 2]:
                if offset not in locked:
                    to_remove.add(offset)
        if not to_remove and not dead:
            return
        self._rebuild_clause_db(to_remove)
        self.stats.deleted_clauses += len(to_remove)

    def _rebuild_clause_db(self, to_remove: set[int]) -> None:
        """Compact the arena, dropping *to_remove* plus every clause marked
        dead by inprocessing, and rebuild the watch lists."""
        if self._dead:
            to_remove = to_remove | self._dead
            self._dead = set()
        old_ca = self._ca
        new_ca: list = []
        new_refs: list[int] = []
        remap: dict[int, int] = {}
        for offset in self._clause_refs:
            if offset in to_remove:
                continue
            new_offset = len(new_ca)
            remap[offset] = new_offset
            new_ca.extend(old_ca[offset : offset + _HDR + old_ca[offset]])
            new_refs.append(new_offset)
        self._ca = new_ca
        self._clause_refs = new_refs
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason != -1:
                self._reason[var] = remap.get(reason, -1)
        self._watches = [[] for _ in range(2 * self._num_vars + 2)]
        self._bin_watches = [[] for _ in range(2 * self._num_vars + 2)]
        watches = self._watches
        bin_watches = self._bin_watches
        for offset in new_refs:
            base = offset + _HDR
            first, second = new_ca[base], new_ca[base + 1]
            if new_ca[offset] == 2:
                bin_watches[first].extend((second, offset))
                bin_watches[second].extend((first, offset))
            else:
                watches[first].extend((offset, second))
                watches[second].extend((offset, first))

    # ------------------------------------------------------------------ #
    # Inprocessing: vivification + subsumption between restarts
    # ------------------------------------------------------------------ #
    def _detach_clause(self, offset: int) -> None:
        """Remove *offset* from the watch lists of its two watched literals.

        The watched literals of a live clause are always arena slots 0 and 1
        (propagation maintains this invariant when migrating watches).
        """
        ca = self._ca
        base = offset + _HDR
        if ca[offset] == 2:
            for enc in (ca[base], ca[base + 1]):
                wl = self._bin_watches[enc]
                for k in range(0, len(wl), 2):
                    if wl[k + 1] == offset:
                        del wl[k : k + 2]
                        break
        else:
            for enc in (ca[base], ca[base + 1]):
                wl = self._watches[enc]
                for k in range(0, len(wl), 2):
                    if wl[k] == offset:
                        del wl[k : k + 2]
                        break

    def _attach_watches(self, offset: int) -> None:
        """Re-insert *offset* (already in the arena) into the watch lists."""
        ca = self._ca
        base = offset + _HDR
        first, second = ca[base], ca[base + 1]
        if ca[offset] == 2:
            self._bin_watches[first].extend((second, offset))
            self._bin_watches[second].extend((first, offset))
        else:
            self._watches[first].extend((offset, second))
            self._watches[second].extend((offset, first))

    def _commit_simplified(self, lits: list[int], learned: bool, lbd: int = 0) -> bool:
        """Attach a clause derived by inprocessing.  Level 0 only.

        Mirrors :meth:`add_clause`'s root simplification: literals false at
        the root are dropped and a clause satisfied by a root fact is not
        stored (the fact itself is exported by :meth:`to_cnf`, so the
        snapshot stays equisatisfiable).  Attaching only root-unassigned
        literals keeps the two-watch invariant intact — a clause must never
        enter the watch lists with an already-false watch, whose
        falsification event propagation has already processed.

        Returns ``False`` when the formula became unsatisfiable.
        """
        values = self._values
        out: list[int] = []
        for enc in lits:
            val = values[enc]
            if val == 1:
                return True
            if val == 0:
                continue
            out.append(enc)
        if not out:
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], -1):
                return False
            return self._propagate() == -1
        self._attach_clause(out, learned=learned, lbd=min(lbd, len(out)) if learned else 0)
        return True

    def _inprocess(self) -> bool:
        """One inprocessing round: vivify, subsume, compact the arena.

        Called at decision level 0 (right after a restart), so every
        simplification derived here is implied by the formula alone — never
        by the assumptions of the current :meth:`solve` call.  Returns
        ``False`` when the round proves the formula unsatisfiable.
        """
        if not self._vivify_round():
            return False
        if not self._subsume_round():
            return False
        if self._dead:
            self._rebuild_clause_db(set())
        return True

    def _vivify_round(self) -> bool:
        """Clause vivification over the irredundant (problem) clauses.

        For each candidate the solver assumes the negation of its literals
        one at a time under real unit propagation.  Three outcomes shrink
        the clause ``C = l1 .. lk`` at position ``i``:

        * ``li`` propagated *true*: the negated prefix implies ``li``, so
          ``C`` shrinks to ``(kept prefix) + [li]``;
        * ``li`` propagated *false*: ``li`` is redundant in ``C`` (the
          resolvent on ``li`` subsumes ``C``) and is dropped;
        * propagating ``not li`` conflicts: the formula implies
          ``(kept prefix) + [li]``.

        A rotating cursor plus a propagation budget bound the round; the
        cursor persists across rounds so successive rounds examine different
        clauses.
        """
        ca = self._ca
        values = self._values
        dead = self._dead
        stats = self.stats
        refs = self._clause_refs
        n = len(refs)
        if not n:
            return True
        budget_start = stats.propagations
        cursor = self._vivify_cursor % n
        examined = 0
        while examined < n and stats.propagations - budget_start < _VIVIFY_BUDGET:
            offset = refs[cursor]
            cursor = (cursor + 1) % n
            examined += 1
            size = ca[offset]
            if (
                offset in dead
                or ca[offset + 1]  # learned: only irredundant clauses
                or size < 3
                or size > _INPROCESS_MAX_SIZE
            ):
                continue
            base = offset + _HDR
            lits = ca[base : base + size]
            if any(values[enc] == 1 for enc in lits):
                continue  # satisfied by a root fact
            # Detach first: the clause must not propagate its own last
            # literal while its other literals are being assumed false.
            self._detach_clause(offset)
            kept: list[int] = []
            new_clause: Optional[list[int]] = None
            dropped = False
            for enc in lits:
                val = values[enc]
                if val == 1:
                    cand = kept + [enc]
                    if len(cand) < size:
                        new_clause = cand
                    break
                if val == 0:
                    dropped = True
                    continue
                self._trail_lim.append(len(self._trail))
                self._enqueue(enc ^ 1, -1)
                if self._propagate() != -1:
                    cand = kept + [enc]
                    if len(cand) < size:
                        new_clause = cand
                    break
                kept.append(enc)
            else:
                if dropped:
                    new_clause = kept
            self._backtrack(0)
            if new_clause is None:
                self._attach_watches(offset)
                continue
            stats.vivified_literals += size - len(new_clause)
            dead.add(offset)
            if not self._commit_simplified(new_clause, learned=False):
                return False
        self._vivify_cursor = cursor
        return True

    def _subsume_round(
        self,
        locked: frozenset[int] = frozenset(),
        strengthen: bool = True,
    ) -> bool:
        """Bounded forward subsumption and self-subsuming resolution.

        For a clause ``C`` and a candidate ``D`` sharing a literal of ``C``
        (or its negation): ``C ⊆ D`` kills ``D`` outright, and ``C`` with
        exactly one literal negated in ``D`` strengthens ``D`` by resolving
        that literal away.  Killed clauses are only *marked* dead — they
        stay in the watch lists until the next arena rebuild, which is sound
        because every dead clause is implied by a live one.  A learned
        subsumer of a problem clause is promoted to problem status first, so
        :meth:`to_cnf` exports stay equisatisfiable.

        ``strengthen`` must be ``False`` when called at a non-zero decision
        level (from :meth:`_reduce_db`): attaching a strengthened clause
        whose watches are already false mid-search can silently miss the
        conflict that falsifies it.  ``locked`` excludes reason clauses of
        the current trail from being killed.
        """
        ca = self._ca
        values = self._values
        dead = self._dead
        stats = self.stats
        occurs: dict[int, list[int]] = {}
        lit_sets: dict[int, frozenset[int]] = {}
        cands: list[int] = []
        for offset in self._clause_refs:
            if offset in dead:
                continue
            size = ca[offset]
            if size > _INPROCESS_MAX_SIZE:
                continue
            base = offset + _HDR
            lits = ca[base : base + size]
            if any(values[enc] == 1 for enc in lits):
                continue
            cands.append(offset)
            lit_sets[offset] = frozenset(lits)
            for enc in lits:
                occurs.setdefault(enc, []).append(offset)
        cands.sort(key=lambda offset: ca[offset])  # short subsumers first
        budget = _SUBSUME_BUDGET
        empty: list[int] = []
        for offset in cands:
            if budget <= 0:
                break
            if offset in dead:
                continue
            c_set = lit_sets[offset]
            c_size = ca[offset]
            # Scan the occurrence lists of C's rarest literal and of its
            # negation: C ⊆ D needs every literal of C in D, and resolving
            # on `l` needs `¬l` in D — either way D holds pivot or ¬pivot.
            pivot = min(c_set, key=lambda enc: len(occurs.get(enc, empty)))
            for other in occurs.get(pivot, empty) + occurs.get(pivot ^ 1, empty):
                if budget <= 0:
                    break
                if other == offset or other in dead or other in locked:
                    continue
                if ca[other] < c_size:
                    continue
                budget -= 1
                d_set = lit_sets[other]
                flip = 0
                ok = True
                for enc in c_set:
                    if enc in d_set:
                        continue
                    if flip == 0 and (enc ^ 1) in d_set:
                        flip = enc
                        continue
                    ok = False
                    break
                if not ok:
                    continue
                if flip == 0:
                    if ca[other + 1] == 0 and ca[offset + 1] == 1:
                        # Learned C subsumes problem D: promote C so the
                        # problem-clause export keeps covering D.
                        ca[offset + 1] = 0
                        ca[offset + 2] = 0
                    dead.add(other)
                    stats.subsumed_clauses += 1
                elif strengthen:
                    # Self-subsuming resolution: D := D \ {¬flip}.
                    new_lits = [enc for enc in lit_sets[other] if enc != flip ^ 1]
                    was_learned = bool(ca[other + 1])
                    self._detach_clause(other)
                    dead.add(other)
                    stats.vivified_literals += 1
                    if not self._commit_simplified(
                        new_lits, learned=was_learned, lbd=ca[other + 2]
                    ):
                        return False
        return True

    # ------------------------------------------------------------------ #
    # Main search
    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Solve the formula, optionally under *assumptions*.

        Parameters
        ----------
        assumptions:
            DIMACS literals assumed true for this call only.
        max_conflicts:
            Abort with :data:`SolveResult.UNKNOWN` after this many conflicts.
        time_limit:
            Abort with :data:`SolveResult.UNKNOWN` after this many seconds.
        """
        start = time.monotonic()
        try:
            return self._solve(assumptions, max_conflicts, time_limit)
        finally:
            self.stats.solve_seconds += time.monotonic() - start

    def _solve(
        self,
        assumptions: Sequence[int],
        max_conflicts: Optional[int],
        time_limit: Optional[float],
    ) -> SolveResult:
        if not self._ok:
            return SolveResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict != -1:
            self._ok = False
            return SolveResult.UNSAT
        for lit in assumptions:
            self._ensure_var(abs(lit))
        assumption_encs = [self._encode(lit) for lit in assumptions]
        deadline = time.monotonic() + time_limit if time_limit is not None else None
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count + 1)
        conflicts_since_restart = 0
        total_conflicts = 0
        max_learned = max(2000, self.num_clauses // 3)
        values = self._values
        stats = self.stats
        chrono = self._chrono
        chrono_threshold = self._chrono_threshold
        inprocessing = self._inprocessing

        while True:
            conflict = self._propagate()
            if conflict != -1:
                stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    return SolveResult.UNSAT
                if len(self._trail_lim) <= len(assumption_encs):
                    # Conflict within the assumption levels: UNSAT under
                    # these assumptions (the base formula may still be SAT).
                    self._backtrack(0)
                    return SolveResult.UNSAT
                learned, backtrack_level, lbd = self._analyze(conflict)
                if (
                    chrono
                    and len(learned) > 1
                    and len(self._trail_lim) - backtrack_level > chrono_threshold
                ):
                    # Chronological backtracking: the backjump would discard
                    # many levels of still-valid propagations, so step back a
                    # single level instead and assert the learned clause
                    # there.  The asserting literal is enqueued with the
                    # learned clause as reason, so it is a propagation — the
                    # level structure (assumptions first, then decisions)
                    # is untouched.  `chrono_threshold >= 1` guarantees
                    # `len(trail_lim) - 1 > backtrack_level`, so the clause
                    # is genuinely asserting at the target level.
                    backtrack_level = len(self._trail_lim) - 1
                    stats.chrono_backtracks += 1
                self._backtrack(max(backtrack_level, 0))
                if len(learned) == 1:
                    self._backtrack(0)
                    if not self._enqueue(learned[0], -1):
                        self._ok = False
                        return SolveResult.UNSAT
                else:
                    offset = self._attach_clause(learned, learned=True, lbd=lbd)
                    stats.learned_clauses += 1
                    self._enqueue(learned[0], offset)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._backtrack(0)
                    return SolveResult.UNKNOWN
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return SolveResult.UNKNOWN
                if conflicts_since_restart >= conflicts_until_restart:
                    stats.restarts += 1
                    restart_count += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = 100 * _luby(restart_count + 1)
                    self._backtrack(0)
                    if (
                        inprocessing
                        and stats.conflicts - self._last_inprocess
                        >= self._inprocess_interval
                    ):
                        self._last_inprocess = stats.conflicts
                        if not self._inprocess():
                            self._ok = False
                            return SolveResult.UNSAT
                learned_count = stats.learned_clauses - stats.deleted_clauses
                if learned_count > max_learned:
                    self._reduce_db()
                    max_learned = int(max_learned * 1.3)
                continue

            # No conflict: extend the assignment.
            decision = 0
            level = len(self._trail_lim)
            if level < len(assumption_encs):
                enc = assumption_encs[level]
                val = values[enc]
                if val == 0:
                    self._backtrack(0)
                    return SolveResult.UNSAT
                if val == 1:
                    # Already satisfied; open an empty decision level so the
                    # next assumption is considered.
                    self._trail_lim.append(len(self._trail))
                    continue
                decision = enc
            else:
                var = self._pick_branch_var()
                if var == 0:
                    self._store_model()
                    self._backtrack(0)
                    return SolveResult.SAT
                stats.decisions += 1
                decision = (var << 1) | (0 if self._saved_phase[var] else 1)
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > stats.max_decision_level:
                stats.max_decision_level = len(self._trail_lim)
            self._enqueue(decision, -1)

    def _store_model(self) -> None:
        values = self._values
        self._model = {
            var: values[var << 1] == 1 for var in range(1, self._num_vars + 1)
        }

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last SAT call."""
        if not self._model:
            raise RuntimeError("no model available; call solve() first")
        return dict(self._model)

    # ------------------------------------------------------------------ #
    # Debug export (first step towards an external-SAT-backend adapter)
    # ------------------------------------------------------------------ #
    def to_cnf(self, include_learned: bool = False) -> CNF:
        """Snapshot the clause database as a :class:`~repro.sat.cnf.CNF`.

        The export contains every problem clause plus the level-0 trail as
        unit clauses (level-0 assignments are facts of the formula — clauses
        simplified against them at :meth:`add_clause` time are only
        recoverable together with these units).  ``include_learned`` adds the
        learned clauses too; they are implied, so either snapshot is
        equisatisfiable with the original formula — under every set of
        assumptions, not just the empty one.
        """
        cnf = CNF(num_vars=self._num_vars)
        if not self._ok:
            cnf.add_clause([])
            return cnf
        root = self._trail[: self._trail_lim[0]] if self._trail_lim else self._trail
        for enc in root:
            cnf.add_clause([self._decode(enc)])
        ca = self._ca
        dead = self._dead
        for offset in self._clause_refs:
            if offset in dead or (ca[offset + 1] and not include_learned):
                continue
            base = offset + _HDR
            cnf.add_clause(
                [self._decode(ca[k]) for k in range(base, base + ca[offset])]
            )
        return cnf

    def dump_dimacs(self, include_learned: bool = False) -> str:
        """Serialise the clause database to DIMACS CNF text.

        A debugging aid and the ground work for piping the instance to an
        external solver binary: ``CNF.from_dimacs(solver.dump_dimacs())``
        round-trips to an equisatisfiable formula.
        """
        return self.to_cnf(include_learned=include_learned).to_dimacs()
