"""Pluggable SAT backend subsystem: interface, registry, and adapters.

The SMT layer never cared *which* CDCL implementation decided its formulas —
it only needs the IPASIR-style incremental surface the two in-process cores
already share.  This module promotes that implicit contract into a
first-class interface:

* :class:`SatBackend` — the structural protocol every backend satisfies:
  ``new_var`` / ``add_clause`` / ``solve(assumptions=...)`` / ``model`` /
  ``set_phase_hints`` / ``statistics``, plus the capability flags
  ``supports_assumptions`` and ``supports_phase_hints`` that let callers
  degrade gracefully instead of crashing on a feature a backend lacks.
* a name-keyed registry mirroring :mod:`repro.core.strategies`:
  :func:`register_backend`, :func:`create_backend`, :func:`backend_info`,
  :func:`available_backends` (every registered name) and
  :func:`usable_backends` (the subset whose runtime requirements — e.g. an
  external solver binary — are met right now).
* :class:`DimacsSubprocessBackend` — one genuinely external backend proving
  the seam: the accumulated clause database is serialised to DIMACS and
  piped to a configurable solver binary (minisat/kissat-style exit codes,
  ``v``-line or result-file model parsing).  Assumptions are emulated by
  re-solving with the assumptions appended as unit clauses; phase hints are
  silently dropped (``supports_phase_hints = False``).  When no binary is on
  ``PATH`` the backend stays registered but reports itself unavailable, so
  schedulers fail fast and tests skip instead of erroring.

Built-in backends:

=====================  =====================================================
``flat`` (default)     :class:`repro.sat.solver.CDCLSolver`, the flat-array
                       hot-path rewrite (chronological backtracking and
                       inprocessing on; both tunable via backend options)
``flat-nochrono``      the same core with chronological backtracking and
                       inprocessing hard-disabled — the microbench baseline
                       proving the knobs keep paying for themselves
``reference``          :class:`repro.sat.reference.ReferenceCDCLSolver`, the
                       preserved seed core (differential oracle / baseline)
``ipasir``             :class:`repro.sat.ipasir.IpasirBackend`, a ctypes
                       binding of a native IPASIR library (set
                       ``REPRO_IPASIR_LIB`` or have ``libcadical.so`` /
                       ``libkissat.so`` loadable); natively incremental —
                       learned clauses survive across assumption probes
``dimacs-subprocess``  external solver binary via DIMACS pipe (set
                       ``REPRO_SAT_BINARY`` or have one of the well-known
                       binaries on ``PATH``)
``chaos``              :class:`repro.sat.chaos.ChaosBackend`, a
                       fault-injecting proxy for robustness testing;
                       parameterised lookups (``chaos:flat``,
                       ``chaos:ipasir``, ...) pick the wrapped backend
=====================  =====================================================
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass, field, replace
from functools import partial
from typing import (
    Callable,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.sat.cnf import CNF
from repro.sat.errors import (
    BackendError,
    PermanentBackendError,
    TransientBackendError,
)
from repro.sat.ipasir import (
    IPASIR_LIB_ENV,
    IpasirBackend,
    KNOWN_IPASIR_LIBRARIES,
    find_ipasir_library,
)
from repro.sat.reference import ReferenceCDCLSolver
from repro.sat.solver import CDCLSolver, SolveResult

#: Registry key of the backend used when none is requested.
DEFAULT_BACKEND = "flat"

#: Environment variable naming (or pointing at) the external solver binary
#: used by the ``dimacs-subprocess`` backend.
SOLVER_BINARY_ENV = "REPRO_SAT_BINARY"

#: Binaries probed on ``PATH`` (in order) when :data:`SOLVER_BINARY_ENV` is
#: unset.  All of them speak DIMACS and the 10/20 exit-code convention.
KNOWN_SOLVER_BINARIES = (
    "kissat",
    "cadical",
    "cryptominisat5",
    "picosat",
    "minisat",
    "glucose",
)

#: Binaries that write ``SAT\n<model> 0`` to a result *file* (second
#: positional argument) instead of printing competition-style ``v`` lines.
_RESULT_FILE_BINARIES = ("minisat", "glucose")


@runtime_checkable
class SatBackend(Protocol):
    """The incremental surface every registered SAT backend provides.

    The protocol is structural: the in-process cores satisfy it without
    inheriting from anything.  ``solve`` must accept DIMACS ``assumptions``
    (natively or emulated), ``model`` returns ``{var: bool}`` after a SAT
    answer, and ``statistics`` returns whatever monotone counters the
    backend keeps (possibly none) — consumers diff the dictionaries and must
    not assume any particular key exists.
    """

    #: Registry name of the backend class (informational).
    backend_name: str
    #: Whether ``solve(assumptions=...)`` is honoured (natively or emulated).
    supports_assumptions: bool
    #: Whether :meth:`set_phase_hints` influences the search.  When False the
    #: method must still exist and silently no-op.
    supports_phase_hints: bool

    @property
    def num_vars(self) -> int: ...  # pragma: no cover - protocol

    @property
    def num_clauses(self) -> int: ...  # pragma: no cover - protocol

    def new_var(self) -> int: ...  # pragma: no cover - protocol

    def add_clause(self, literals: Iterable[int]) -> bool: ...  # pragma: no cover

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult: ...  # pragma: no cover - protocol

    def model(self) -> dict[int, bool]: ...  # pragma: no cover - protocol

    def set_phase_hints(self, phases: dict[int, bool]) -> None: ...  # pragma: no cover

    def statistics(self) -> dict[str, float]: ...  # pragma: no cover - protocol


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendInfo:
    """Registry entry describing one backend."""

    name: str
    factory: Callable[[], SatBackend]
    description: str = ""
    #: Runtime availability probe (e.g. "is a solver binary on PATH?").
    #: Purely informational for in-process backends, which are always usable.
    is_available: Callable[[], bool] = field(default=lambda: True)
    #: Whether the portfolio strategy should race this backend as a variant
    #: of its bound-driven configurations.  The seed reference core is kept
    #: out: it exists to stay slow, racing it only burns a worker.
    race_variant: bool = True
    #: Keyword options the factory accepts.  :func:`create_backend` forwards
    #: only these and silently drops the rest: backend options tune search
    #: heuristics, never semantics, so a backend that lacks a knob simply
    #: runs without it (mirroring how phase hints degrade).
    option_names: tuple[str, ...] = ()
    #: Whether ``name:argument`` lookups derive a parameterised entry whose
    #: factory receives the argument as ``inner=`` (e.g. ``chaos:flat``
    #: wraps the flat core).  The argument must itself be a registered
    #: backend name.
    accepts_argument: bool = False


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(info: BackendInfo) -> BackendInfo:
    """Add a backend to the registry (keyed by ``info.name``)."""
    if not info.name:
        raise ValueError("backend needs a non-empty name")
    if info.name in _REGISTRY:
        raise ValueError(f"backend name {info.name!r} already registered")
    _REGISTRY[info.name] = info
    return info


def available_backends() -> list[str]:
    """Names of all registered backends (sorted; includes unavailable ones)."""
    return sorted(_REGISTRY)


def usable_backends() -> list[str]:
    """Names of the registered backends whose runtime requirements are met."""
    return [name for name in available_backends() if _REGISTRY[name].is_available()]


def backend_info(name: Optional[str] = None) -> BackendInfo:
    """Registry entry for *name* (default backend when ``None``).

    ``name`` may be a parameterised lookup ``base:argument`` when the base
    backend is registered with ``accepts_argument=True`` (e.g.
    ``chaos:flat``): the derived entry binds the argument as the factory's
    ``inner=`` backend and inherits the inner backend's availability.
    """
    key = name or DEFAULT_BACKEND
    if key in _REGISTRY:
        return _REGISTRY[key]
    base, sep, argument = key.partition(":")
    if sep and argument and base in _REGISTRY and _REGISTRY[base].accepts_argument:
        base_info = _REGISTRY[base]
        inner_info = backend_info(argument)  # raises for unknown inner names
        return replace(
            base_info,
            name=key,
            factory=partial(base_info.factory, inner=inner_info.name),
            description=f"{base_info.description} wrapping {inner_info.name!r}",
            is_available=inner_info.is_available,
            option_names=tuple(
                option for option in base_info.option_names if option != "inner"
            ),
        )
    known = ", ".join(available_backends())
    raise ValueError(f"unknown SAT backend {key!r} (available: {known})") from None


def create_backend(name: Optional[str] = None, **options: object) -> SatBackend:
    """Instantiate the backend registered under *name* (default: ``flat``).

    Keyword *options* (e.g. ``chrono=False``, ``inprocessing=False`` for the
    flat core) are forwarded when the backend declares them in
    :attr:`BackendInfo.option_names`; undeclared options and ``None`` values
    are silently dropped — options tune heuristics, never semantics, so a
    backend without the knob just runs its defaults.

    Raises ``ValueError`` for unknown names and
    :class:`~repro.sat.errors.PermanentBackendError` (a ``RuntimeError``
    subclass) when the backend is registered but its runtime requirements
    are not met (e.g. no external solver binary on ``PATH``) — callers that
    want to degrade instead of failing should consult
    :func:`usable_backends` first.
    """
    info = backend_info(name)
    if not info.is_available():
        raise PermanentBackendError(
            f"SAT backend {info.name!r} is registered but unavailable: "
            f"{info.description or 'runtime requirements not met'}"
        )
    accepted = {
        key: value
        for key, value in options.items()
        if key in info.option_names and value is not None
    }
    return info.factory(**accepted) if accepted else info.factory()


# --------------------------------------------------------------------------- #
# The external DIMACS-subprocess backend
# --------------------------------------------------------------------------- #
def find_solver_binary() -> Optional[str]:
    """Locate the external solver binary, or ``None`` when there is none.

    :data:`SOLVER_BINARY_ENV` wins when set (a bare name is resolved on
    ``PATH``, a path is used as-is when executable); otherwise the
    well-known binaries of :data:`KNOWN_SOLVER_BINARIES` are probed in
    order.
    """
    override = os.environ.get(SOLVER_BINARY_ENV)
    if override:
        resolved = shutil.which(override)
        if resolved is not None:
            return resolved
        if os.path.isfile(override) and os.access(override, os.X_OK):
            return override
        return None
    for name in KNOWN_SOLVER_BINARIES:
        resolved = shutil.which(name)
        if resolved is not None:
            return resolved
    return None


class DimacsSubprocessBackend:
    """SAT backend piping DIMACS to an external solver binary.

    Clauses accumulate in a :class:`~repro.sat.cnf.CNF`; every
    :meth:`solve` serialises the whole formula (plus the call's assumptions
    as unit clauses — the classic emulation of assumption solving for
    non-incremental solvers) and runs the binary.  SAT/UNSAT is read from
    the 10/20 exit-code convention with the ``s``-line as fallback; models
    come from competition-style ``v`` lines or, for minisat-style binaries,
    from the result file passed as the second argument.

    ``max_conflicts`` cannot be forwarded to a subprocess and is ignored —
    that only means a budgeted probe may run longer, never that an answer
    changes.  ``time_limit`` maps to a subprocess timeout; expiry kills the
    solver and reports :data:`SolveResult.UNKNOWN`.
    """

    backend_name = "dimacs-subprocess"
    supports_assumptions = True  # emulated via unit-clause re-solve
    supports_phase_hints = False

    def __init__(self, binary: Optional[str] = None) -> None:
        resolved = binary if binary is not None else find_solver_binary()
        if resolved is None:
            raise RuntimeError(
                "no external SAT solver binary found: set "
                f"${SOLVER_BINARY_ENV} or put one of "
                f"{', '.join(KNOWN_SOLVER_BINARIES)} on PATH"
            )
        self._binary = resolved
        # Prefix match on the basename: "minisat_static"/"glucose-simp" are
        # result-file solvers, but "cryptominisat5" (which merely contains
        # "minisat") speaks the competition convention.
        base = os.path.basename(resolved).lower()
        self._result_file_style = base.startswith(_RESULT_FILE_BINARIES)
        self._cnf = CNF()
        self._ok = True
        self._model: dict[int, bool] = {}
        self._solves = 0
        self._solve_seconds = 0.0
        self._dump_cache_hits = 0

    # ------------------------------------------------------------------ #
    @property
    def binary(self) -> str:
        """Path of the external solver binary."""
        return self._binary

    @property
    def num_vars(self) -> int:
        """Number of variables known to the backend."""
        return self._cnf.num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses accumulated so far."""
        return self._cnf.num_clauses

    def new_var(self) -> int:
        """Reserve and return a fresh variable index."""
        return self._cnf.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Append a clause.  Returns ``False`` once the formula is trivially
        unsatisfiable (an empty clause was added)."""
        clause = list(literals)
        if not clause:
            self._ok = False
            self._cnf.add_clause([])
            return False
        self._cnf.add_clause(clause)
        return self._ok

    def add_cnf(self, cnf: CNF) -> bool:
        """Add every clause of *cnf* (parity with the in-process cores)."""
        while self._cnf.num_vars < cnf.num_vars:
            self._cnf.new_var()
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def set_phase_hints(self, phases: dict[int, bool]) -> None:
        """Phase hints are a no-op for subprocess solvers (see the flag)."""

    def statistics(self) -> dict[str, float]:
        """Coarse counters: subprocess invocations and solve wall-clock.

        The propagation/conflict counters of the in-process cores are not
        observable through a DIMACS pipe, so they are simply absent —
        consumers must treat every key as optional.
        """
        return {
            "subprocess_solves": self._solves,
            "solve_seconds": self._solve_seconds,
            "dimacs_dump_cache_hits": self._dump_cache_hits,
        }

    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Decide the accumulated formula, optionally under *assumptions*."""
        del max_conflicts  # not forwardable to a subprocess; see docstring
        if not self._ok:
            return SolveResult.UNSAT
        start = time.monotonic()
        try:
            return self._solve_subprocess(assumptions, time_limit)
        finally:
            self._solves += 1
            self._solve_seconds += time.monotonic() - start

    def _solve_subprocess(
        self, assumptions: Sequence[int], time_limit: Optional[float]
    ) -> SolveResult:
        num_vars = self._cnf.num_vars
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            num_vars = max(num_vars, abs(lit))
        with tempfile.TemporaryDirectory(prefix="repro-sat-") as tmp:
            cnf_path = os.path.join(tmp, "instance.cnf")
            with open(cnf_path, "w", encoding="utf-8") as handle:
                # Consecutive probes of an unchanged clause DB (the normal
                # shape of assumption emulation: only the appended unit
                # clauses differ between horizons) reuse the memoised clause
                # body instead of re-serialising the whole formula.
                if self._cnf.dimacs_body_cached:
                    self._dump_cache_hits += 1
                body = self._cnf.dimacs_body()
                handle.write(
                    f"p cnf {num_vars} {self._cnf.num_clauses + len(assumptions)}\n"
                )
                handle.write(body)
                for lit in assumptions:
                    handle.write(f"{lit} 0\n")
            command = [self._binary, cnf_path]
            out_path = None
            if self._result_file_style:
                out_path = os.path.join(tmp, "result.out")
                command.append(out_path)
            try:
                proc = subprocess.run(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    timeout=time_limit,
                    text=True,
                )
            except subprocess.TimeoutExpired:
                return SolveResult.UNKNOWN
            output = proc.stdout
            if out_path is not None and os.path.exists(out_path):
                with open(out_path, encoding="utf-8") as handle:
                    output = handle.read()
            return self._interpret(proc.returncode, output, proc.stderr, num_vars)

    def _interpret(
        self, returncode: int, output: str, stderr: str, num_vars: int
    ) -> SolveResult:
        sat = returncode == 10
        unsat = returncode == 20
        if not sat and not unsat:
            # Fall back on the status line for binaries with other exit codes.
            for line in output.splitlines():
                stripped = line.strip()
                if stripped in ("s SATISFIABLE", "SAT", "SATISFIABLE"):
                    sat = True
                    break
                if stripped in ("s UNSATISFIABLE", "UNSAT", "UNSATISFIABLE"):
                    unsat = True
                    break
        if unsat:
            return SolveResult.UNSAT
        if not sat:
            # A crashed/killed binary is retryable: the clause database is
            # intact on our side, so a fresh subprocess may well succeed.
            raise TransientBackendError(
                f"external SAT solver {self._binary!r} returned neither "
                f"SAT nor UNSAT (exit code {returncode}): "
                f"{stderr.strip()[:200] or output.strip()[:200]}"
            )
        self._model = self._parse_model(output, num_vars)
        return SolveResult.SAT

    def _parse_model(self, output: str, num_vars: int) -> dict[int, bool]:
        model = {var: False for var in range(1, num_vars + 1)}
        parsed = 0
        for line in output.splitlines():
            tokens = line.split()
            if not tokens:
                continue
            if tokens[0] == "v":
                tokens = tokens[1:]
            elif not self._result_file_style:
                # Competition output: models live on "v" lines only; any
                # other line (comments, statistics) is not a model line.
                continue
            for token in tokens:
                try:
                    lit = int(token)
                except ValueError:
                    break
                if lit == 0:
                    continue
                model[abs(lit)] = lit > 0
                parsed += 1
        if num_vars and not parsed:
            # An all-default model would decode into garbage far from the
            # cause; a SAT answer without model literals is a solver whose
            # output convention we misread — a retry would misread it the
            # same way, so fail permanently at the source.
            raise PermanentBackendError(
                f"external SAT solver {self._binary!r} reported SAT but "
                "printed no parseable model literals (unsupported output "
                "convention?)"
            )
        return model

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last SAT call."""
        if not self._model:
            raise RuntimeError("no model available; call solve() first")
        return dict(self._model)


# --------------------------------------------------------------------------- #
# Built-in registrations
# --------------------------------------------------------------------------- #
register_backend(
    BackendInfo(
        name="flat",
        factory=CDCLSolver,
        description="in-process flat-array CDCL core (the default hot path)",
        option_names=(
            "chrono",
            "inprocessing",
            "chrono_threshold",
            "inprocess_interval",
        ),
    )
)
register_backend(
    BackendInfo(
        name="flat-nochrono",
        factory=lambda: CDCLSolver(chrono=False, inprocessing=False),
        description=(
            "flat core with chronological backtracking and inprocessing "
            "disabled (microbench baseline for the chrono gate)"
        ),
        race_variant=False,
    )
)
register_backend(
    BackendInfo(
        name="reference",
        factory=ReferenceCDCLSolver,
        description="preserved seed CDCL core (benchmark baseline / oracle)",
        race_variant=False,
    )
)
register_backend(
    BackendInfo(
        name="ipasir",
        factory=IpasirBackend,
        description=(
            "ctypes IPASIR binding (natively incremental); needs "
            f"${IPASIR_LIB_ENV} or a loadable soname such as "
            f"{KNOWN_IPASIR_LIBRARIES[0]} / libkissat.so"
        ),
        is_available=lambda: find_ipasir_library() is not None,
    )
)
register_backend(
    BackendInfo(
        name="dimacs-subprocess",
        factory=DimacsSubprocessBackend,
        description=(
            "external solver binary via DIMACS pipe; needs "
            f"${SOLVER_BINARY_ENV} or one of "
            f"{', '.join(KNOWN_SOLVER_BINARIES)} on PATH"
        ),
        is_available=lambda: find_solver_binary() is not None,
    )
)

# Imported here (not at the top) because the chaos module needs the registry
# above to build its inner backend; only the registration below needs the
# class, after everything it imports from this module exists.
from repro.sat.chaos import CHAOS_SPEC_ENV, ChaosBackend  # noqa: E402

register_backend(
    BackendInfo(
        name="chaos",
        factory=ChaosBackend,
        description=(
            "fault-injecting proxy (seeded transient/UNKNOWN/delay/crash "
            f"faults, tunable via ${CHAOS_SPEC_ENV}); wrap a specific "
            "backend with a parameterised name such as 'chaos:flat'"
        ),
        # Racing an intentionally faulty proxy would only burn a worker.
        race_variant=False,
        option_names=("inner", "plan"),
        accepts_argument=True,
    )
)

__all__ = [
    "BackendError",
    "BackendInfo",
    "ChaosBackend",
    "DEFAULT_BACKEND",
    "DimacsSubprocessBackend",
    "PermanentBackendError",
    "SatBackend",
    "TransientBackendError",
    "available_backends",
    "backend_info",
    "create_backend",
    "find_solver_binary",
    "register_backend",
    "usable_backends",
]
