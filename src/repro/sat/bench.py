"""Propagation-throughput microbench: flat-array core vs the seed reference.

The benchmark bit-blasts reduced scheduling instances (the same cells the
SMT smoke suite uses) into plain CNF and solves each formula once with the
flat-array :class:`~repro.sat.solver.CDCLSolver` and once with the preserved
seed implementation :class:`~repro.sat.reference.ReferenceCDCLSolver`.  Both
cores must return the same SAT/UNSAT answer; the comparison records

* ``seconds`` — wall-clock of the single :meth:`solve` call,
* ``propagations_per_second`` — the hot-loop throughput metric,
* ``speedup`` — reference seconds / flat seconds (> 1 means the rewrite
  is faster),
* ``throughput_ratio`` — flat propagations/s over reference propagations/s.

Used by ``benchmarks/test_bench_smt.py`` (hard assertions) and by the
``repro-nasp microbench`` CLI command (CI regression gate + JSON artifact).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.sat.cnf import CNF
from repro.sat.reference import ReferenceCDCLSolver
from repro.sat.solver import CDCLSolver

#: The microbench cells: one UNSAT probe (optimum - 1) and the SAT probe at
#: the optimum for the multi-horizon smoke instances on the shielded layout.
DEFAULT_CELLS: tuple[dict, ...] = (
    {"layout": "bottom", "instance": "triangle", "num_stages": 4},
    {"layout": "bottom", "instance": "triangle", "num_stages": 5},
    {"layout": "bottom", "instance": "chain-2", "num_stages": 3},
)


def scheduling_cnf(layout: str, instance: str, num_stages: int) -> CNF:
    """Bit-blast a reduced scheduling instance at a fixed stage count."""
    from repro.arch import reduced_layout
    from repro.core.encoding import encode_problem
    from repro.core.problem import SchedulingProblem
    from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES

    num_qubits, gates = SMT_INSTANCES[instance]
    problem = SchedulingProblem.from_gates(
        reduced_layout(layout, **REDUCED_LAYOUT_KWARGS), num_qubits, gates
    )
    return encode_problem(problem, num_stages).solver.to_cnf()


#: Timing repetitions per (formula, core) pair; the best run is kept, which
#: filters scheduler noise / CPU-steal spikes on shared CI runners.
DEFAULT_REPEATS = 3


def measure_core(cnf: CNF, factory: Callable, repeats: int = DEFAULT_REPEATS) -> dict:
    """Solve *cnf* with fresh solvers from *factory*; keep the fastest run.

    The search is deterministic, so every repetition does identical work —
    the minimum wall-clock is the least-noisy estimate of the core's speed.
    """
    best = None
    for _ in range(max(1, repeats)):
        solver = factory()
        solver.add_cnf(cnf)
        start = time.monotonic()
        result = solver.solve()
        seconds = time.monotonic() - start
        if best is None or seconds < best[0]:
            best = (seconds, result, solver.stats)
    seconds, result, stats = best
    # Floor at 1 ns: a run below clock granularity is "infinitely fast" and
    # must read as a huge rate, never as zero throughput.
    floored = max(seconds, 1e-9)
    return {
        "result": result.value,
        "seconds": seconds,
        "propagations": stats.propagations,
        "conflicts": stats.conflicts,
        "propagations_per_second": stats.propagations / floored,
    }


def compare_cores(cnf: CNF, repeats: int = DEFAULT_REPEATS) -> dict:
    """Race the flat-array core against the reference on one formula."""
    flat = measure_core(cnf, CDCLSolver, repeats=repeats)
    reference = measure_core(cnf, ReferenceCDCLSolver, repeats=repeats)
    if flat["result"] != reference["result"]:  # pragma: no cover - soundness net
        raise RuntimeError(
            f"solver cores disagree: flat={flat['result']} "
            f"reference={reference['result']}"
        )
    # Both wall-clocks are floored at clock granularity so neither a
    # too-fast flat run nor a too-fast reference run produces a spurious
    # zero/infinite ratio; everything stays finite and JSON-representable.
    speedup = max(reference["seconds"], 1e-9) / max(flat["seconds"], 1e-9)
    throughput_ratio = (
        flat["propagations_per_second"] / reference["propagations_per_second"]
        if reference["propagations_per_second"] > 0
        else 1e9
    )
    return {
        "flat": flat,
        "reference": reference,
        "speedup": speedup,
        "throughput_ratio": throughput_ratio,
    }


def run_microbench(
    cells: Sequence[dict] = DEFAULT_CELLS, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Run the full microbench and summarise it as a JSON-ready document."""
    results = []
    for cell in cells:
        cnf = scheduling_cnf(**cell)
        comparison = compare_cores(cnf, repeats=repeats)
        results.append(
            {
                **cell,
                "num_vars": cnf.num_vars,
                "num_clauses": cnf.num_clauses,
                **comparison,
            }
        )
    return {
        "cells": results,
        # The gate the CI job (and the CLI exit code) enforces: strictly
        # faster wall-clock AND strictly higher propagation throughput on
        # every cell.
        "flat_faster_everywhere": all(
            cell["speedup"] > 1.0 and cell["throughput_ratio"] > 1.0
            for cell in results
        ),
        "min_speedup": min(cell["speedup"] for cell in results),
        "min_throughput_ratio": min(cell["throughput_ratio"] for cell in results),
    }


def format_microbench(document: dict) -> str:
    """Human-readable summary table of a :func:`run_microbench` document."""
    lines = [
        f"{'Cell':<28}{'Answer':>8}{'Flat[s]':>9}{'Ref[s]':>9}"
        f"{'Speedup':>9}{'Props/s ratio':>15}"
    ]
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        lines.append(
            f"{name:<28}{cell['flat']['result']:>8}"
            f"{cell['flat']['seconds']:>9.3f}{cell['reference']['seconds']:>9.3f}"
            f"{cell['speedup']:>9.2f}{cell['throughput_ratio']:>15.2f}"
        )
    verdict = "yes" if document["flat_faster_everywhere"] else "NO - REGRESSION"
    lines.append(
        f"flat core faster everywhere: {verdict} "
        f"(min speedup {document['min_speedup']:.2f}x, "
        f"min throughput ratio {document['min_throughput_ratio']:.2f}x)"
    )
    return "\n".join(lines)
