"""Propagation-throughput microbench: race two registered SAT backends.

The benchmark bit-blasts reduced scheduling instances (the same cells the
SMT smoke suite uses) into plain CNF and solves each formula once with a
*candidate* backend and once with a *baseline* backend, both constructed
through the :mod:`repro.sat.backend` registry.  The default pairing is the
flat-array :class:`~repro.sat.solver.CDCLSolver` (candidate) against the
preserved seed implementation
:class:`~repro.sat.reference.ReferenceCDCLSolver` (baseline).  Both backends
must return the same SAT/UNSAT answer; the comparison records

* ``seconds`` — wall-clock of the single :meth:`solve` call,
* ``propagations_per_second`` — the hot-loop throughput metric (``None``
  for backends that keep no propagation counter, e.g. subprocess solvers),
* ``speedup`` — baseline seconds / candidate seconds (> 1 means the
  candidate is faster),
* ``throughput_ratio`` — candidate propagations/s over baseline
  propagations/s (``None`` when either side keeps no counter).

Used by ``benchmarks/test_bench_smt.py`` (hard assertions on the default
pairing) and by the ``repro-nasp microbench`` CLI command (CI regression
gate + JSON artifact; ``--backend A B`` races any two registered backends).

:func:`run_chrono_microbench` is the second gate: it races the flat core
with chronological backtracking + inprocessing (its defaults) against the
``flat-nochrono`` registration of the same core on a cell set split by
answer.  UNSAT cells must show a
:data:`CHRONO_UNSAT_THRESHOLD`-fold improvement in either wall-clock or
conflict throughput (chrono's cheap partial backtracks raise
conflicts/second even when a refutation takes more conflicts overall);
SAT cells must merely stay within :data:`CHRONO_SAT_TOLERANCE` of the
chrono-off wall-clock.  ``repro-nasp microbench --chrono`` wires the gate
into CI.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.sat.backend import create_backend
from repro.sat.cnf import CNF

#: The default comparison: the flat-array rewrite against the seed core.
DEFAULT_BACKENDS = ("flat", "reference")

#: The microbench cells: one UNSAT probe (optimum - 1) and the SAT probe at
#: the optimum for the multi-horizon smoke instances on the shielded layout.
DEFAULT_CELLS: tuple[dict, ...] = (
    {"layout": "bottom", "instance": "triangle", "num_stages": 4},
    {"layout": "bottom", "instance": "triangle", "num_stages": 5},
    {"layout": "bottom", "instance": "chain-2", "num_stages": 3},
)

#: Microbench-only instances, deliberately *not* part of the SMT bench
#: suite's :data:`~repro.evaluation.runner.SMT_INSTANCES` (adding them there
#: would change every suite digest and baseline).  They exist to give the
#: chrono gate UNSAT probes with real refutation work: ``ring-5`` and
#: ``star-4`` are infeasible below their optima for several hundred
#: conflicts on the reduced shielded layout.
MICROBENCH_EXTRA_INSTANCES: dict[str, tuple[int, list[tuple[int, int]]]] = {
    "ring-5": (5, [(i, (i + 1) % 5) for i in range(5)]),
    "star-4": (5, [(0, i) for i in range(1, 5)]),
    "chain-4": (5, [(i, i + 1) for i in range(4)]),
}


def scheduling_cnf(layout: str, instance: str, num_stages: int) -> CNF:
    """Bit-blast a reduced scheduling instance at a fixed stage count."""
    from repro.arch import reduced_layout
    from repro.core.encoding import encode_problem
    from repro.core.problem import SchedulingProblem
    from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES

    num_qubits, gates = (
        MICROBENCH_EXTRA_INSTANCES.get(instance) or SMT_INSTANCES[instance]
    )
    problem = SchedulingProblem.from_gates(
        reduced_layout(layout, **REDUCED_LAYOUT_KWARGS), num_qubits, gates
    )
    return encode_problem(problem, num_stages).solver.to_cnf()


#: Timing repetitions per (formula, backend) pair; the best run is kept,
#: which filters scheduler noise / CPU-steal spikes on shared CI runners.
DEFAULT_REPEATS = 3


def measure_core(cnf: CNF, factory: Callable, repeats: int = DEFAULT_REPEATS) -> dict:
    """Solve *cnf* with fresh solvers from *factory*; keep the fastest run.

    The search is deterministic, so every repetition does identical work —
    the minimum wall-clock is the least-noisy estimate of the core's speed.
    """
    best = None
    for _ in range(max(1, repeats)):
        solver = factory()
        # Feed the formula through the SatBackend protocol surface only
        # (new_var/add_clause), so any registered backend can be measured.
        while solver.num_vars < cnf.num_vars:
            solver.new_var()
        for clause in cnf:
            solver.add_clause(clause)
        start = time.monotonic()
        result = solver.solve()
        seconds = time.monotonic() - start
        if best is None or seconds < best[0]:
            best = (seconds, result, solver.statistics())
    seconds, result, counters = best
    # Floor at 1 ns: a run below clock granularity is "infinitely fast" and
    # must read as a huge rate, never as zero throughput.
    floored = max(seconds, 1e-9)
    # A backend without a propagation counter (subprocess solvers) reports
    # None, not zero — absence of telemetry is not zero throughput.
    propagations = counters.get("propagations")
    conflicts = counters.get("conflicts")
    return {
        "result": result.value,
        "seconds": seconds,
        "propagations": propagations,
        "conflicts": conflicts,
        "propagations_per_second": (
            propagations / floored if propagations is not None else None
        ),
        "conflicts_per_second": (
            conflicts / floored if conflicts is not None else None
        ),
    }


def compare_cores(
    cnf: CNF,
    repeats: int = DEFAULT_REPEATS,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> dict:
    """Race the candidate backend against the baseline on one formula.

    The per-backend measurements are keyed by the backend registry names, so
    the default document keeps its historical ``flat`` / ``reference`` keys.
    """
    candidate_name, baseline_name = backends
    if candidate_name == baseline_name:
        raise ValueError(f"cannot compare backend {candidate_name!r} with itself")
    candidate = measure_core(
        cnf, lambda: create_backend(candidate_name), repeats=repeats
    )
    baseline = measure_core(cnf, lambda: create_backend(baseline_name), repeats=repeats)
    if candidate["result"] != baseline["result"]:  # pragma: no cover - soundness net
        raise RuntimeError(
            f"SAT backends disagree: {candidate_name}={candidate['result']} "
            f"{baseline_name}={baseline['result']}"
        )
    # Both wall-clocks are floored at clock granularity so neither a
    # too-fast candidate run nor a too-fast baseline run produces a spurious
    # zero/infinite ratio; everything stays finite and JSON-representable.
    speedup = max(baseline["seconds"], 1e-9) / max(candidate["seconds"], 1e-9)

    def rate_ratio(key: str) -> Optional[float]:
        candidate_rate, baseline_rate = candidate[key], baseline[key]
        if candidate_rate is None or baseline_rate is None:
            return None
        return candidate_rate / baseline_rate if baseline_rate > 0 else 1e9

    return {
        candidate_name: candidate,
        baseline_name: baseline,
        "speedup": speedup,
        "throughput_ratio": rate_ratio("propagations_per_second"),
        "conflict_throughput_ratio": rate_ratio("conflicts_per_second"),
    }


def run_microbench(
    cells: Sequence[dict] = DEFAULT_CELLS,
    repeats: int = DEFAULT_REPEATS,
    backends: Optional[Sequence[str]] = None,
) -> dict:
    """Run the full microbench and summarise it as a JSON-ready document."""
    backends = tuple(backends) if backends else DEFAULT_BACKENDS
    results = []
    for cell in cells:
        cnf = scheduling_cnf(**cell)
        comparison = compare_cores(cnf, repeats=repeats, backends=backends)
        results.append(
            {
                **cell,
                "num_vars": cnf.num_vars,
                "num_clauses": cnf.num_clauses,
                **comparison,
            }
        )
    # The gate the CI job (and the CLI exit code) enforces: strictly faster
    # wall-clock on every cell AND, where both backends keep propagation
    # counters, strictly higher propagation throughput.
    faster_everywhere = all(
        cell["speedup"] > 1.0
        and (cell["throughput_ratio"] is None or cell["throughput_ratio"] > 1.0)
        for cell in results
    )
    ratios = [
        cell["throughput_ratio"]
        for cell in results
        if cell["throughput_ratio"] is not None
    ]
    document = {
        "backends": list(backends),
        "cells": results,
        "candidate_faster_everywhere": faster_everywhere,
        "min_speedup": min(cell["speedup"] for cell in results),
        "min_throughput_ratio": min(ratios) if ratios else None,
    }
    if backends == DEFAULT_BACKENDS:
        # Historical key of the default flat-vs-reference document.
        document["flat_faster_everywhere"] = faster_everywhere
    return document


# --------------------------------------------------------------------------- #
# The chrono gate: flat (chrono + inprocessing on) vs flat-nochrono
# --------------------------------------------------------------------------- #
#: The chrono comparison: the flat core with its default chronological
#: backtracking + inprocessing against the same core with both forced off.
CHRONO_BACKENDS = ("flat", "flat-nochrono")

#: Minimum improvement — in wall-clock speedup *or* conflict throughput —
#: chrono must show on every UNSAT cell for the gate to pass.
CHRONO_UNSAT_THRESHOLD = 1.15

#: Wall-clock tolerance on SAT cells: chrono must not be slower than
#: ``1 / CHRONO_SAT_TOLERANCE`` of the chrono-off time (timing noise head-
#: room; the observed SAT speedups are well above 1).
CHRONO_SAT_TOLERANCE = 0.85

#: Chrono-gate cells.  The first two are UNSAT probes one stage below the
#: instance optimum (real refutation work, several hundred conflicts); the
#: rest are SAT probes covering both a deep search (``ring-4`` at a loose
#: horizon) and near-trivial first descents.
CHRONO_CELLS: tuple[dict, ...] = (
    {"layout": "bottom", "instance": "star-4", "num_stages": 4},
    {"layout": "bottom", "instance": "ring-5", "num_stages": 4},
    {"layout": "bottom", "instance": "ring-4", "num_stages": 6},
    {"layout": "bottom", "instance": "chain-4", "num_stages": 3},
    {"layout": "bottom", "instance": "triangle", "num_stages": 5},
)


def run_chrono_microbench(
    cells: Sequence[dict] = CHRONO_CELLS,
    repeats: int = DEFAULT_REPEATS,
    unsat_threshold: float = CHRONO_UNSAT_THRESHOLD,
    sat_tolerance: float = CHRONO_SAT_TOLERANCE,
) -> dict:
    """Race chrono-on against chrono-off and gate by the cell's answer.

    UNSAT cells gate on ``max(speedup, conflict_throughput_ratio)``:
    chronological backtracking converts deep non-chronological jumps into
    cheap one-level backtracks, which shows up as higher conflict throughput
    even on refutations that take *more* conflicts overall.  SAT cells only
    gate on not regressing wall-clock beyond *sat_tolerance*.
    """
    results = []
    for cell in cells:
        cnf = scheduling_cnf(**cell)
        comparison = compare_cores(cnf, repeats=repeats, backends=CHRONO_BACKENDS)
        answer = comparison[CHRONO_BACKENDS[0]]["result"]
        conflict_ratio = comparison["conflict_throughput_ratio"]
        improvement = max(comparison["speedup"], conflict_ratio or 0.0)
        if answer == "unsat":
            gate = "improve"
            passed = improvement >= unsat_threshold
        else:
            gate = "no-regression"
            passed = comparison["speedup"] >= sat_tolerance
        results.append(
            {
                **cell,
                "num_vars": cnf.num_vars,
                "num_clauses": cnf.num_clauses,
                **comparison,
                "gate": gate,
                "improvement": improvement,
                "gate_passed": passed,
            }
        )
    unsat_improvements = [
        cell["improvement"] for cell in results if cell["gate"] == "improve"
    ]
    sat_speedups = [
        cell["speedup"] for cell in results if cell["gate"] == "no-regression"
    ]
    return {
        "backends": list(CHRONO_BACKENDS),
        "unsat_threshold": unsat_threshold,
        "sat_tolerance": sat_tolerance,
        "cells": results,
        "chrono_gate_passed": all(cell["gate_passed"] for cell in results),
        "min_unsat_improvement": (
            min(unsat_improvements) if unsat_improvements else None
        ),
        "min_sat_speedup": min(sat_speedups) if sat_speedups else None,
    }


def format_chrono_microbench(document: dict) -> str:
    """Human-readable summary table of a :func:`run_chrono_microbench` run."""
    on_name, off_name = document["backends"]
    lines = [
        f"{'Cell':<24}{'Answer':>8}{'chrono[s]':>11}{'off[s]':>9}"
        f"{'Speedup':>9}{'Conf/s ratio':>14}{'Gate':>15}"
    ]
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        ratio = cell["conflict_throughput_ratio"]
        verdict = "pass" if cell["gate_passed"] else "FAIL"
        lines.append(
            f"{name:<24}{cell[on_name]['result']:>8}"
            f"{cell[on_name]['seconds']:>11.3f}"
            f"{cell[off_name]['seconds']:>9.3f}"
            f"{cell['speedup']:>9.2f}"
            f"{'-' if ratio is None else format(ratio, '.2f'):>14}"
            f"{cell['gate'] + ':' + verdict:>15}"
        )
    min_unsat = document["min_unsat_improvement"]
    min_sat = document["min_sat_speedup"]
    verdict = "yes" if document["chrono_gate_passed"] else "NO - REGRESSION"
    lines.append(
        f"chrono+inprocessing gate passed: {verdict} "
        f"(min UNSAT improvement "
        f"{'-' if min_unsat is None else format(min_unsat, '.2f') + 'x'} "
        f"vs threshold {document['unsat_threshold']:.2f}x, "
        f"min SAT speedup "
        f"{'-' if min_sat is None else format(min_sat, '.2f') + 'x'} "
        f"vs tolerance {document['sat_tolerance']:.2f}x)"
    )
    return "\n".join(lines)


def format_microbench(document: dict) -> str:
    """Human-readable summary table of a :func:`run_microbench` document."""
    candidate_name, baseline_name = document.get("backends", DEFAULT_BACKENDS)
    cand_col = f"{candidate_name[:12]}[s]"
    base_col = f"{baseline_name[:12]}[s]"
    lines = [
        f"{'Cell':<28}{'Answer':>8}{cand_col:>16}{base_col:>16}"
        f"{'Speedup':>9}{'Props/s ratio':>15}"
    ]
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        ratio = cell["throughput_ratio"]
        lines.append(
            f"{name:<28}{cell[candidate_name]['result']:>8}"
            f"{cell[candidate_name]['seconds']:>16.3f}"
            f"{cell[baseline_name]['seconds']:>16.3f}"
            f"{cell['speedup']:>9.2f}"
            f"{'-' if ratio is None else format(ratio, '.2f'):>15}"
        )
    verdict = (
        "yes" if document["candidate_faster_everywhere"] else "NO - REGRESSION"
    )
    min_ratio = document["min_throughput_ratio"]
    lines.append(
        f"{candidate_name} faster than {baseline_name} everywhere: {verdict} "
        f"(min speedup {document['min_speedup']:.2f}x, "
        f"min throughput ratio "
        f"{'-' if min_ratio is None else format(min_ratio, '.2f') + 'x'})"
    )
    return "\n".join(lines)
