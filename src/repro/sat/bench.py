"""Propagation-throughput microbench: race two registered SAT backends.

The benchmark bit-blasts reduced scheduling instances (the same cells the
SMT smoke suite uses) into plain CNF and solves each formula once with a
*candidate* backend and once with a *baseline* backend, both constructed
through the :mod:`repro.sat.backend` registry.  The default pairing is the
flat-array :class:`~repro.sat.solver.CDCLSolver` (candidate) against the
preserved seed implementation
:class:`~repro.sat.reference.ReferenceCDCLSolver` (baseline).  Both backends
must return the same SAT/UNSAT answer; the comparison records

* ``seconds`` — wall-clock of the single :meth:`solve` call,
* ``propagations_per_second`` — the hot-loop throughput metric (``None``
  for backends that keep no propagation counter, e.g. subprocess solvers),
* ``speedup`` — baseline seconds / candidate seconds (> 1 means the
  candidate is faster),
* ``throughput_ratio`` — candidate propagations/s over baseline
  propagations/s (``None`` when either side keeps no counter).

Used by ``benchmarks/test_bench_smt.py`` (hard assertions on the default
pairing) and by the ``repro-nasp microbench`` CLI command (CI regression
gate + JSON artifact; ``--backend A B`` races any two registered backends).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.sat.backend import create_backend
from repro.sat.cnf import CNF

#: The default comparison: the flat-array rewrite against the seed core.
DEFAULT_BACKENDS = ("flat", "reference")

#: The microbench cells: one UNSAT probe (optimum - 1) and the SAT probe at
#: the optimum for the multi-horizon smoke instances on the shielded layout.
DEFAULT_CELLS: tuple[dict, ...] = (
    {"layout": "bottom", "instance": "triangle", "num_stages": 4},
    {"layout": "bottom", "instance": "triangle", "num_stages": 5},
    {"layout": "bottom", "instance": "chain-2", "num_stages": 3},
)


def scheduling_cnf(layout: str, instance: str, num_stages: int) -> CNF:
    """Bit-blast a reduced scheduling instance at a fixed stage count."""
    from repro.arch import reduced_layout
    from repro.core.encoding import encode_problem
    from repro.core.problem import SchedulingProblem
    from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES

    num_qubits, gates = SMT_INSTANCES[instance]
    problem = SchedulingProblem.from_gates(
        reduced_layout(layout, **REDUCED_LAYOUT_KWARGS), num_qubits, gates
    )
    return encode_problem(problem, num_stages).solver.to_cnf()


#: Timing repetitions per (formula, backend) pair; the best run is kept,
#: which filters scheduler noise / CPU-steal spikes on shared CI runners.
DEFAULT_REPEATS = 3


def measure_core(cnf: CNF, factory: Callable, repeats: int = DEFAULT_REPEATS) -> dict:
    """Solve *cnf* with fresh solvers from *factory*; keep the fastest run.

    The search is deterministic, so every repetition does identical work —
    the minimum wall-clock is the least-noisy estimate of the core's speed.
    """
    best = None
    for _ in range(max(1, repeats)):
        solver = factory()
        # Feed the formula through the SatBackend protocol surface only
        # (new_var/add_clause), so any registered backend can be measured.
        while solver.num_vars < cnf.num_vars:
            solver.new_var()
        for clause in cnf:
            solver.add_clause(clause)
        start = time.monotonic()
        result = solver.solve()
        seconds = time.monotonic() - start
        if best is None or seconds < best[0]:
            best = (seconds, result, solver.statistics())
    seconds, result, counters = best
    # Floor at 1 ns: a run below clock granularity is "infinitely fast" and
    # must read as a huge rate, never as zero throughput.
    floored = max(seconds, 1e-9)
    # A backend without a propagation counter (subprocess solvers) reports
    # None, not zero — absence of telemetry is not zero throughput.
    propagations = counters.get("propagations")
    return {
        "result": result.value,
        "seconds": seconds,
        "propagations": propagations,
        "conflicts": counters.get("conflicts"),
        "propagations_per_second": (
            propagations / floored if propagations is not None else None
        ),
    }


def compare_cores(
    cnf: CNF,
    repeats: int = DEFAULT_REPEATS,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> dict:
    """Race the candidate backend against the baseline on one formula.

    The per-backend measurements are keyed by the backend registry names, so
    the default document keeps its historical ``flat`` / ``reference`` keys.
    """
    candidate_name, baseline_name = backends
    if candidate_name == baseline_name:
        raise ValueError(f"cannot compare backend {candidate_name!r} with itself")
    candidate = measure_core(
        cnf, lambda: create_backend(candidate_name), repeats=repeats
    )
    baseline = measure_core(cnf, lambda: create_backend(baseline_name), repeats=repeats)
    if candidate["result"] != baseline["result"]:  # pragma: no cover - soundness net
        raise RuntimeError(
            f"SAT backends disagree: {candidate_name}={candidate['result']} "
            f"{baseline_name}={baseline['result']}"
        )
    # Both wall-clocks are floored at clock granularity so neither a
    # too-fast candidate run nor a too-fast baseline run produces a spurious
    # zero/infinite ratio; everything stays finite and JSON-representable.
    speedup = max(baseline["seconds"], 1e-9) / max(candidate["seconds"], 1e-9)
    candidate_pps = candidate["propagations_per_second"]
    baseline_pps = baseline["propagations_per_second"]
    if candidate_pps is None or baseline_pps is None:
        throughput_ratio: Optional[float] = None
    elif baseline_pps > 0:
        throughput_ratio = candidate_pps / baseline_pps
    else:
        throughput_ratio = 1e9
    return {
        candidate_name: candidate,
        baseline_name: baseline,
        "speedup": speedup,
        "throughput_ratio": throughput_ratio,
    }


def run_microbench(
    cells: Sequence[dict] = DEFAULT_CELLS,
    repeats: int = DEFAULT_REPEATS,
    backends: Optional[Sequence[str]] = None,
) -> dict:
    """Run the full microbench and summarise it as a JSON-ready document."""
    backends = tuple(backends) if backends else DEFAULT_BACKENDS
    results = []
    for cell in cells:
        cnf = scheduling_cnf(**cell)
        comparison = compare_cores(cnf, repeats=repeats, backends=backends)
        results.append(
            {
                **cell,
                "num_vars": cnf.num_vars,
                "num_clauses": cnf.num_clauses,
                **comparison,
            }
        )
    # The gate the CI job (and the CLI exit code) enforces: strictly faster
    # wall-clock on every cell AND, where both backends keep propagation
    # counters, strictly higher propagation throughput.
    faster_everywhere = all(
        cell["speedup"] > 1.0
        and (cell["throughput_ratio"] is None or cell["throughput_ratio"] > 1.0)
        for cell in results
    )
    ratios = [
        cell["throughput_ratio"]
        for cell in results
        if cell["throughput_ratio"] is not None
    ]
    document = {
        "backends": list(backends),
        "cells": results,
        "candidate_faster_everywhere": faster_everywhere,
        "min_speedup": min(cell["speedup"] for cell in results),
        "min_throughput_ratio": min(ratios) if ratios else None,
    }
    if backends == DEFAULT_BACKENDS:
        # Historical key of the default flat-vs-reference document.
        document["flat_faster_everywhere"] = faster_everywhere
    return document


def format_microbench(document: dict) -> str:
    """Human-readable summary table of a :func:`run_microbench` document."""
    candidate_name, baseline_name = document.get("backends", DEFAULT_BACKENDS)
    cand_col = f"{candidate_name[:12]}[s]"
    base_col = f"{baseline_name[:12]}[s]"
    lines = [
        f"{'Cell':<28}{'Answer':>8}{cand_col:>16}{base_col:>16}"
        f"{'Speedup':>9}{'Props/s ratio':>15}"
    ]
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        ratio = cell["throughput_ratio"]
        lines.append(
            f"{name:<28}{cell[candidate_name]['result']:>8}"
            f"{cell[candidate_name]['seconds']:>16.3f}"
            f"{cell[baseline_name]['seconds']:>16.3f}"
            f"{cell['speedup']:>9.2f}"
            f"{'-' if ratio is None else format(ratio, '.2f'):>15}"
        )
    verdict = (
        "yes" if document["candidate_faster_everywhere"] else "NO - REGRESSION"
    )
    min_ratio = document["min_throughput_ratio"]
    lines.append(
        f"{candidate_name} faster than {baseline_name} everywhere: {verdict} "
        f"(min speedup {document['min_speedup']:.2f}x, "
        f"min throughput ratio "
        f"{'-' if min_ratio is None else format(min_ratio, '.2f') + 'x'})"
    )
    return "\n".join(lines)
