"""Clause container with DIMACS import/export.

Clauses are stored as tuples of DIMACS-style literals (non-zero integers,
negative meaning negation).  The container tracks the number of variables and
performs light validation; it is deliberately independent of the solver so
that formulas can be built, stored, and inspected without committing to a
particular decision procedure.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class CNF:
    """A formula in conjunctive normal form.

    Parameters
    ----------
    clauses:
        Optional initial clauses, each an iterable of DIMACS literals.
    num_vars:
        Optional lower bound on the number of variables.  The count grows
        automatically as clauses mentioning higher variables are added.
    """

    def __init__(self, clauses: Iterable[Iterable[int]] = (), num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._clauses: list[tuple[int, ...]] = []
        self._num_vars = num_vars
        self._dimacs_body: str | None = None
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables mentioned by (or reserved for) the formula."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses currently stored."""
        return len(self._clauses)

    @property
    def clauses(self) -> Sequence[tuple[int, ...]]:
        """The stored clauses as an immutable view."""
        return tuple(self._clauses)

    def new_var(self) -> int:
        """Reserve and return a fresh variable index."""
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append a clause given as DIMACS literals.

        Duplicate literals are removed; a clause containing both a literal
        and its negation is a tautology and is silently dropped.
        """
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if not isinstance(lit, int):
                raise TypeError(f"literal {lit!r} is not an integer")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            if abs(lit) > self._num_vars:
                self._num_vars = abs(lit)
        self._clauses.append(tuple(clause))
        self._dimacs_body = None

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses at once."""
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(num_vars={self._num_vars}, num_clauses={len(self._clauses)})"

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate the formula under a total assignment ``var -> bool``."""
        for clause in self._clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    # ------------------------------------------------------------------ #
    # DIMACS serialisation
    # ------------------------------------------------------------------ #
    @property
    def dimacs_body_cached(self) -> bool:
        """Whether :meth:`dimacs_body` is currently memoised.

        Lets consumers (the ``dimacs-subprocess`` backend's dump cache)
        observe cache effectiveness without re-serialising to find out.
        """
        return self._dimacs_body is not None

    def dimacs_body(self) -> str:
        """The DIMACS clause lines (no ``p cnf`` header), memoised.

        The memo is invalidated whenever a clause is added, so consecutive
        solver probes over an unchanged clause set (e.g. assumption-emulated
        horizon probes, where only the appended unit clauses differ) pay the
        serialisation cost once.  ``new_var`` does not invalidate: variables
        only appear in the header, which callers write themselves.
        """
        if self._dimacs_body is None:
            self._dimacs_body = "".join(
                " ".join(map(str, clause)) + " 0\n" for clause in self._clauses
            )
        return self._dimacs_body

    def to_dimacs(self) -> str:
        """Serialise to the DIMACS CNF text format."""
        header = f"p cnf {self._num_vars} {len(self._clauses)}\n"
        return header + self.dimacs_body()

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a formula from DIMACS CNF text."""
        cnf = cls()
        declared_vars = 0
        pending: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            cnf.add_clause(pending)
        if declared_vars > cnf._num_vars:
            cnf._num_vars = declared_vars
        return cnf
