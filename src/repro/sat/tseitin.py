"""Tseitin transformation of boolean circuits into CNF.

The SMT encoder in :mod:`repro.smt` produces boolean circuits (gates over
fresh variables); this module turns those gates into equisatisfiable CNF
clauses.  Each helper returns the literal representing the gate output and
appends the defining clauses to the underlying formula.

The encoder works directly against anything exposing ``new_var()`` and
``add_clause(iterable_of_dimacs_literals)`` — both :class:`repro.sat.cnf.CNF`
and :class:`repro.sat.solver.CDCLSolver` qualify, so formulas can either be
materialised or streamed straight into a solver.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence


class ClauseSink(Protocol):
    """Anything that can receive clauses and hand out fresh variables."""

    def new_var(self) -> int:  # pragma: no cover - protocol definition
        ...

    def add_clause(self, literals: Iterable[int]) -> object:  # pragma: no cover
        ...


class TseitinEncoder:
    """Builds CNF definitions for AND/OR/NOT/XOR/ITE gates.

    The encoder caches gate definitions so that structurally identical gates
    (same operation over the same literal multiset) share one output literal,
    which keeps the generated formulas compact.
    """

    #: Literal that is always true.  Created lazily per encoder.
    def __init__(self, sink: ClauseSink) -> None:
        self._sink = sink
        self._cache: dict[tuple, int] = {}
        self._true_lit: int | None = None

    # ------------------------------------------------------------------ #
    # Constants
    # ------------------------------------------------------------------ #
    def true_literal(self) -> int:
        """Return a literal constrained to be true."""
        if self._true_lit is None:
            self._true_lit = self._sink.new_var()
            self._sink.add_clause([self._true_lit])
        return self._true_lit

    def false_literal(self) -> int:
        """Return a literal constrained to be false."""
        return -self.true_literal()

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #
    def NOT(self, lit: int) -> int:
        """Negation needs no auxiliary variable."""
        return -lit

    def AND(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of *literals*."""
        literals = self._normalise(literals)
        if literals is None:
            return self.false_literal()
        if not literals:
            return self.true_literal()
        if len(literals) == 1:
            return literals[0]
        key = ("and",) + tuple(literals)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self._sink.new_var()
        for lit in literals:
            self._sink.add_clause([-out, lit])
        self._sink.add_clause([out] + [-lit for lit in literals])
        self._cache[key] = out
        return out

    def OR(self, literals: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of *literals*."""
        return -self.AND([-lit for lit in literals])

    def IMPLIES(self, antecedent: int, consequent: int) -> int:
        """Return a literal equivalent to ``antecedent -> consequent``."""
        return self.OR([-antecedent, consequent])

    def IFF(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a <-> b``."""
        if a == b:
            return self.true_literal()
        if a == -b:
            return self.false_literal()
        key = ("iff",) + tuple(sorted((a, b)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self._sink.new_var()
        self._sink.add_clause([-out, -a, b])
        self._sink.add_clause([-out, a, -b])
        self._sink.add_clause([out, a, b])
        self._sink.add_clause([out, -a, -b])
        self._cache[key] = out
        return out

    def XOR(self, a: int, b: int) -> int:
        """Return a literal equivalent to ``a xor b``."""
        return -self.IFF(a, b)

    def ITE(self, cond: int, then_lit: int, else_lit: int) -> int:
        """Return a literal equivalent to ``cond ? then_lit : else_lit``."""
        if then_lit == else_lit:
            return then_lit
        key = ("ite", cond, then_lit, else_lit)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = self._sink.new_var()
        self._sink.add_clause([-out, -cond, then_lit])
        self._sink.add_clause([-out, cond, else_lit])
        self._sink.add_clause([out, -cond, -then_lit])
        self._sink.add_clause([out, cond, -else_lit])
        # Redundant but propagation-strengthening clauses.
        self._sink.add_clause([-out, then_lit, else_lit])
        self._sink.add_clause([out, -then_lit, -else_lit])
        self._cache[key] = out
        return out

    def assert_true(self, lit: int) -> None:
        """Constrain *lit* to be true at the top level."""
        self._sink.add_clause([lit])

    def assert_clause(self, literals: Sequence[int]) -> None:
        """Add a clause directly (no auxiliary variable)."""
        self._sink.add_clause(list(literals))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _normalise(self, literals: Sequence[int]) -> list[int] | None:
        """Sort/deduplicate literals of an AND gate.

        Returns ``None`` if the conjunction is trivially false (contains a
        literal and its negation or an explicit false literal).
        """
        result: list[int] = []
        seen: set[int] = set()
        for lit in literals:
            if self._true_lit is not None:
                if lit == self._true_lit:
                    continue
                if lit == -self._true_lit:
                    return None
            if -lit in seen:
                return None
            if lit in seen:
                continue
            seen.add(lit)
            result.append(lit)
        result.sort()
        return result
