"""The seed CDCL solver, preserved verbatim as a reference backend.

This module is the pre-flat-array implementation of the CDCL solver: object
style bookkeeping (one Python list per clause, linear VSIDS scans, no blocker
literals, activity-only clause reduction).  It is kept for three reasons:

* **Benchmark baseline** — ``benchmarks/test_bench_smt.py`` and the
  ``repro-nasp microbench`` command race :class:`ReferenceCDCLSolver` against
  the flat-array :class:`repro.sat.solver.CDCLSolver` and fail when the
  rewrite stops being strictly faster.
* **Differential testing** — both cores must return identical SAT/UNSAT
  answers on every formula; the property tests in ``tests/sat`` cross-check
  them.
* **Backend seam** — the solver-facing surface (``new_var``/``add_clause``/
  ``solve``/``model``/``set_phase_hints``) is exactly what a future external
  SAT backend has to provide, so the reference documents the minimal
  contract.

The algorithmic content is the seed implementation unchanged; only the class
name, the shared ``SolveResult``/``SolverStatistics`` imports, and the
``solve_seconds`` timing wrapper around :meth:`solve` differ (the wrapper
feeds the same statistics fields the flat core reports, keeping throughput
comparisons apples-to-apples).  Do not optimise this file — its whole value
is staying fixed.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import SolveResult, SolverStatistics, _luby

_UNASSIGNED = 2


class ReferenceCDCLSolver:
    """The seed's CDCL SAT solver (dict/object bookkeeping, linear VSIDS).

    API-compatible with :class:`repro.sat.solver.CDCLSolver`; see the module
    docstring for why it is preserved.
    """

    #: :class:`repro.sat.backend.SatBackend` surface (additive metadata only;
    #: the algorithmic content below stays the seed implementation).
    backend_name = "reference"
    supports_assumptions = True
    supports_phase_hints = True

    def __init__(self) -> None:
        self._num_vars = 0
        # Indexed by variable (1-based); index 0 unused.
        self._assigns: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._saved_phase: list[bool] = [False]
        self._seen: list[bool] = [False]
        # Clauses: list of lists of encoded literals.
        self._clauses: list[list[int]] = []
        self._clause_is_learned: list[bool] = []
        self._clause_activity: list[float] = []
        # Watch lists indexed by encoded literal.
        self._watches: list[list[int]] = [[], []]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._model: dict[int, bool] = {}
        self.stats = SolverStatistics()

    # ------------------------------------------------------------------ #
    # Literal encoding helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _encode(lit: int) -> int:
        var = abs(lit)
        return (var << 1) | (1 if lit < 0 else 0)

    @staticmethod
    def _decode(enc: int) -> int:
        var = enc >> 1
        return -var if enc & 1 else var

    def _lit_value(self, enc: int) -> int:
        val = self._assigns[enc >> 1]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (enc & 1)

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem plus learned clauses currently stored."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Create a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assigns.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._saved_phase.append(False)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause.  Returns ``False`` if the formula became
        trivially unsatisfiable (empty clause or conflicting units)."""
        if not self._ok:
            return False
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            enc = self._encode(lit)
            # Drop literals already false at level 0, ignore clause if a
            # literal is already true at level 0.
            if not self._trail_lim:
                val = self._lit_value(enc)
                if val == 1:
                    return True
                if val == 0:
                    continue
            clause.append(enc)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict != -1:
                self._ok = False
                return False
            return True
        self._attach_clause(clause, learned=False)
        return True

    def set_phase_hints(self, phases: dict[int, bool]) -> None:
        """Seed the saved phase of variables with preferred polarities."""
        for var, value in phases.items():
            if var <= 0:
                raise ValueError(f"{var} is not a valid variable index")
            self._ensure_var(var)
            self._saved_phase[var] = bool(value)

    def statistics(self) -> dict[str, float]:
        """Counters as a plain dict — the :class:`~repro.sat.backend.SatBackend`
        surface of :attr:`stats` (additive accessor, no seed behaviour)."""
        return self.stats.as_dict()

    def add_cnf(self, cnf: CNF) -> bool:
        """Add every clause of a :class:`~repro.sat.cnf.CNF` formula."""
        self._ensure_var(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach_clause(self, clause: list[int], learned: bool) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._clause_is_learned.append(learned)
        self._clause_activity.append(0.0)
        self._watches[clause[0]].append(index)
        self._watches[clause[1]].append(index)
        return index

    # ------------------------------------------------------------------ #
    # Assignment / propagation
    # ------------------------------------------------------------------ #
    def _enqueue(self, enc: int, reason: int) -> bool:
        val = self._lit_value(enc)
        if val == 0:
            return False
        if val == 1:
            return True
        var = enc >> 1
        self._assigns[var] = 1 ^ (enc & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(enc)
        return True

    def _propagate(self) -> int:
        """Unit propagation.  Returns the index of a conflicting clause or -1."""
        while self._qhead < len(self._trail):
            enc = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = enc ^ 1
            watch_list = self._watches[false_lit]
            new_watch_list: list[int] = []
            i = 0
            n = len(watch_list)
            while i < n:
                ci = watch_list[i]
                i += 1
                clause = self._clauses[ci]
                # Ensure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    new_watch_list.append(ci)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(ci)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(ci)
                if not self._enqueue(first, ci):
                    # Conflict: keep remaining watches and report.
                    new_watch_list.extend(watch_list[i:])
                    self._watches[false_lit] = new_watch_list
                    return ci
            self._watches[false_lit] = new_watch_list
        return -1

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, ci: int) -> None:
        self._clause_activity[ci] += self._cla_inc
        if self._clause_activity[ci] > 1e20:
            for j in range(len(self._clause_activity)):
                self._clause_activity[j] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        p = -1
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        clause_index = conflict
        while True:
            clause = self._clauses[clause_index]
            if self._clause_is_learned[clause_index]:
                self._bump_clause(clause_index)
            start = 1 if p != -1 else 0
            for enc in clause[start:]:
                var = enc >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(enc)
            # Select next literal to resolve on.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = p >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause_index = self._reason[var]
        learned[0] = p ^ 1
        # Clause minimisation (Sörensson/Biere "local" minimisation).
        original = list(learned)
        learned_vars = {enc >> 1 for enc in learned}
        minimized = [learned[0]]
        for enc in learned[1:]:
            var = enc >> 1
            reason = self._reason[var]
            if reason == -1:
                minimized.append(enc)
                continue
            redundant = all(
                (other >> 1) == var
                or self._level[other >> 1] == 0
                or (other >> 1) in learned_vars
                for other in self._clauses[reason]
            )
            if not redundant:
                minimized.append(enc)
        learned = minimized
        for enc in original:
            seen[enc >> 1] = False
        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if self._level[learned[i] >> 1] > self._level[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backtrack_level = self._level[learned[1] >> 1]
        return learned, backtrack_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for enc in reversed(self._trail[bound:]):
            var = enc >> 1
            self._saved_phase[var] = self._assigns[var] == 1
            self._assigns[var] = _UNASSIGNED
            self._reason[var] = -1
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def _pick_branch_var(self) -> int:
        best_var = 0
        best_act = -1.0
        activity = self._activity
        assigns = self._assigns
        for var in range(1, self._num_vars + 1):
            if assigns[var] == _UNASSIGNED and activity[var] > best_act:
                best_act = activity[var]
                best_var = var
        return best_var

    # ------------------------------------------------------------------ #
    # Learned clause database reduction
    # ------------------------------------------------------------------ #
    def _reduce_db(self) -> None:
        learned_indices = [
            i
            for i, is_learned in enumerate(self._clause_is_learned)
            if is_learned and len(self._clauses[i]) > 2
        ]
        if len(learned_indices) < 100:
            return
        locked = {self._reason[enc >> 1] for enc in self._trail}
        learned_indices.sort(key=lambda i: self._clause_activity[i])
        to_remove = set()
        for i in learned_indices[: len(learned_indices) // 2]:
            if i not in locked:
                to_remove.add(i)
        if not to_remove:
            return
        self._rebuild_clause_db(to_remove)
        self.stats.deleted_clauses += len(to_remove)

    def _rebuild_clause_db(self, to_remove: set[int]) -> None:
        old_clauses = self._clauses
        old_learned = self._clause_is_learned
        old_activity = self._clause_activity
        remap: dict[int, int] = {}
        new_clauses: list[list[int]] = []
        new_learned: list[bool] = []
        new_activity: list[float] = []
        for i, clause in enumerate(old_clauses):
            if i in to_remove:
                continue
            remap[i] = len(new_clauses)
            new_clauses.append(clause)
            new_learned.append(old_learned[i])
            new_activity.append(old_activity[i])
        self._clauses = new_clauses
        self._clause_is_learned = new_learned
        self._clause_activity = new_activity
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason != -1:
                self._reason[var] = remap.get(reason, -1)
        self._watches = [[] for _ in range(2 * self._num_vars + 2)]
        for ci, clause in enumerate(self._clauses):
            if len(clause) >= 2:
                self._watches[clause[0]].append(ci)
                self._watches[clause[1]].append(ci)

    # ------------------------------------------------------------------ #
    # Main search
    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Solve the formula, optionally under *assumptions*."""
        start = time.monotonic()
        try:
            return self._solve(assumptions, max_conflicts, time_limit)
        finally:
            self.stats.solve_seconds += time.monotonic() - start

    def _solve(
        self,
        assumptions: Sequence[int],
        max_conflicts: Optional[int],
        time_limit: Optional[float],
    ) -> SolveResult:
        if not self._ok:
            return SolveResult.UNSAT
        self._backtrack(0)
        conflict = self._propagate()
        if conflict != -1:
            self._ok = False
            return SolveResult.UNSAT
        assumption_encs = [self._encode(lit) for lit in assumptions]
        for lit in assumptions:
            self._ensure_var(abs(lit))
        deadline = time.monotonic() + time_limit if time_limit is not None else None
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count + 1)
        conflicts_since_restart = 0
        total_conflicts = 0
        max_learned = max(2000, self.num_clauses // 3)

        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    return SolveResult.UNSAT
                if len(self._trail_lim) <= len(assumption_encs):
                    self._backtrack(0)
                    return SolveResult.UNSAT
                learned, backtrack_level = self._analyze(conflict)
                backtrack_level = max(backtrack_level, 0)
                self._backtrack(max(backtrack_level, 0))
                if len(learned) == 1:
                    self._backtrack(0)
                    if not self._enqueue(learned[0], -1):
                        self._ok = False
                        return SolveResult.UNSAT
                else:
                    ci = self._attach_clause(learned, learned=True)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], ci)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if max_conflicts is not None and total_conflicts >= max_conflicts:
                    self._backtrack(0)
                    return SolveResult.UNKNOWN
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return SolveResult.UNKNOWN
                if conflicts_since_restart >= conflicts_until_restart:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = 100 * _luby(restart_count + 1)
                    self._backtrack(0)
                learned_count = self.stats.learned_clauses - self.stats.deleted_clauses
                if learned_count > max_learned:
                    self._reduce_db()
                    max_learned = int(max_learned * 1.3)
                continue

            # No conflict: extend the assignment.
            decision = 0
            level = len(self._trail_lim)
            if level < len(assumption_encs):
                enc = assumption_encs[level]
                val = self._lit_value(enc)
                if val == 0:
                    self._backtrack(0)
                    return SolveResult.UNSAT
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                decision = enc
            else:
                var = self._pick_branch_var()
                if var == 0:
                    self._store_model()
                    self._backtrack(0)
                    return SolveResult.SAT
                self.stats.decisions += 1
                decision = (var << 1) | (0 if self._saved_phase[var] else 1)
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, len(self._trail_lim)
            )
            self._enqueue(decision, -1)

    def _store_model(self) -> None:
        self._model = {
            var: self._assigns[var] == 1 for var in range(1, self._num_vars + 1)
        }

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last SAT call."""
        if not self._model:
            raise RuntimeError("no model available; call solve() first")
        return dict(self._model)
