"""A self-contained CDCL SAT solver.

This package is the decision procedure underlying :mod:`repro.smt`.  It
replaces the role Z3 plays in the paper (see DESIGN.md, "Substitutions").

Public API
----------

``Literal`` handling uses the DIMACS convention: variables are positive
integers ``1, 2, 3, ...`` and a negative integer denotes the negation of the
corresponding variable.

* :class:`repro.sat.cnf.CNF` — a clause container with DIMACS import/export.
* :class:`repro.sat.solver.CDCLSolver` — conflict-driven clause-learning
  solver on flat arrays: two-watched-literal propagation with blocker
  literals, heap-based VSIDS branching, phase saving, Luby restarts and
  LBD-aware learned-clause database reduction.
* :class:`repro.sat.reference.ReferenceCDCLSolver` — the seed's object-style
  implementation, kept as benchmark baseline and differential-testing oracle.
* :mod:`repro.sat.backend` — the pluggable backend subsystem: the
  :class:`~repro.sat.backend.SatBackend` protocol, the name-keyed registry
  (``flat`` / ``reference`` / ``dimacs-subprocess``), and the external
  DIMACS-subprocess adapter.
* :class:`repro.sat.solver.SolveResult` — SAT / UNSAT / UNKNOWN.
* :class:`repro.sat.solver.SolverStatistics` — per-solver counters
  (propagations, conflicts, restarts, solve seconds, derived throughput).
* :mod:`repro.sat.tseitin` — Tseitin transformation of boolean circuits.
"""

from repro.sat.backend import (
    DEFAULT_BACKEND,
    DimacsSubprocessBackend,
    SatBackend,
    available_backends,
    backend_info,
    create_backend,
    register_backend,
    usable_backends,
)
from repro.sat.chaos import ChaosBackend, FaultPlan
from repro.sat.cnf import CNF
from repro.sat.errors import (
    BackendError,
    PermanentBackendError,
    TransientBackendError,
)
from repro.sat.reference import ReferenceCDCLSolver
from repro.sat.solver import CDCLSolver, SolveResult, SolverStatistics
from repro.sat.tseitin import TseitinEncoder

__all__ = [
    "BackendError",
    "CNF",
    "CDCLSolver",
    "ChaosBackend",
    "DEFAULT_BACKEND",
    "DimacsSubprocessBackend",
    "FaultPlan",
    "PermanentBackendError",
    "ReferenceCDCLSolver",
    "SatBackend",
    "TransientBackendError",
    "SolveResult",
    "SolverStatistics",
    "TseitinEncoder",
    "available_backends",
    "backend_info",
    "create_backend",
    "register_backend",
    "usable_backends",
]
