"""A self-contained CDCL SAT solver.

This package is the decision procedure underlying :mod:`repro.smt`.  It
replaces the role Z3 plays in the paper (see DESIGN.md, "Substitutions").

Public API
----------

``Literal`` handling uses the DIMACS convention: variables are positive
integers ``1, 2, 3, ...`` and a negative integer denotes the negation of the
corresponding variable.

* :class:`repro.sat.cnf.CNF` — a clause container with DIMACS import/export.
* :class:`repro.sat.solver.CDCLSolver` — conflict-driven clause-learning
  solver with two-watched-literal propagation, VSIDS branching, phase saving,
  Luby restarts and learned-clause database reduction.
* :class:`repro.sat.solver.SolveResult` — SAT / UNSAT / UNKNOWN.
* :mod:`repro.sat.tseitin` — Tseitin transformation of boolean circuits.
"""

from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolveResult
from repro.sat.tseitin import TseitinEncoder

__all__ = ["CNF", "CDCLSolver", "SolveResult", "TseitinEncoder"]
