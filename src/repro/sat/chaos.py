"""The ``chaos`` wrapper backend: seeded fault injection at the SAT seam.

The backend-layer sibling of the bench fleet's ``selftest`` spec kind: it
wraps any registered inner backend and injects faults per a seeded,
reproducible :class:`FaultPlan` —

* **transient exceptions** (:class:`~repro.sat.errors.TransientBackendError`)
  before the inner solve, exercising the SMT facade's retry/backoff path;
* **UNKNOWN answers**, exercising the strategies' inconclusive-probe
  handling (an UNKNOWN must never be treated as a refuted horizon);
* **delays**, exercising deadline slicing;
* **crash-after-N-solves** (:class:`~repro.sat.errors.PermanentBackendError`),
  exercising the ``termination="backend-error"`` degradation.

Because faults fire *before* the inner backend is touched, the inner clause
database stays intact across injected transients — exactly the contract a
transient failure promises — so a retried solve returns the true answer and
a transient-only chaos run certifies the same optima as the fault-free
inner backend.

Registry names are parameterised: ``chaos`` wraps the default backend,
``chaos:flat`` / ``chaos:ipasir`` / ... wrap a named one.  The fault plan
is taken from ``$REPRO_CHAOS_SPEC`` (see :meth:`FaultPlan.from_spec`) when
set, else :meth:`FaultPlan.default`.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.sat.cnf import CNF
from repro.sat.errors import PermanentBackendError, TransientBackendError
from repro.sat.solver import SolveResult

#: Environment variable holding a :meth:`FaultPlan.from_spec` string that
#: overrides the default plan of registry-created chaos backends.
CHAOS_SPEC_ENV = "REPRO_CHAOS_SPEC"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Rates are per-``solve`` probabilities drawn from one ``random.Random``
    seeded with *seed*, so a fixed plan injects the same fault sequence on
    every run.  ``max_consecutive_transients`` caps back-to-back transient
    faults; keeping it at or below the solver's retry budget (default 2)
    guarantees a transient-only plan always lets a retried solve through.
    """

    seed: int = 0
    #: Probability that a solve raises a transient fault before running.
    transient_rate: float = 0.0
    #: Hard cap on back-to-back transient faults (so bounded retries win).
    max_consecutive_transients: int = 2
    #: Probability that a solve returns UNKNOWN instead of running.
    unknown_rate: float = 0.0
    #: Sleep injected before every solve (exercises deadline slicing).
    delay_seconds: float = 0.0
    #: After this many solves every further solve fails permanently.
    crash_after_solves: Optional[int] = None

    @classmethod
    def default(cls) -> "FaultPlan":
        """The registry default: transient-only faults, retry-winnable."""
        return cls(seed=0, transient_rate=0.3, max_consecutive_transients=2)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,...`` spec string (e.g. from the environment).

        Keys: ``seed``, ``transient``, ``consecutive``, ``unknown``,
        ``delay``, ``crash-after``.  Example:
        ``"seed=7,transient=1.0,consecutive=1"``.
        """
        fields = {
            "seed": 0,
            "transient": 0.0,
            "consecutive": 2,
            "unknown": 0.0,
            "delay": 0.0,
            "crash-after": None,
        }
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in fields:
                known = ", ".join(sorted(fields))
                raise ValueError(
                    f"bad chaos spec entry {part!r} (known keys: {known})"
                )
            fields[key] = value.strip()
        return cls(
            seed=int(fields["seed"]),
            transient_rate=float(fields["transient"]),
            max_consecutive_transients=int(fields["consecutive"]),
            unknown_rate=float(fields["unknown"]),
            delay_seconds=float(fields["delay"]),
            crash_after_solves=(
                None
                if fields["crash-after"] is None
                else int(fields["crash-after"])
            ),
        )

    @classmethod
    def from_environment(cls) -> "FaultPlan":
        """The plan named by ``$REPRO_CHAOS_SPEC``, else :meth:`default`."""
        spec = os.environ.get(CHAOS_SPEC_ENV)
        if spec:
            return cls.from_spec(spec)
        return cls.default()


class ChaosBackend:
    """A fault-injecting proxy around any registered inner backend.

    Every :class:`~repro.sat.backend.SatBackend` protocol method delegates
    to the inner backend; only :meth:`solve` consults the fault plan first.
    Capability flags mirror the inner backend, and :meth:`statistics` adds
    the chaos counters (``chaos_solves``, ``chaos_transient_faults``,
    ``chaos_unknown_faults``) on top of the inner ones.
    """

    backend_name = "chaos"

    def __init__(
        self,
        inner: Union[str, None, object] = None,
        plan: Optional[FaultPlan] = None,
        **inner_options: object,
    ) -> None:
        if inner is None or isinstance(inner, str):
            from repro.sat.backend import create_backend

            inner = create_backend(inner, **inner_options)
        self._inner = inner
        self._plan = plan if plan is not None else FaultPlan.from_environment()
        self._rng = random.Random(self._plan.seed)
        self.supports_assumptions = getattr(inner, "supports_assumptions", True)
        self.supports_phase_hints = getattr(inner, "supports_phase_hints", True)
        self._solves = 0
        self._consecutive_transients = 0
        self._transient_faults = 0
        self._unknown_faults = 0

    # ------------------------------------------------------------------ #
    @property
    def inner(self) -> object:
        """The wrapped backend instance."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        """The active fault plan."""
        return self._plan

    @property
    def num_vars(self) -> int:
        return self._inner.num_vars

    @property
    def num_clauses(self) -> int:
        return self._inner.num_clauses

    def new_var(self) -> int:
        return self._inner.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        return self._inner.add_clause(literals)

    def add_cnf(self, cnf: CNF) -> bool:
        return self._inner.add_cnf(cnf)

    def set_phase_hints(self, phases: dict[int, bool]) -> None:
        self._inner.set_phase_hints(phases)

    def model(self) -> dict[int, bool]:
        return self._inner.model()

    def statistics(self) -> dict[str, float]:
        return {
            **self._inner.statistics(),
            "chaos_solves": self._solves,
            "chaos_transient_faults": self._transient_faults,
            "chaos_unknown_faults": self._unknown_faults,
        }

    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Consult the fault plan, then delegate to the inner backend."""
        plan = self._plan
        self._solves += 1
        if (
            plan.crash_after_solves is not None
            and self._solves > plan.crash_after_solves
        ):
            raise PermanentBackendError(
                f"chaos: injected permanent failure after "
                f"{plan.crash_after_solves} solves"
            )
        if plan.delay_seconds > 0:
            delay = plan.delay_seconds
            if time_limit is not None:
                delay = min(delay, time_limit)
            time.sleep(delay)
        if (
            plan.transient_rate > 0
            and self._consecutive_transients < plan.max_consecutive_transients
            and self._rng.random() < plan.transient_rate
        ):
            self._consecutive_transients += 1
            self._transient_faults += 1
            raise TransientBackendError(
                f"chaos: injected transient fault (solve #{self._solves})"
            )
        self._consecutive_transients = 0
        if plan.unknown_rate > 0 and self._rng.random() < plan.unknown_rate:
            self._unknown_faults += 1
            return SolveResult.UNKNOWN
        return self._inner.solve(
            assumptions=assumptions,
            max_conflicts=max_conflicts,
            time_limit=time_limit,
        )
