"""A quantifier-free finite-domain SMT layer.

This package plays the role Z3 plays in the paper: it accepts formulas over
booleans and *bounded* integers (the only theory the scheduling encoding
needs) and decides them by bit-blasting onto the CDCL solver in
:mod:`repro.sat`.

The API intentionally mirrors the small subset of the Z3 Python bindings used
by SMT-based compilation passes::

    from repro.smt import Solver, And, Or, Not, Implies, If

    solver = Solver()
    x = solver.int_var("x", 0, 7)
    y = solver.int_var("y", 0, 7)
    b = solver.bool_var("b")
    solver.add(Implies(b, x + 1 < y))
    solver.add(Or(b, x == y))
    if solver.check().is_sat():
        model = solver.model()
        print(model[x], model[y], model[b])
"""

from repro.smt.terms import (
    And,
    BoolConst,
    BoolExpr,
    BoolVar,
    If,
    Iff,
    Implies,
    IntConst,
    IntExpr,
    IntVar,
    Not,
    Or,
    Distinct,
)
from repro.smt.solver import CheckResult, Model, Solver
from repro.smt.cardinality import at_least_one, at_most_k, at_most_one, exactly_one

__all__ = [
    "And",
    "BoolConst",
    "BoolExpr",
    "BoolVar",
    "CheckResult",
    "Distinct",
    "If",
    "Iff",
    "Implies",
    "IntConst",
    "IntExpr",
    "IntVar",
    "Model",
    "Not",
    "Or",
    "Solver",
    "at_least_one",
    "at_most_k",
    "at_most_one",
    "exactly_one",
]
