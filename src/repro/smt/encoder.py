"""Bit-blasting of finite-domain SMT expressions to CNF.

Bounded integers are encoded as two's-complement bit-vectors whose width is
derived from the expression's conservative bounds.  Boolean structure is
translated with the Tseitin encoder from :mod:`repro.sat.tseitin`.

The encoder is stateless with respect to the SAT solver: it can emit clauses
into any object exposing ``new_var``/``add_clause`` (a solver or a
:class:`repro.sat.cnf.CNF` container), which makes the generated formulas easy
to inspect and test.
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.tseitin import ClauseSink, TseitinEncoder
from repro.smt import terms as T


class BitVector:
    """A two's-complement bit-vector of SAT literals (LSB first)."""

    __slots__ = ("bits",)

    def __init__(self, bits: Sequence[int]) -> None:
        self.bits = list(bits)

    @property
    def width(self) -> int:
        return len(self.bits)

    def sign_bit(self) -> int:
        return self.bits[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector({self.bits})"


def width_for_bounds(lo: int, hi: int) -> int:
    """Return the two's-complement width needed to represent ``[lo, hi]``."""
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi <= (1 << (width - 1)) - 1):
        width += 1
    return width


class ExpressionEncoder:
    """Translate :mod:`repro.smt.terms` expressions into SAT clauses."""

    def __init__(self, sink: ClauseSink) -> None:
        self._sink = sink
        self._gates = TseitinEncoder(sink)
        # Caches are keyed by expression identity: expressions are immutable
        # trees, and reusing structurally identical sub-trees is the caller's
        # job (the scheduler reuses variable objects, which is what matters).
        # Every cached expression is pinned in ``_pinned``: the encoder can
        # outlive the expressions it translated (incremental solving), and an
        # id() reused by a newly allocated expression would otherwise alias a
        # stale cache entry.
        self._bool_cache: dict[int, int] = {}
        self._int_cache: dict[int, BitVector] = {}
        self._bool_vars: dict[int, int] = {}
        self._int_vars: dict[int, BitVector] = {}
        self._pinned: list[T.Expr] = []

    @property
    def gates(self) -> TseitinEncoder:
        """The underlying Tseitin gate encoder."""
        return self._gates

    # ------------------------------------------------------------------ #
    # Variable access (used for model extraction)
    # ------------------------------------------------------------------ #
    def bool_var_literal(self, var: T.BoolVar) -> int | None:
        """SAT literal allocated for *var*, or ``None`` if never encoded."""
        return self._bool_vars.get(id(var))

    def int_var_bits(self, var: T.IntVar) -> BitVector | None:
        """Bit-vector allocated for *var*, or ``None`` if never encoded."""
        return self._int_vars.get(id(var))

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def assert_expr(self, expr: T.BoolExpr) -> None:
        """Assert that *expr* holds."""
        if isinstance(expr, T.BoolConst):
            if not expr.value:
                # Unsatisfiable formula: emit an empty-clause equivalent.
                lit = self._gates.true_literal()
                self._sink.add_clause([-lit])
            return
        if isinstance(expr, T.AndExpr):
            for arg in expr.args:
                self.assert_expr(arg)
            return
        self._sink.add_clause([self.encode_bool(expr)])

    # ------------------------------------------------------------------ #
    # Boolean encoding
    # ------------------------------------------------------------------ #
    def encode_bool(self, expr: T.BoolExpr) -> int:
        """Return a SAT literal equivalent to *expr*."""
        key = id(expr)
        cached = self._bool_cache.get(key)
        if cached is not None:
            return cached
        lit = self._encode_bool_uncached(expr)
        self._bool_cache[key] = lit
        self._pinned.append(expr)
        return lit

    def _encode_bool_uncached(self, expr: T.BoolExpr) -> int:
        gates = self._gates
        if isinstance(expr, T.BoolConst):
            return gates.true_literal() if expr.value else gates.false_literal()
        if isinstance(expr, T.BoolVar):
            lit = self._bool_vars.get(id(expr))
            if lit is None:
                lit = self._sink.new_var()
                self._bool_vars[id(expr)] = lit
            return lit
        if isinstance(expr, T.NotExpr):
            return -self.encode_bool(expr.arg)
        if isinstance(expr, T.AndExpr):
            return gates.AND([self.encode_bool(a) for a in expr.args])
        if isinstance(expr, T.OrExpr):
            return gates.OR([self.encode_bool(a) for a in expr.args])
        if isinstance(expr, T.IffExpr):
            return gates.IFF(self.encode_bool(expr.left), self.encode_bool(expr.right))
        if isinstance(expr, T.IteBoolExpr):
            return gates.ITE(
                self.encode_bool(expr.cond),
                self.encode_bool(expr.then_branch),
                self.encode_bool(expr.else_branch),
            )
        if isinstance(expr, T.IntEq):
            return self._encode_eq(expr.left, expr.right)
        if isinstance(expr, T.IntLt):
            return self._encode_lt(expr.left, expr.right)
        if isinstance(expr, T.IntLe):
            return -self._encode_lt(expr.right, expr.left)
        raise TypeError(f"cannot encode boolean expression {expr!r}")

    # ------------------------------------------------------------------ #
    # Integer encoding
    # ------------------------------------------------------------------ #
    def encode_int(self, expr: T.IntExpr) -> BitVector:
        """Return a bit-vector whose value equals *expr*."""
        key = id(expr)
        cached = self._int_cache.get(key)
        if cached is not None:
            return cached
        vec = self._encode_int_uncached(expr)
        self._int_cache[key] = vec
        self._pinned.append(expr)
        return vec

    def _encode_int_uncached(self, expr: T.IntExpr) -> BitVector:
        if isinstance(expr, T.IntConst):
            return self.constant_vector(expr.value)
        if isinstance(expr, T.IntVar):
            vec = self._int_vars.get(id(expr))
            if vec is None:
                vec = self._allocate_int_var(expr)
                self._int_vars[id(expr)] = vec
            return vec
        if isinstance(expr, T.IntAdd):
            return self._add(self.encode_int(expr.left), self.encode_int(expr.right))
        if isinstance(expr, T.IntSub):
            return self._sub(self.encode_int(expr.left), self.encode_int(expr.right))
        if isinstance(expr, T.IntAbs):
            return self._abs(self.encode_int(expr.arg))
        if isinstance(expr, T.IteIntExpr):
            cond = self.encode_bool(expr.cond)
            then_vec = self.encode_int(expr.then_branch)
            else_vec = self.encode_int(expr.else_branch)
            width = max(then_vec.width, else_vec.width)
            then_vec = self._extend(then_vec, width)
            else_vec = self._extend(else_vec, width)
            bits = [
                self._gates.ITE(cond, t, e) for t, e in zip(then_vec.bits, else_vec.bits)
            ]
            return BitVector(bits)
        raise TypeError(f"cannot encode integer expression {expr!r}")

    def constant_vector(self, value: int) -> BitVector:
        """Encode an integer constant as a bit-vector of constant literals."""
        width = width_for_bounds(min(value, 0), max(value, 0))
        true_lit = self._gates.true_literal()
        false_lit = -true_lit
        bits = []
        rep = value & ((1 << width) - 1)
        for i in range(width):
            bits.append(true_lit if (rep >> i) & 1 else false_lit)
        return BitVector(bits)

    def _allocate_int_var(self, var: T.IntVar) -> BitVector:
        width = width_for_bounds(var.lo, var.hi)
        bits = [self._sink.new_var() for _ in range(width)]
        vec = BitVector(bits)
        # Domain constraints lo <= var <= hi (skip when the width is tight).
        min_rep = -(1 << (width - 1))
        max_rep = (1 << (width - 1)) - 1
        if var.lo > min_rep:
            lo_vec = self.constant_vector(var.lo)
            self._sink.add_clause([-self._lt_literal(vec, lo_vec)])
        if var.hi < max_rep:
            hi_vec = self.constant_vector(var.hi)
            self._sink.add_clause([-self._lt_literal(hi_vec, vec)])
        return vec

    # ------------------------------------------------------------------ #
    # Bit-vector arithmetic
    # ------------------------------------------------------------------ #
    def _extend(self, vec: BitVector, width: int) -> BitVector:
        """Sign-extend *vec* to *width* bits."""
        if vec.width >= width:
            return vec
        sign = vec.sign_bit()
        return BitVector(vec.bits + [sign] * (width - vec.width))

    def _add(self, a: BitVector, b: BitVector, extra_bit: bool = True) -> BitVector:
        """Ripple-carry addition; the result is wide enough not to overflow."""
        width = max(a.width, b.width) + (1 if extra_bit else 0)
        a = self._extend(a, width)
        b = self._extend(b, width)
        gates = self._gates
        bits: list[int] = []
        carry = gates.false_literal()
        for ai, bi in zip(a.bits, b.bits):
            s = gates.XOR(gates.XOR(ai, bi), carry)
            carry = gates.OR([gates.AND([ai, bi]), gates.AND([ai, carry]), gates.AND([bi, carry])])
            bits.append(s)
        return BitVector(bits)

    def _negate(self, a: BitVector) -> BitVector:
        """Two's-complement negation (with one extra bit to avoid overflow)."""
        extended = self._extend(a, a.width + 1)
        inverted = BitVector([-bit for bit in extended.bits])
        # The +1 constant must carry a zero sign bit, hence two bits wide.
        one = self.constant_vector(1)
        return self._add(inverted, one, extra_bit=False)

    def _sub(self, a: BitVector, b: BitVector) -> BitVector:
        return self._add(a, self._negate(b))

    def _abs(self, a: BitVector) -> BitVector:
        neg = self._negate(a)
        width = max(a.width, neg.width)
        a_ext = self._extend(a, width)
        neg_ext = self._extend(neg, width)
        sign = a.sign_bit()
        bits = [self._gates.ITE(sign, n, p) for p, n in zip(a_ext.bits, neg_ext.bits)]
        return BitVector(bits)

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def _encode_eq(self, left: T.IntExpr, right: T.IntExpr) -> int:
        lvec = self.encode_int(left)
        rvec = self.encode_int(right)
        width = max(lvec.width, rvec.width)
        lvec = self._extend(lvec, width)
        rvec = self._extend(rvec, width)
        gates = self._gates
        return gates.AND([gates.IFF(a, b) for a, b in zip(lvec.bits, rvec.bits)])

    def _encode_lt(self, left: T.IntExpr, right: T.IntExpr) -> int:
        return self._lt_literal(self.encode_int(left), self.encode_int(right))

    def _lt_literal(self, lvec: BitVector, rvec: BitVector) -> int:
        """Signed ``lvec < rvec`` as a literal."""
        width = max(lvec.width, rvec.width)
        lvec = self._extend(lvec, width)
        rvec = self._extend(rvec, width)
        gates = self._gates
        # Compare the sign bits first, then the magnitudes MSB-first.
        l_sign = lvec.sign_bit()
        r_sign = rvec.sign_bit()
        # Unsigned comparison of all bits below the sign bit.
        lt = gates.false_literal()
        for a, b in zip(lvec.bits[:-1], rvec.bits[:-1]):
            # Iterating LSB -> MSB: the more significant comparison dominates.
            bit_lt = gates.AND([-a, b])
            bit_eq = gates.IFF(a, b)
            lt = gates.OR([bit_lt, gates.AND([bit_eq, lt])])
        same_sign_lt = gates.AND([gates.IFF(l_sign, r_sign), lt])
        neg_vs_pos = gates.AND([l_sign, -r_sign])
        return gates.OR([neg_vs_pos, same_sign_lt])
