"""Cardinality constraints over boolean expressions.

These helpers operate at the expression level (returning
:class:`repro.smt.terms.BoolExpr`), so they compose with the rest of the
encoding.  ``at_most_k`` uses the sequential-counter encoding expressed with
auxiliary-free nested expressions, which is adequate for the small ``k`` and
group sizes that appear in the scheduling problems of the paper.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.smt.terms import And, BoolExpr, Not, Or, FALSE, TRUE


def at_least_one(literals: Sequence[BoolExpr]) -> BoolExpr:
    """At least one of *literals* is true."""
    return Or(*literals)


def at_most_one(literals: Sequence[BoolExpr]) -> BoolExpr:
    """At most one of *literals* is true (pairwise encoding)."""
    clauses = [Or(Not(a), Not(b)) for a, b in combinations(literals, 2)]
    return And(*clauses)


def exactly_one(literals: Sequence[BoolExpr]) -> BoolExpr:
    """Exactly one of *literals* is true."""
    return And(at_least_one(literals), at_most_one(literals))


def at_most_k(literals: Sequence[BoolExpr], k: int) -> BoolExpr:
    """At most *k* of *literals* are true.

    Uses a combinatorial encoding (every ``k+1``-subset contains a false
    literal) for small inputs and is therefore intended for the small group
    sizes found in the scheduling encodings (AOD lines, gates per stage).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    literals = list(literals)
    if k >= len(literals):
        return TRUE
    if k == 0:
        return And(*[Not(lit) for lit in literals])
    clauses = [
        Or(*[Not(lit) for lit in subset]) for subset in combinations(literals, k + 1)
    ]
    return And(*clauses)


def at_least_k(literals: Sequence[BoolExpr], k: int) -> BoolExpr:
    """At least *k* of *literals* are true."""
    literals = list(literals)
    if k <= 0:
        return TRUE
    if k > len(literals):
        return FALSE
    return at_most_k([Not(lit) for lit in literals], len(literals) - k)


def exactly_k(literals: Sequence[BoolExpr], k: int) -> BoolExpr:
    """Exactly *k* of *literals* are true."""
    return And(at_most_k(literals, k), at_least_k(literals, k))
