"""Expression AST for the finite-domain SMT layer.

Two sorts exist: booleans (:class:`BoolExpr`) and bounded integers
(:class:`IntExpr`).  Expressions are immutable trees built either through the
constructor helpers (:func:`And`, :func:`Or`, :func:`Implies`, ...) or through
Python operator overloading (``x + 1 < y``, ``a == b``, ``~p | q``).

The AST performs light constant folding in the constructors; the heavy
lifting (bit-blasting) happens in :mod:`repro.smt.encoder`.
"""

from __future__ import annotations

from typing import Sequence, Union

IntLike = Union["IntExpr", int]
BoolLike = Union["BoolExpr", bool]


# --------------------------------------------------------------------------- #
# Base classes
# --------------------------------------------------------------------------- #
class Expr:
    """Common base class for all SMT expressions."""

    __slots__ = ()

    def __hash__(self) -> int:
        return id(self)


class BoolExpr(Expr):
    """Base class for boolean-sorted expressions."""

    __slots__ = ()

    # -- logical operators ------------------------------------------------- #
    def __and__(self, other: BoolLike) -> "BoolExpr":
        return And(self, other)

    def __rand__(self, other: BoolLike) -> "BoolExpr":
        return And(other, self)

    def __or__(self, other: BoolLike) -> "BoolExpr":
        return Or(self, other)

    def __ror__(self, other: BoolLike) -> "BoolExpr":
        return Or(other, self)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    def __xor__(self, other: BoolLike) -> "BoolExpr":
        return Not(Iff(self, other))

    def implies(self, other: BoolLike) -> "BoolExpr":
        """Return ``self -> other``."""
        return Implies(self, other)

    def iff(self, other: BoolLike) -> "BoolExpr":
        """Return ``self <-> other``."""
        return Iff(self, other)

    # Equality on boolean expressions is *logical* equivalence, mirroring the
    # Z3 Python API.
    def __eq__(self, other: object) -> "BoolExpr":  # type: ignore[override]
        if isinstance(other, (BoolExpr, bool)):
            return Iff(self, other)
        return NotImplemented  # type: ignore[return-value]

    def __ne__(self, other: object) -> "BoolExpr":  # type: ignore[override]
        if isinstance(other, (BoolExpr, bool)):
            return Not(Iff(self, other))
        return NotImplemented  # type: ignore[return-value]

    __hash__ = Expr.__hash__


class IntExpr(Expr):
    """Base class for integer-sorted expressions."""

    __slots__ = ()

    def bounds(self) -> tuple[int, int]:
        """Conservative (lo, hi) bounds of the expression's value."""
        raise NotImplementedError

    # -- arithmetic -------------------------------------------------------- #
    def __add__(self, other: IntLike) -> "IntExpr":
        return IntAdd(self, _as_int(other))

    def __radd__(self, other: IntLike) -> "IntExpr":
        return IntAdd(_as_int(other), self)

    def __sub__(self, other: IntLike) -> "IntExpr":
        return IntSub(self, _as_int(other))

    def __rsub__(self, other: IntLike) -> "IntExpr":
        return IntSub(_as_int(other), self)

    def __neg__(self) -> "IntExpr":
        return IntSub(IntConst(0), self)

    def __abs__(self) -> "IntExpr":
        return IntAbs(self)

    # -- comparisons ------------------------------------------------------- #
    def __eq__(self, other: object) -> BoolExpr:  # type: ignore[override]
        if isinstance(other, (IntExpr, int)):
            return IntEq(self, _as_int(other))
        return NotImplemented  # type: ignore[return-value]

    def __ne__(self, other: object) -> BoolExpr:  # type: ignore[override]
        if isinstance(other, (IntExpr, int)):
            return Not(IntEq(self, _as_int(other)))
        return NotImplemented  # type: ignore[return-value]

    def __lt__(self, other: IntLike) -> BoolExpr:
        return IntLt(self, _as_int(other))

    def __le__(self, other: IntLike) -> BoolExpr:
        return IntLe(self, _as_int(other))

    def __gt__(self, other: IntLike) -> BoolExpr:
        return IntLt(_as_int(other), self)

    def __ge__(self, other: IntLike) -> BoolExpr:
        return IntLe(_as_int(other), self)

    __hash__ = Expr.__hash__


# --------------------------------------------------------------------------- #
# Boolean nodes
# --------------------------------------------------------------------------- #
class BoolConst(BoolExpr):
    """A boolean constant (``TRUE`` / ``FALSE``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class BoolVar(BoolExpr):
    """A free boolean variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


class NotExpr(BoolExpr):
    __slots__ = ("arg",)

    def __init__(self, arg: BoolExpr) -> None:
        self.arg = arg

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


class AndExpr(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: tuple[BoolExpr, ...]) -> None:
        self.args = args

    def __repr__(self) -> str:
        return "(and " + " ".join(repr(a) for a in self.args) + ")"


class OrExpr(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: tuple[BoolExpr, ...]) -> None:
        self.args = args

    def __repr__(self) -> str:
        return "(or " + " ".join(repr(a) for a in self.args) + ")"


class IffExpr(BoolExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: BoolExpr, right: BoolExpr) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"(iff {self.left!r} {self.right!r})"


class IteBoolExpr(BoolExpr):
    __slots__ = ("cond", "then_branch", "else_branch")

    def __init__(self, cond: BoolExpr, then_branch: BoolExpr, else_branch: BoolExpr) -> None:
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def __repr__(self) -> str:
        return f"(ite {self.cond!r} {self.then_branch!r} {self.else_branch!r})"


# --------------------------------------------------------------------------- #
# Integer nodes
# --------------------------------------------------------------------------- #
class IntConst(IntExpr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def bounds(self) -> tuple[int, int]:
        return (self.value, self.value)

    def __repr__(self) -> str:
        return str(self.value)


class IntVar(IntExpr):
    """A free integer variable with an inclusive domain ``[lo, hi]``."""

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: str, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty domain for {name}: [{lo}, {hi}]")
        self.name = name
        self.lo = int(lo)
        self.hi = int(hi)

    def bounds(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def __repr__(self) -> str:
        return self.name


class IntAdd(IntExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: IntExpr, right: IntExpr) -> None:
        self.left = left
        self.right = right

    def bounds(self) -> tuple[int, int]:
        llo, lhi = self.left.bounds()
        rlo, rhi = self.right.bounds()
        return (llo + rlo, lhi + rhi)

    def __repr__(self) -> str:
        return f"(+ {self.left!r} {self.right!r})"


class IntSub(IntExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: IntExpr, right: IntExpr) -> None:
        self.left = left
        self.right = right

    def bounds(self) -> tuple[int, int]:
        llo, lhi = self.left.bounds()
        rlo, rhi = self.right.bounds()
        return (llo - rhi, lhi - rlo)

    def __repr__(self) -> str:
        return f"(- {self.left!r} {self.right!r})"


class IntAbs(IntExpr):
    __slots__ = ("arg",)

    def __init__(self, arg: IntExpr) -> None:
        self.arg = arg

    def bounds(self) -> tuple[int, int]:
        lo, hi = self.arg.bounds()
        if lo >= 0:
            return (lo, hi)
        if hi <= 0:
            return (-hi, -lo)
        return (0, max(-lo, hi))

    def __repr__(self) -> str:
        return f"(abs {self.arg!r})"


class IteIntExpr(IntExpr):
    __slots__ = ("cond", "then_branch", "else_branch")

    def __init__(self, cond: BoolExpr, then_branch: IntExpr, else_branch: IntExpr) -> None:
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def bounds(self) -> tuple[int, int]:
        tlo, thi = self.then_branch.bounds()
        elo, ehi = self.else_branch.bounds()
        return (min(tlo, elo), max(thi, ehi))

    def __repr__(self) -> str:
        return f"(ite {self.cond!r} {self.then_branch!r} {self.else_branch!r})"


# --------------------------------------------------------------------------- #
# Atoms (integer comparisons)
# --------------------------------------------------------------------------- #
class IntEq(BoolExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: IntExpr, right: IntExpr) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"(= {self.left!r} {self.right!r})"


class IntLt(BoolExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: IntExpr, right: IntExpr) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"(< {self.left!r} {self.right!r})"


class IntLe(BoolExpr):
    __slots__ = ("left", "right")

    def __init__(self, left: IntExpr, right: IntExpr) -> None:
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"(<= {self.left!r} {self.right!r})"


# --------------------------------------------------------------------------- #
# Coercions and constructor helpers
# --------------------------------------------------------------------------- #
def _as_int(value: IntLike) -> IntExpr:
    if isinstance(value, IntExpr):
        return value
    if isinstance(value, bool):
        raise TypeError("cannot use a bool where an integer expression is expected")
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"cannot convert {value!r} to an integer expression")


def _as_bool(value: BoolLike) -> BoolExpr:
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TypeError(f"cannot convert {value!r} to a boolean expression")


def _flatten(args: Sequence[BoolLike], node_type: type) -> list[BoolExpr]:
    flat: list[BoolExpr] = []
    for arg in args:
        expr = _as_bool(arg)
        if isinstance(expr, node_type):
            flat.extend(expr.args)  # type: ignore[attr-defined]
        else:
            flat.append(expr)
    return flat


def And(*args: BoolLike) -> BoolExpr:
    """Logical conjunction with constant folding and flattening."""
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        args = tuple(args[0])
    flat = _flatten(args, AndExpr)
    kept: list[BoolExpr] = []
    for expr in flat:
        if isinstance(expr, BoolConst):
            if not expr.value:
                return FALSE
            continue
        kept.append(expr)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return AndExpr(tuple(kept))


def Or(*args: BoolLike) -> BoolExpr:
    """Logical disjunction with constant folding and flattening."""
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        args = tuple(args[0])
    flat = _flatten(args, OrExpr)
    kept: list[BoolExpr] = []
    for expr in flat:
        if isinstance(expr, BoolConst):
            if expr.value:
                return TRUE
            continue
        kept.append(expr)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return OrExpr(tuple(kept))


def Not(arg: BoolLike) -> BoolExpr:
    """Logical negation with double-negation elimination."""
    expr = _as_bool(arg)
    if isinstance(expr, BoolConst):
        return FALSE if expr.value else TRUE
    if isinstance(expr, NotExpr):
        return expr.arg
    return NotExpr(expr)


def Implies(antecedent: BoolLike, consequent: BoolLike) -> BoolExpr:
    """Logical implication."""
    a = _as_bool(antecedent)
    c = _as_bool(consequent)
    if isinstance(a, BoolConst):
        return c if a.value else TRUE
    if isinstance(c, BoolConst):
        return TRUE if c.value else Not(a)
    return Or(Not(a), c)


def Iff(left: BoolLike, right: BoolLike) -> BoolExpr:
    """Logical equivalence."""
    a = _as_bool(left)
    b = _as_bool(right)
    if isinstance(a, BoolConst):
        return b if a.value else Not(b)
    if isinstance(b, BoolConst):
        return a if b.value else Not(a)
    if a is b:
        return TRUE
    return IffExpr(a, b)


def If(cond: BoolLike, then_branch, else_branch):
    """If-then-else over either sort (the branches fix the result sort)."""
    c = _as_bool(cond)
    if isinstance(then_branch, (IntExpr, int)) and isinstance(else_branch, (IntExpr, int)):
        t = _as_int(then_branch)
        e = _as_int(else_branch)
        if isinstance(c, BoolConst):
            return t if c.value else e
        return IteIntExpr(c, t, e)
    t = _as_bool(then_branch)
    e = _as_bool(else_branch)
    if isinstance(c, BoolConst):
        return t if c.value else e
    return IteBoolExpr(c, t, e)


def Distinct(*args: IntLike) -> BoolExpr:
    """All arguments are pairwise different."""
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        args = tuple(args[0])
    exprs = [_as_int(a) for a in args]
    constraints: list[BoolExpr] = []
    for i in range(len(exprs)):
        for j in range(i + 1, len(exprs)):
            constraints.append(Not(IntEq(exprs[i], exprs[j])))
    return And(*constraints)


def free_variables(expr: Expr) -> set[Expr]:
    """Return the set of free :class:`BoolVar`/:class:`IntVar` nodes in *expr*."""
    result: set[Expr] = set()
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (BoolVar, IntVar)):
            result.add(node)
        elif isinstance(node, NotExpr):
            stack.append(node.arg)
        elif isinstance(node, (AndExpr, OrExpr)):
            stack.extend(node.args)
        elif isinstance(node, IffExpr):
            stack.extend((node.left, node.right))
        elif isinstance(node, (IteBoolExpr, IteIntExpr)):
            stack.extend((node.cond, node.then_branch, node.else_branch))
        elif isinstance(node, (IntEq, IntLt, IntLe, IntAdd, IntSub)):
            stack.extend((node.left, node.right))
        elif isinstance(node, IntAbs):
            stack.append(node.arg)
    return result
