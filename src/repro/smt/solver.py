"""The SMT solver facade.

:class:`Solver` collects constraints (boolean expressions over bounded
integer and boolean variables), bit-blasts them with
:class:`repro.smt.encoder.ExpressionEncoder` and decides them with a SAT
*backend* constructed through the :mod:`repro.sat.backend` registry
(``Solver(backend="flat" | "reference" | "dimacs-subprocess" | ...)``; the
default is the in-process flat-array CDCL core).  The interface mirrors the
subset of the Z3 Python API used by the paper's scheduling encoding:
``add``, ``check`` (with assumptions), ``model``, ``push``/``pop`` and
per-call resource limits.

Backends advertise capability flags, and the facade degrades gracefully
along them: phase hints are silently dropped on a backend without
``supports_phase_hints``, and the per-check statistics only report the
counters (and derived throughput rates) the backend actually keeps.

Two operating modes exist:

* **cold-start** (default) — every :meth:`Solver.check` bit-blasts the whole
  constraint set into a freshly constructed backend instance.  This
  supports :meth:`Solver.push`/:meth:`Solver.pop` (constraints can be
  retracted) but throws all learned clauses away between checks.
* **incremental** (``Solver(incremental=True)``) — one SAT solver and one
  expression encoder persist across checks; only constraints and variables
  added since the previous check are encoded.  Learned clauses, variable
  activities and saved phases carry over, which is what makes the
  minimum-stage search of :class:`repro.core.scheduler.SMTScheduler` cheap.
  Constraints are permanent in this mode (``push``/``pop`` raise); queries
  that must be retractable are expressed through ``check(assumptions=...)``.
"""

from __future__ import annotations

import enum
import time
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sat.backend import SatBackend, backend_info, create_backend
from repro.sat.cnf import CNF
from repro.sat.errors import TransientBackendError
from repro.sat.solver import SolveResult
from repro.smt import terms as T
from repro.smt.encoder import ExpressionEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.budget import Deadline


#: Solver statistics that are high-water gauges rather than monotone counters.
_GAUGE_STATISTICS = frozenset({"max_decision_level"})

#: Base pause of the deterministic linear retry backoff: the n-th retry of a
#: transient backend failure sleeps ``n * RETRY_BACKOFF_SECONDS`` (capped by
#: the remaining deadline, when one is set).
RETRY_BACKOFF_SECONDS = 0.05

#: How many times a transient backend failure is retried per check before it
#: escalates to the caller.
DEFAULT_BACKEND_RETRIES = 2


class CheckResult(enum.Enum):
    """Result of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def is_sat(self) -> bool:
        """True when a model was found."""
        return self is CheckResult.SAT

    def is_unsat(self) -> bool:
        """True when the constraints were proved unsatisfiable."""
        return self is CheckResult.UNSAT


class Model:
    """A satisfying assignment for the variables of a checked formula."""

    def __init__(
        self,
        bool_values: dict[int, bool],
        int_values: dict[int, int],
        by_name: dict[str, object],
    ) -> None:
        self._bool_values = bool_values
        self._int_values = int_values
        self._by_name = by_name

    def __getitem__(self, var):
        """Value of *var* (an :class:`IntVar`, :class:`BoolVar`, or name)."""
        if isinstance(var, T.BoolVar):
            if id(var) not in self._bool_values:
                raise KeyError(f"variable {var!r} not present in model")
            return self._bool_values[id(var)]
        if isinstance(var, T.IntVar):
            if id(var) not in self._int_values:
                raise KeyError(f"variable {var!r} not present in model")
            return self._int_values[id(var)]
        if isinstance(var, str):
            if var not in self._by_name:
                raise KeyError(f"no variable named {var!r} in model")
            return self[self._by_name[var]]
        raise TypeError(f"cannot look up {var!r} in a model")

    def get(self, var, default=None):
        """Like ``__getitem__`` but returning *default* for unknown variables."""
        try:
            return self[var]
        except KeyError:
            return default

    def evaluate(self, expr: T.Expr):
        """Evaluate an arbitrary expression under this model."""
        if isinstance(expr, T.BoolConst):
            return expr.value
        if isinstance(expr, T.IntConst):
            return expr.value
        if isinstance(expr, (T.BoolVar, T.IntVar)):
            return self[expr]
        if isinstance(expr, T.NotExpr):
            return not self.evaluate(expr.arg)
        if isinstance(expr, T.AndExpr):
            return all(self.evaluate(a) for a in expr.args)
        if isinstance(expr, T.OrExpr):
            return any(self.evaluate(a) for a in expr.args)
        if isinstance(expr, T.IffExpr):
            return self.evaluate(expr.left) == self.evaluate(expr.right)
        if isinstance(expr, (T.IteBoolExpr, T.IteIntExpr)):
            branch = expr.then_branch if self.evaluate(expr.cond) else expr.else_branch
            return self.evaluate(branch)
        if isinstance(expr, T.IntEq):
            return self.evaluate(expr.left) == self.evaluate(expr.right)
        if isinstance(expr, T.IntLt):
            return self.evaluate(expr.left) < self.evaluate(expr.right)
        if isinstance(expr, T.IntLe):
            return self.evaluate(expr.left) <= self.evaluate(expr.right)
        if isinstance(expr, T.IntAdd):
            return self.evaluate(expr.left) + self.evaluate(expr.right)
        if isinstance(expr, T.IntSub):
            return self.evaluate(expr.left) - self.evaluate(expr.right)
        if isinstance(expr, T.IntAbs):
            return abs(self.evaluate(expr.arg))
        raise TypeError(f"cannot evaluate {expr!r}")


class Solver:
    """Finite-domain SMT solver with a Z3-like interface."""

    def __init__(
        self,
        incremental: bool = False,
        backend: Optional[str] = None,
        backend_options: Optional[dict] = None,
        backend_retries: int = DEFAULT_BACKEND_RETRIES,
        retry_backoff: float = RETRY_BACKOFF_SECONDS,
    ) -> None:
        """*backend_options* are forwarded to
        :func:`repro.sat.backend.create_backend` (e.g. ``chrono`` /
        ``inprocessing`` for the flat core); options a backend does not
        declare are dropped there — they tune heuristics, never answers.

        *backend_retries* bounds how often a
        :class:`~repro.sat.errors.TransientBackendError` raised by a solve
        is retried within one :meth:`check` (with deterministic linear
        backoff of *retry_backoff* seconds per attempt) before escalating;
        permanent failures are never retried.
        """
        self._constraints: list[T.BoolExpr] = []
        self._scopes: list[int] = []
        self._variables: list[T.Expr] = []
        self._model: Optional[Model] = None
        self._last_statistics: dict[str, float] = {}
        self._incremental = incremental
        self._backend_retries = max(0, backend_retries)
        self._retry_backoff = max(0.0, retry_backoff)
        self._backend_retries_total = 0
        # Resolve the name eagerly so typos fail at construction time.
        self._backend_name = backend_info(backend).name
        self._backend_options = dict(backend_options or {})
        self._sat_solver: Optional[SatBackend] = None
        self._encoder: Optional[ExpressionEncoder] = None
        self._encoded_constraints = 0
        self._encoded_variables = 0
        self._pending_phase_hints: dict = {}
        if incremental:
            self._sat_solver = create_backend(
                self._backend_name, **self._backend_options
            )
            self._encoder = ExpressionEncoder(self._sat_solver)

    @property
    def incremental(self) -> bool:
        """True when the solver keeps its SAT state across checks."""
        return self._incremental

    @property
    def backend(self) -> str:
        """Registry name of the SAT backend deciding the formulas."""
        return self._backend_name

    @property
    def backend_options(self) -> dict:
        """Options forwarded to the backend factory (heuristics only)."""
        return dict(self._backend_options)

    # ------------------------------------------------------------------ #
    # Variable creation helpers
    # ------------------------------------------------------------------ #
    def bool_var(self, name: str) -> T.BoolVar:
        """Create (and register) a fresh boolean variable."""
        var = T.BoolVar(name)
        self._variables.append(var)
        return var

    def int_var(self, name: str, lo: int, hi: int) -> T.IntVar:
        """Create (and register) a fresh bounded integer variable."""
        var = T.IntVar(name, lo, hi)
        self._variables.append(var)
        return var

    # ------------------------------------------------------------------ #
    # Constraint management
    # ------------------------------------------------------------------ #
    def add(self, *constraints: T.BoolExpr | bool) -> None:
        """Assert one or more constraints."""
        for constraint in constraints:
            if isinstance(constraint, bool):
                constraint = T.TRUE if constraint else T.FALSE
            if not isinstance(constraint, T.BoolExpr):
                raise TypeError(f"constraint {constraint!r} is not a boolean expression")
            self._constraints.append(constraint)

    @property
    def assertions(self) -> tuple[T.BoolExpr, ...]:
        """The currently asserted constraints."""
        return tuple(self._constraints)

    def push(self) -> None:
        """Open a backtracking scope."""
        if self._incremental:
            raise RuntimeError(
                "push()/pop() are not supported by an incremental solver; "
                "use check(assumptions=...) for retractable constraints"
            )
        self._scopes.append(len(self._constraints))

    def pop(self) -> None:
        """Discard all constraints added since the matching :meth:`push`."""
        if self._incremental:
            raise RuntimeError(
                "push()/pop() are not supported by an incremental solver; "
                "use check(assumptions=...) for retractable constraints"
            )
        if not self._scopes:
            raise RuntimeError("pop() without matching push()")
        length = self._scopes.pop()
        del self._constraints[length:]

    # ------------------------------------------------------------------ #
    # Phase hints
    # ------------------------------------------------------------------ #
    def set_phase_hints(self, hints: dict) -> None:
        """Suggest initial values for variables to the SAT core's branching.

        *hints* maps :class:`~repro.smt.terms.BoolVar` to ``bool`` and
        :class:`~repro.smt.terms.IntVar` to ``int`` (clamped to the
        variable's domain).  Hints are *consumed by the next* :meth:`check`
        call: they seed the CDCL solver's saved phases after the delta
        encoding, steering which polarity each variable is first decided
        with.  They are pure heuristics — a hinted check returns exactly the
        same SAT/UNSAT/UNKNOWN answer as an unhinted one.
        """
        for var, value in hints.items():
            if isinstance(var, T.BoolVar):
                self._pending_phase_hints[var] = bool(value)
            elif isinstance(var, T.IntVar):
                self._pending_phase_hints[var] = int(value)
            else:
                raise TypeError(f"cannot hint a phase for {var!r}")

    def _apply_phase_hints(
        self, sat_solver: SatBackend, encoder: ExpressionEncoder
    ) -> None:
        """Translate and flush the pending hints into *sat_solver*.

        A backend that advertises ``supports_phase_hints = False`` silently
        drops them: hints are pure heuristics, so "ignored" is a sound
        degradation (answers never depend on them).
        """
        if not self._pending_phase_hints:
            return
        if not getattr(sat_solver, "supports_phase_hints", True):
            self._pending_phase_hints.clear()
            return
        phases: dict[int, bool] = {}

        def hint_literal(lit: int, value: bool) -> None:
            phases[abs(lit)] = value if lit > 0 else not value

        for var, value in self._pending_phase_hints.items():
            if isinstance(var, T.BoolVar):
                hint_literal(encoder.encode_bool(var), bool(value))
            else:
                vec = encoder.encode_int(var)
                clamped = max(var.lo, min(var.hi, value))
                raw = clamped if clamped >= 0 else clamped + (1 << vec.width)
                for i, bit in enumerate(vec.bits):
                    hint_literal(bit, bool((raw >> i) & 1))
        self._pending_phase_hints.clear()
        sat_solver.set_phase_hints(phases)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def check(
        self,
        assumptions: Iterable[T.BoolExpr] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
        deadline: Optional["Deadline"] = None,
    ) -> CheckResult:
        """Decide the asserted constraints, optionally under *assumptions*.

        *assumptions* are boolean expressions that must hold for this call
        only; they are not retained.  In incremental mode only the delta
        since the previous check is bit-blasted and the underlying SAT
        solver's learned clauses survive between calls.

        *deadline* (a :class:`~repro.core.budget.Deadline`) caps this
        check's effective limits at the remaining whole-search budget:
        *time_limit* is sliced to ``min(time_limit, remaining)``,
        *max_conflicts* shrinks proportionally, and an already-expired
        deadline returns :data:`CheckResult.UNKNOWN` without touching the
        backend (the pending constraint delta stays pending).
        """
        if deadline is not None:
            if deadline.expired():
                self._model = None
                self._last_statistics = {
                    **self._last_statistics,
                    "deadline_expired": 1.0,
                    "backend_retries": float(self._backend_retries_total),
                }
                return CheckResult.UNKNOWN
            max_conflicts = deadline.compose_conflicts(max_conflicts, time_limit)
            time_limit = deadline.slice(time_limit)
        start = time.monotonic()
        if self._incremental:
            sat_solver = self._sat_solver
            encoder = self._encoder
            new_variables = self._variables[self._encoded_variables :]
            new_constraints = self._constraints[self._encoded_constraints :]
        else:
            sat_solver = create_backend(self._backend_name, **self._backend_options)
            encoder = ExpressionEncoder(sat_solver)
            new_variables = self._variables
            new_constraints = self._constraints
        # Touch every (new) registered variable so that it is present in the
        # model even when no constraint mentions it.
        for var in new_variables:
            if isinstance(var, T.BoolVar):
                encoder.encode_bool(var)
            elif isinstance(var, T.IntVar):
                encoder.encode_int(var)
        for constraint in new_constraints:
            encoder.assert_expr(constraint)
        if self._incremental:
            self._encoded_variables = len(self._variables)
            self._encoded_constraints = len(self._constraints)
        self._apply_phase_hints(sat_solver, encoder)
        assumption_literals = [encoder.encode_bool(a) for a in assumptions]
        if assumption_literals and not getattr(
            sat_solver, "supports_assumptions", True
        ):
            # Unlike phase hints, assumptions are semantics: a backend that
            # ignored them would decide the unconstrained formula and
            # silently certify wrong optima.  Fail loudly instead.
            raise RuntimeError(
                f"SAT backend {self._backend_name!r} does not support "
                "assumptions; use an assumption-capable backend for "
                "check(assumptions=...)"
            )
        encode_time = time.monotonic() - start
        stats_before = sat_solver.statistics()
        result = self._solve_with_retries(
            sat_solver, assumption_literals, max_conflicts, time_limit, deadline
        )
        solve_time = time.monotonic() - start - encode_time
        stats_after = sat_solver.statistics()
        # Monotone counters are reported as per-check deltas; gauges
        # (high-water marks) would be meaningless as differences and are
        # reported as-is.  Only counters the backend actually keeps appear —
        # a backend without a propagation counter simply reports no
        # propagation delta and no derived rate (instead of zeros that look
        # like a stalled solver).
        deltas = {
            f"sat_{k}": v if k in _GAUGE_STATISTICS else v - stats_before.get(k, 0)
            for k, v in stats_after.items()
        }
        self._last_statistics = {
            "encode_seconds": encode_time,
            "solve_seconds": solve_time,
            "sat_variables": sat_solver.num_vars,
            "sat_clauses": sat_solver.num_clauses,
            "backend_retries": float(self._backend_retries_total),
            **deltas,
        }
        # Per-check throughput of the CDCL hot loop, derived from the deltas
        # (the SolverStatistics rates are lifetime averages).  The denominator
        # is floored at 1 ns: trivially-fast probes can measure a wall-clock
        # small enough that the division overflows to inf, which would poison
        # the throughput fields consumed by bench-trend.
        for rate, counter in (
            ("sat_propagations_per_second", "sat_propagations"),
            ("sat_conflicts_per_second", "sat_conflicts"),
        ):
            if counter in deltas:
                self._last_statistics[rate] = (
                    deltas[counter] / max(solve_time, 1e-9) if solve_time > 0 else 0.0
                )
        if result is SolveResult.UNSAT:
            self._model = None
            return CheckResult.UNSAT
        if result is SolveResult.UNKNOWN:
            self._model = None
            return CheckResult.UNKNOWN
        self._model = self._extract_model(sat_solver, encoder)
        return CheckResult.SAT

    def _solve_with_retries(
        self,
        sat_solver: SatBackend,
        assumption_literals: list[int],
        max_conflicts: Optional[int],
        time_limit: Optional[float],
        deadline: Optional["Deadline"],
    ) -> SolveResult:
        """Run one solve, retrying transient backend failures with backoff.

        A transient failure leaves the backend's clause database intact by
        contract, so the retry re-solves the identical formula.  Retries
        are bounded (``backend_retries`` per check) and deterministic
        (linear backoff, no jitter); the pause never overruns the deadline.
        Permanent failures and exhausted retry budgets propagate to the
        caller, which degrades to ``termination="backend-error"``.
        """
        attempt = 0
        while True:
            try:
                return sat_solver.solve(
                    assumptions=assumption_literals,
                    max_conflicts=max_conflicts,
                    time_limit=time_limit,
                )
            except TransientBackendError:
                attempt += 1
                if attempt > self._backend_retries:
                    raise
                if deadline is not None and deadline.expired():
                    raise
                self._backend_retries_total += 1
                pause = attempt * self._retry_backoff
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None:
                        pause = min(pause, remaining)
                if pause > 0:
                    time.sleep(pause)

    @property
    def backend_retries(self) -> int:
        """Cumulative transient-failure retries across this solver's checks."""
        return self._backend_retries_total

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent :meth:`check` call."""
        return dict(self._last_statistics)

    def to_cnf(self) -> CNF:
        """Bit-blast the asserted constraints into a standalone CNF snapshot.

        The snapshot uses a fresh encoder emitting straight into a
        :class:`~repro.sat.cnf.CNF` container (the encoder is solver-agnostic
        — any clause sink works), so it is independent of any incremental
        state, of the configured backend, and safe to call at any time —
        useful for exporting an instance to DIMACS (debugging,
        external-solver experiments) and for the propagation-throughput
        microbench.
        """
        cnf = CNF()
        encoder = ExpressionEncoder(cnf)
        for var in self._variables:
            if isinstance(var, T.BoolVar):
                encoder.encode_bool(var)
            elif isinstance(var, T.IntVar):
                encoder.encode_int(var)
        for constraint in self._constraints:
            encoder.assert_expr(constraint)
        return cnf

    def model(self) -> Model:
        """Return the model found by the last satisfiable :meth:`check`."""
        if self._model is None:
            raise RuntimeError("no model available; last check() was not SAT")
        return self._model

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _extract_model(self, sat_solver: SatBackend, encoder: ExpressionEncoder) -> Model:
        assignment = sat_solver.model()

        def literal_value(lit: int) -> bool:
            value = assignment.get(abs(lit), False)
            return value if lit > 0 else not value

        bool_values: dict[int, bool] = {}
        int_values: dict[int, int] = {}
        by_name: dict[str, object] = {}
        for var in self._variables:
            if isinstance(var, T.BoolVar):
                lit = encoder.bool_var_literal(var)
                bool_values[id(var)] = literal_value(lit) if lit is not None else False
                by_name[var.name] = var
            elif isinstance(var, T.IntVar):
                vec = encoder.int_var_bits(var)
                if vec is None:
                    int_values[id(var)] = var.lo
                else:
                    raw = 0
                    for i, bit in enumerate(vec.bits):
                        if literal_value(bit):
                            raw |= 1 << i
                    if raw >= 1 << (vec.width - 1):
                        raw -= 1 << vec.width
                    int_values[id(var)] = raw
                by_name[var.name] = var
        return Model(bool_values, int_values, by_name)
