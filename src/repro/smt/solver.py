"""The SMT solver facade.

:class:`Solver` collects constraints (boolean expressions over bounded
integer and boolean variables), bit-blasts them with
:class:`repro.smt.encoder.ExpressionEncoder` and decides them with the CDCL
solver from :mod:`repro.sat`.  The interface mirrors the subset of the Z3
Python API used by the paper's scheduling encoding: ``add``, ``check``,
``model``, ``push``/``pop`` and per-call resource limits.
"""

from __future__ import annotations

import enum
import time
from typing import Iterable, Optional

from repro.sat.solver import CDCLSolver, SolveResult
from repro.smt import terms as T
from repro.smt.encoder import ExpressionEncoder


class CheckResult(enum.Enum):
    """Result of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def is_sat(self) -> bool:
        """True when a model was found."""
        return self is CheckResult.SAT

    def is_unsat(self) -> bool:
        """True when the constraints were proved unsatisfiable."""
        return self is CheckResult.UNSAT


class Model:
    """A satisfying assignment for the variables of a checked formula."""

    def __init__(
        self,
        bool_values: dict[int, bool],
        int_values: dict[int, int],
        by_name: dict[str, object],
    ) -> None:
        self._bool_values = bool_values
        self._int_values = int_values
        self._by_name = by_name

    def __getitem__(self, var):
        """Value of *var* (an :class:`IntVar`, :class:`BoolVar`, or name)."""
        if isinstance(var, T.BoolVar):
            if id(var) not in self._bool_values:
                raise KeyError(f"variable {var!r} not present in model")
            return self._bool_values[id(var)]
        if isinstance(var, T.IntVar):
            if id(var) not in self._int_values:
                raise KeyError(f"variable {var!r} not present in model")
            return self._int_values[id(var)]
        if isinstance(var, str):
            if var not in self._by_name:
                raise KeyError(f"no variable named {var!r} in model")
            return self[self._by_name[var]]
        raise TypeError(f"cannot look up {var!r} in a model")

    def get(self, var, default=None):
        """Like ``__getitem__`` but returning *default* for unknown variables."""
        try:
            return self[var]
        except KeyError:
            return default

    def evaluate(self, expr: T.Expr):
        """Evaluate an arbitrary expression under this model."""
        if isinstance(expr, T.BoolConst):
            return expr.value
        if isinstance(expr, T.IntConst):
            return expr.value
        if isinstance(expr, (T.BoolVar, T.IntVar)):
            return self[expr]
        if isinstance(expr, T.NotExpr):
            return not self.evaluate(expr.arg)
        if isinstance(expr, T.AndExpr):
            return all(self.evaluate(a) for a in expr.args)
        if isinstance(expr, T.OrExpr):
            return any(self.evaluate(a) for a in expr.args)
        if isinstance(expr, T.IffExpr):
            return self.evaluate(expr.left) == self.evaluate(expr.right)
        if isinstance(expr, (T.IteBoolExpr, T.IteIntExpr)):
            branch = expr.then_branch if self.evaluate(expr.cond) else expr.else_branch
            return self.evaluate(branch)
        if isinstance(expr, T.IntEq):
            return self.evaluate(expr.left) == self.evaluate(expr.right)
        if isinstance(expr, T.IntLt):
            return self.evaluate(expr.left) < self.evaluate(expr.right)
        if isinstance(expr, T.IntLe):
            return self.evaluate(expr.left) <= self.evaluate(expr.right)
        if isinstance(expr, T.IntAdd):
            return self.evaluate(expr.left) + self.evaluate(expr.right)
        if isinstance(expr, T.IntSub):
            return self.evaluate(expr.left) - self.evaluate(expr.right)
        if isinstance(expr, T.IntAbs):
            return abs(self.evaluate(expr.arg))
        raise TypeError(f"cannot evaluate {expr!r}")


class Solver:
    """Finite-domain SMT solver with a Z3-like interface."""

    def __init__(self) -> None:
        self._constraints: list[T.BoolExpr] = []
        self._scopes: list[int] = []
        self._variables: list[T.Expr] = []
        self._model: Optional[Model] = None
        self._last_statistics: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Variable creation helpers
    # ------------------------------------------------------------------ #
    def bool_var(self, name: str) -> T.BoolVar:
        """Create (and register) a fresh boolean variable."""
        var = T.BoolVar(name)
        self._variables.append(var)
        return var

    def int_var(self, name: str, lo: int, hi: int) -> T.IntVar:
        """Create (and register) a fresh bounded integer variable."""
        var = T.IntVar(name, lo, hi)
        self._variables.append(var)
        return var

    # ------------------------------------------------------------------ #
    # Constraint management
    # ------------------------------------------------------------------ #
    def add(self, *constraints: T.BoolExpr | bool) -> None:
        """Assert one or more constraints."""
        for constraint in constraints:
            if isinstance(constraint, bool):
                constraint = T.TRUE if constraint else T.FALSE
            if not isinstance(constraint, T.BoolExpr):
                raise TypeError(f"constraint {constraint!r} is not a boolean expression")
            self._constraints.append(constraint)

    @property
    def assertions(self) -> tuple[T.BoolExpr, ...]:
        """The currently asserted constraints."""
        return tuple(self._constraints)

    def push(self) -> None:
        """Open a backtracking scope."""
        self._scopes.append(len(self._constraints))

    def pop(self) -> None:
        """Discard all constraints added since the matching :meth:`push`."""
        if not self._scopes:
            raise RuntimeError("pop() without matching push()")
        length = self._scopes.pop()
        del self._constraints[length:]

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def check(
        self,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> CheckResult:
        """Decide the conjunction of all asserted constraints."""
        start = time.monotonic()
        sat_solver = CDCLSolver()
        encoder = ExpressionEncoder(sat_solver)
        # Touch every registered variable so that it is present in the model
        # even when no constraint mentions it.
        for var in self._variables:
            if isinstance(var, T.BoolVar):
                encoder.encode_bool(var)
            elif isinstance(var, T.IntVar):
                encoder.encode_int(var)
        for constraint in self._constraints:
            encoder.assert_expr(constraint)
        encode_time = time.monotonic() - start
        result = sat_solver.solve(max_conflicts=max_conflicts, time_limit=time_limit)
        solve_time = time.monotonic() - start - encode_time
        self._last_statistics = {
            "encode_seconds": encode_time,
            "solve_seconds": solve_time,
            "sat_variables": sat_solver.num_vars,
            "sat_clauses": sat_solver.num_clauses,
            **{f"sat_{k}": v for k, v in sat_solver.stats.as_dict().items()},
        }
        if result is SolveResult.UNSAT:
            self._model = None
            return CheckResult.UNSAT
        if result is SolveResult.UNKNOWN:
            self._model = None
            return CheckResult.UNKNOWN
        self._model = self._extract_model(sat_solver, encoder)
        return CheckResult.SAT

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent :meth:`check` call."""
        return dict(self._last_statistics)

    def model(self) -> Model:
        """Return the model found by the last satisfiable :meth:`check`."""
        if self._model is None:
            raise RuntimeError("no model available; last check() was not SAT")
        return self._model

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _extract_model(self, sat_solver: CDCLSolver, encoder: ExpressionEncoder) -> Model:
        assignment = sat_solver.model()

        def literal_value(lit: int) -> bool:
            value = assignment.get(abs(lit), False)
            return value if lit > 0 else not value

        bool_values: dict[int, bool] = {}
        int_values: dict[int, int] = {}
        by_name: dict[str, object] = {}
        for var in self._variables:
            if isinstance(var, T.BoolVar):
                lit = encoder.bool_var_literal(var)
                bool_values[id(var)] = literal_value(lit) if lit is not None else False
                by_name[var.name] = var
            elif isinstance(var, T.IntVar):
                vec = encoder.int_var_bits(var)
                if vec is None:
                    int_values[id(var)] = var.lo
                else:
                    raw = 0
                    for i, bit in enumerate(vec.bits):
                        if literal_value(bit):
                            raw |= 1 << i
                    if raw >= 1 << (vec.width - 1):
                        raw -= 1 << vec.width
                    int_values[id(var)] = raw
                by_name[var.name] = var
        return Model(bool_values, int_values, by_name)
