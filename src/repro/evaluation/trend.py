"""Commit-over-commit bench trend comparison and regression gate.

Five PRs of perf work went untracked because the CI regression jobs only
pinned hand-picked cell counts for two instances.  This module is the
general gate: it compares two ``BENCH_*.json`` documents (schema v5+)
cell by cell and reports the deltas that matter for the solver's
trajectory —

* **wall-clock** per cell (``seconds``),
* **probe count** per certified SMT cell (``num_horizons``: how many
  stage horizons the strategy asked the solver to decide — fully
  deterministic for the non-racing strategies, so any increase is a real
  search regression, not noise),
* **propagation throughput** of the deciding SAT backend
  (``sat_propagations_per_second``, schema v6 payloads only; reported,
  not gated — it is a per-probe sample).

The default gate trips (:attr:`TrendReport.ok` is ``False``) when

* a cell certified in both runs probes **more horizons** than before,
* a cell's wall-clock grows by more than ``wall_clock_threshold``
  (default **+25 %**) and the cell is slow enough to measure
  (``min_seconds`` floor filters timing noise on near-instant cells),
* a cell that was ``ok`` stops being ``ok`` (timeout/error/failed — or a
  schema-v7 SMT cell that degrades to ``termination: "deadline"``, the
  cooperative form of a timeout), or
* a cell disappears entirely (coverage loss), unless *allow_missing*.

``repro-nasp bench-trend old.json new.json`` wraps this with a
human-readable table, an optional machine-readable ``BENCH_TREND.json``
and Markdown summary, and a non-zero exit code when the gate trips — CI
runs it against the committed baseline in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional

#: Versions old enough to lack the fields the comparison needs.
_MIN_SCHEMA_VERSION = 5

#: Default relative wall-clock growth beyond which a cell regresses.
DEFAULT_WALL_CLOCK_THRESHOLD = 0.25

#: Default per-cell seconds floor below which wall-clock noise is ignored.
DEFAULT_MIN_SECONDS = 0.05


@dataclass
class CellDelta:
    """Per-cell comparison of one bench cell across two runs."""

    name: str
    status_old: str
    status_new: str
    seconds_old: float
    seconds_new: float
    #: ``seconds_new / seconds_old`` (None when the old time is ~0).
    seconds_ratio: Optional[float]
    horizons_old: Optional[int] = None
    horizons_new: Optional[int] = None
    throughput_old: Optional[float] = None
    throughput_new: Optional[float] = None
    #: Both runs certified an optimum (probe counts are comparable).
    certified: bool = False
    #: Human-readable regression messages for this cell (empty: clean).
    regressions: list[str] = field(default_factory=list)


@dataclass
class TrendReport:
    """Outcome of :func:`compare_documents`."""

    cells: list[CellDelta]
    #: Cells present in the old run but absent from the new one.
    missing: list[str]
    #: Cells new in the new run (informational — suites may grow).
    added: list[str]
    #: Aggregate totals and ratios across the compared cells.
    aggregate: dict
    #: Every regression message, cell-level and coverage-level.
    regressions: list[str]
    #: Gate configuration, recorded for reproducibility.
    thresholds: dict

    @property
    def ok(self) -> bool:
        """True when no regression tripped the gate."""
        return not self.regressions

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``BENCH_TREND.json`` artifact)."""
        return {
            "ok": self.ok,
            "thresholds": self.thresholds,
            "aggregate": self.aggregate,
            "regressions": self.regressions,
            "missing": self.missing,
            "added": self.added,
            "cells": [asdict(cell) for cell in self.cells],
        }


def _certified(payload: dict) -> bool:
    return bool(payload.get("found") and payload.get("optimal"))


def _effective_status(entry: dict) -> str:
    """The gate-relevant status of a cell.

    Schema v7 SMT cells that hit the harness budget end *cooperatively*:
    the worker returns a degraded payload with ``termination: "deadline"``
    and the harness records ``status: "ok"`` (the payload is valid — best
    known witness plus a sound interval).  For the ok→non-ok gate those
    cells count like timeouts: a cell that used to certify within budget
    and now runs out of time is a regression, however gracefully it
    degraded.
    """
    status = entry.get("status", "?")
    if status == "ok" and entry.get("payload", {}).get("termination") == "deadline":
        return "deadline"
    return status


def _index_results(document: dict) -> dict[str, dict]:
    entries: dict[str, dict] = {}
    for entry in document.get("results", []):
        entries[entry["name"]] = entry
    return entries


def compare_documents(
    old_document: dict,
    new_document: dict,
    wall_clock_threshold: float = DEFAULT_WALL_CLOCK_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    allow_missing: bool = False,
) -> TrendReport:
    """Compare two bench documents cell by cell and evaluate the gate.

    Raises ``ValueError`` when either document predates schema v5 (its
    payloads lack the fields the comparison is defined over) or when the
    runs share no cells at all.
    """
    for label, document in (("old", old_document), ("new", new_document)):
        version = document.get("version", 0)
        if version < _MIN_SCHEMA_VERSION:
            raise ValueError(
                f"the {label} document is schema v{version}; bench-trend "
                f"requires v{_MIN_SCHEMA_VERSION}+ payloads"
            )
    old_entries = _index_results(old_document)
    new_entries = _index_results(new_document)
    shared = [name for name in old_entries if name in new_entries]
    if not shared:
        raise ValueError("the two documents share no cells to compare")
    missing = sorted(name for name in old_entries if name not in new_entries)
    added = sorted(name for name in new_entries if name not in old_entries)

    cells: list[CellDelta] = []
    regressions: list[str] = []
    totals = {
        "seconds_old": 0.0,
        "seconds_new": 0.0,
        "horizons_old": 0,
        "horizons_new": 0,
        "cells_compared": 0,
        "cells_certified": 0,
        "cells_regressed": 0,
    }
    throughput_ratios: list[float] = []
    for name in sorted(shared):
        old, new = old_entries[name], new_entries[name]
        old_payload, new_payload = old.get("payload", {}), new.get("payload", {})
        seconds_old = float(old.get("seconds", 0.0))
        seconds_new = float(new.get("seconds", 0.0))
        ratio = seconds_new / seconds_old if seconds_old > 0 else None
        certified = _certified(old_payload) and _certified(new_payload)
        delta = CellDelta(
            name=name,
            status_old=_effective_status(old),
            status_new=_effective_status(new),
            seconds_old=seconds_old,
            seconds_new=seconds_new,
            seconds_ratio=ratio,
            horizons_old=old_payload.get("num_horizons"),
            horizons_new=new_payload.get("num_horizons"),
            throughput_old=old_payload.get("sat_propagations_per_second"),
            throughput_new=new_payload.get("sat_propagations_per_second"),
            certified=certified,
        )
        if delta.status_old == "ok" and delta.status_new != "ok":
            delta.regressions.append(
                f"{name}: was ok, now {delta.status_new}"
                + (f" ({new.get('error')})" if new.get("error") else "")
            )
        if certified:
            totals["cells_certified"] += 1
            if (
                delta.horizons_old is not None
                and delta.horizons_new is not None
                and delta.horizons_new > delta.horizons_old
            ):
                delta.regressions.append(
                    f"{name}: probe count rose "
                    f"{delta.horizons_old} -> {delta.horizons_new}"
                )
            if (
                ratio is not None
                and ratio > 1.0 + wall_clock_threshold
                and max(seconds_old, seconds_new) >= min_seconds
            ):
                delta.regressions.append(
                    f"{name}: wall-clock {seconds_old:.3f}s -> "
                    f"{seconds_new:.3f}s (x{ratio:.2f}, threshold "
                    f"x{1.0 + wall_clock_threshold:.2f})"
                )
        totals["seconds_old"] += seconds_old
        totals["seconds_new"] += seconds_new
        if delta.horizons_old is not None:
            totals["horizons_old"] += delta.horizons_old
        if delta.horizons_new is not None:
            totals["horizons_new"] += delta.horizons_new
        if delta.throughput_old and delta.throughput_new:
            throughput_ratios.append(delta.throughput_new / delta.throughput_old)
        totals["cells_compared"] += 1
        if delta.regressions:
            totals["cells_regressed"] += 1
            regressions.extend(delta.regressions)
        cells.append(delta)
    if missing and not allow_missing:
        regressions.append(
            f"{len(missing)} cell(s) from the old run are missing: "
            + ", ".join(missing[:5])
            + ("…" if len(missing) > 5 else "")
        )
    aggregate = dict(totals)
    aggregate["seconds_ratio"] = (
        totals["seconds_new"] / totals["seconds_old"]
        if totals["seconds_old"] > 0
        else None
    )
    aggregate["throughput_ratio_mean"] = (
        sum(throughput_ratios) / len(throughput_ratios)
        if throughput_ratios
        else None
    )
    aggregate["cells_missing"] = len(missing)
    aggregate["cells_added"] = len(added)
    return TrendReport(
        cells=cells,
        missing=missing,
        added=added,
        aggregate=aggregate,
        regressions=regressions,
        thresholds={
            "wall_clock_threshold": wall_clock_threshold,
            "min_seconds": min_seconds,
            "allow_missing": allow_missing,
        },
    )


def compare_paths(
    old_path: str | os.PathLike,
    new_path: str | os.PathLike,
    **kwargs: object,
) -> TrendReport:
    """:func:`compare_documents` over two persisted bench JSON files."""
    with open(old_path, encoding="utf-8") as handle:
        old_document = json.load(handle)
    with open(new_path, encoding="utf-8") as handle:
        new_document = json.load(handle)
    return compare_documents(old_document, new_document, **kwargs)


def _format_ratio(ratio: Optional[float]) -> str:
    return "-" if ratio is None else f"x{ratio:.2f}"


def _format_horizons(old: Optional[int], new: Optional[int]) -> str:
    if old is None and new is None:
        return "-"
    return f"{'-' if old is None else old}->{'-' if new is None else new}"


def format_trend(report: TrendReport, max_cells: Optional[int] = None) -> str:
    """Human-readable per-cell and aggregate delta table.

    *max_cells* truncates the per-cell listing (regressed cells are always
    shown); the aggregate block is always complete.
    """
    lines = [
        f"{'Cell':<46}{'Status':>16}{'Time[s]':>17}{'x':>7}{'Probes':>9}"
    ]
    shown = 0
    hidden = 0
    for cell in report.cells:
        interesting = bool(cell.regressions)
        if max_cells is not None and shown >= max_cells and not interesting:
            hidden += 1
            continue
        status = (
            cell.status_new
            if cell.status_old == cell.status_new
            else f"{cell.status_old}->{cell.status_new}"
        )
        flag = "  << REGRESSED" if cell.regressions else ""
        lines.append(
            f"{cell.name:<46}{status:>16}"
            f"{cell.seconds_old:>8.2f}{cell.seconds_new:>9.2f}"
            f"{_format_ratio(cell.seconds_ratio):>7}"
            f"{_format_horizons(cell.horizons_old, cell.horizons_new):>9}"
            f"{flag}"
        )
        shown += 1
    if hidden:
        lines.append(f"… {hidden} unremarkable cell(s) not shown")
    aggregate = report.aggregate
    lines.append("")
    lines.append(
        f"aggregate: {aggregate['cells_compared']} cells compared "
        f"({aggregate['cells_certified']} certified in both runs, "
        f"{aggregate['cells_missing']} missing, {aggregate['cells_added']} new)"
    )
    lines.append(
        f"  wall-clock {aggregate['seconds_old']:.2f}s -> "
        f"{aggregate['seconds_new']:.2f}s "
        f"({_format_ratio(aggregate['seconds_ratio'])})"
    )
    lines.append(
        f"  probes     {aggregate['horizons_old']} -> "
        f"{aggregate['horizons_new']}"
    )
    if aggregate["throughput_ratio_mean"] is not None:
        lines.append(
            "  propagation throughput "
            f"{_format_ratio(aggregate['throughput_ratio_mean'])} (mean)"
        )
    if report.regressions:
        lines.append("")
        lines.append(f"REGRESSIONS ({len(report.regressions)}):")
        lines.extend(f"  - {message}" for message in report.regressions)
    else:
        lines.append("")
        lines.append("no regressions: the trend gate passes")
    return "\n".join(lines)


def format_trend_markdown(report: TrendReport) -> str:
    """GitHub-flavoured Markdown summary (for ``$GITHUB_STEP_SUMMARY``)."""
    aggregate = report.aggregate
    verdict = "✅ passes" if report.ok else "❌ **FAILS**"
    lines = [
        "## Bench trend gate",
        "",
        f"Verdict: {verdict}",
        "",
        "| metric | old | new | delta |",
        "| --- | ---: | ---: | ---: |",
        (
            f"| wall-clock (s) | {aggregate['seconds_old']:.2f} | "
            f"{aggregate['seconds_new']:.2f} | "
            f"{_format_ratio(aggregate['seconds_ratio'])} |"
        ),
        (
            f"| solver probes | {aggregate['horizons_old']} | "
            f"{aggregate['horizons_new']} | "
            f"{aggregate['horizons_new'] - aggregate['horizons_old']:+d} |"
        ),
        (
            f"| cells compared | {aggregate['cells_compared']} | "
            f"certified {aggregate['cells_certified']} | "
            f"regressed {aggregate['cells_regressed']} |"
        ),
    ]
    if aggregate["throughput_ratio_mean"] is not None:
        lines.append(
            "| propagation throughput | | | "
            f"{_format_ratio(aggregate['throughput_ratio_mean'])} |"
        )
    if report.regressions:
        lines.append("")
        lines.append("### Regressions")
        lines.extend(f"- {message}" for message in report.regressions)
    return "\n".join(lines) + "\n"


def save_trend(report: TrendReport, path: str | os.PathLike) -> None:
    """Persist the machine-readable trend artifact (``BENCH_TREND.json``)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
