"""Reproduction of Table I (layout comparison).

For every evaluation code and every architecture layout the harness
generates the state-preparation circuit, schedules it, and reports the same
columns as the paper: scheduling time, number of Rydberg stages (#R), number
of transfer stages (#T), execution time on the architecture, and the
approximated success probability (ASP).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.arch import evaluation_layouts
from repro.arch.architecture import ZonedArchitecture
from repro.core.budget import Deadline
from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.core.problem import SchedulingProblem
from repro.core.schedule import Schedule
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.metrics import approximate_success_probability
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit

#: Display names used by the paper's Table I, keyed by registry name.
CODE_LABELS = {
    "steane": "[[7,1,3]] Steane",
    "surface": "[[9,1,3]] Surface",
    "shor": "[[9,1,3]] Shor",
    "hamming": "[[15,7,3]] Hamming",
    "tetrahedral": "[[15,1,3]] Tetrahedral",
    "honeycomb": "[[17,1,5]] Honeycomb",
}


@dataclass
class LayoutResult:
    """The Table I columns for one (code, layout) cell."""

    layout: str
    scheduling_seconds: float
    num_rydberg_stages: int
    num_transfer_stages: int
    num_transfer_operations: int
    execution_time_ms: float
    asp: float
    unshielded_idle: int
    schedule: Schedule = field(repr=False, default=None)


@dataclass
class Table1Row:
    """One row of Table I: a code evaluated on every layout."""

    code: str
    label: str
    num_qubits: int
    num_cz_gates: int
    layouts: dict[str, LayoutResult] = field(default_factory=dict)


def schedule_with_structured_backend(
    architecture: ZonedArchitecture,
    prep: StatePrepCircuit,
) -> Schedule:
    """Default scheduling backend for the full-size Table I instances."""
    problem = SchedulingProblem.from_circuit(
        architecture, prep, metadata={"code": prep.name}
    )
    return StructuredScheduler().schedule(problem)


def run_table1_row(
    code_name: str,
    layouts: dict[str, ZonedArchitecture] | None = None,
    backend: Callable[[ZonedArchitecture, StatePrepCircuit], Schedule] | None = None,
    validate: bool = True,
    deadline: Optional[Deadline] = None,
) -> Table1Row:
    """Evaluate one code on every layout.

    *deadline* makes the per-layout loop cooperatively preemptible: the
    budget is checked before every cell and expiry raises
    :class:`~repro.core.budget.DeadlineExceeded` (how the bench harness's
    serial ``--timeout`` interrupts a row mid-flight).
    """
    layouts = layouts or evaluation_layouts()
    backend = backend or schedule_with_structured_backend
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    row = Table1Row(
        code=code_name,
        label=CODE_LABELS.get(code_name, code.name),
        num_qubits=code.num_qubits,
        num_cz_gates=prep.num_cz_gates,
    )
    for layout_name, architecture in layouts.items():
        if deadline is not None:
            deadline.check(f"table1 {code_name}/{layout_name}")
        start = time.monotonic()
        schedule = backend(architecture, prep)
        elapsed = time.monotonic() - start
        if validate:
            validate_schedule(schedule, require_shielding=architecture.has_storage)
        breakdown = approximate_success_probability(schedule, prep)
        row.layouts[layout_name] = LayoutResult(
            layout=layout_name,
            scheduling_seconds=elapsed,
            num_rydberg_stages=schedule.num_rydberg_stages,
            num_transfer_stages=schedule.num_transfer_stages,
            num_transfer_operations=schedule.num_transfer_operations,
            execution_time_ms=breakdown.timing.total_ms,
            asp=breakdown.asp,
            unshielded_idle=breakdown.unshielded_idle_count,
            schedule=schedule,
        )
    return row


def run_table1(
    codes: Sequence[str] | None = None,
    layouts: dict[str, ZonedArchitecture] | None = None,
    backend: Callable[[ZonedArchitecture, StatePrepCircuit], Schedule] | None = None,
    validate: bool = True,
    deadline: Optional[Deadline] = None,
) -> list[Table1Row]:
    """Evaluate all (or the given) codes on every layout."""
    code_names = list(codes) if codes is not None else available_codes()
    return [
        run_table1_row(
            code,
            layouts=layouts,
            backend=backend,
            validate=validate,
            deadline=deadline,
        )
        for code in code_names
    ]


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Format rows in the spirit of the paper's Table I."""
    layout_names = list(rows[0].layouts) if rows else []
    header = f"{'Code':<24}{'#CZ':>5}"
    for name in layout_names:
        header += f" | {name:^34}"
    sub_header = " " * 29
    for _ in layout_names:
        sub_header += f" | {'time[s]':>8}{'#R':>4}{'#T':>4}{'t[ms]':>8}{'ASP':>8}"
    lines = [header, sub_header, "-" * len(sub_header)]
    for row in rows:
        line = f"{row.label:<24}{row.num_cz_gates:>5}"
        for name in layout_names:
            cell = row.layouts[name]
            line += (
                f" | {cell.scheduling_seconds:>8.2f}{cell.num_rydberg_stages:>4}"
                f"{cell.num_transfer_stages:>4}{cell.execution_time_ms:>8.2f}{cell.asp:>8.3f}"
            )
        lines.append(line)
    return "\n".join(lines)
