"""Parallel batch evaluation engine.

The reproduction's evaluation surfaces (Table I cells, Figure 4 bars,
exploration sweeps, and the exact-SMT benchmark instances) are all
embarrassingly parallel: every instance is an independent (circuit,
architecture, backend) triple.  This module turns each surface into a list
of picklable :class:`BenchInstance` specs and fans them out across worker
processes with :mod:`concurrent.futures`, collecting per-instance wall-clock,
status (``ok`` / ``timeout`` / ``error``) and a JSON-serialisable payload.

Entry points
------------

* :func:`build_suite` — construct the instance list for a named suite
  (``smt``, ``table1``, ``exploration`` or ``all``).
* :func:`run_batch` — execute instances serially (``jobs <= 1``) or on a
  process pool, with an optional per-instance timeout, and optionally
  persist the results as JSON.
* ``repro-nasp bench`` — the CLI wrapper around both (see
  :mod:`repro.cli`).

The timeout is enforced on two levels: SMT specs forward it to the solver's
anytime time limit (the worker stops by itself, in serial and parallel mode
alike), and in parallel mode the harness additionally abandons any instance
whose *execution* exceeds the budget — its result is recorded as
``timeout`` and the straggler worker processes are terminated when the
batch finishes.  Caveat: specs without a cooperative solver limit (table1,
exploration) cannot be interrupted in serial mode; run those with
``jobs >= 2`` if a hard budget matters.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

#: The reduced-architecture instances exercised by the SMT suite; small
#: enough for the pure-Python SAT core, structurally identical to the paper's
#: full encoding.  Shared with ``benchmarks/test_bench_smt.py``.
SMT_INSTANCES: dict[str, tuple[int, list[tuple[int, int]]]] = {
    "single-gate": (2, [(0, 1)]),
    "chain-2": (3, [(0, 1), (1, 2)]),
    "disjoint-pairs": (4, [(0, 1), (2, 3)]),
    "triangle": (3, [(0, 1), (1, 2), (0, 2)]),
    "ring-4": (4, [(0, 1), (1, 2), (2, 3), (0, 3)]),
}

#: Layout axes of the SMT suite.  ``"none-shielded"`` is the storage-less
#: layout with ``shielding=True`` forced: idle qubits cannot leave the
#: all-covering entangling zone there, so only instances whose beams keep
#: every qubit busy are feasible — the suite pairs the axis with
#: :data:`AIRBORNE_SMOKE_INSTANCES` only.
SMT_LAYOUT_KINDS = ("none", "bottom", "none-shielded")

#: Instances in the airborne choreography's feasible class (load-regular
#: perfect-matching rounds); the only ones schedulable with shielding on a
#: storage-less layout.
AIRBORNE_SMOKE_INSTANCES = ("single-gate", "disjoint-pairs", "ring-4")

#: Search strategies fanned out by the SMT suite.  ``coldstart`` is the
#: linear strategy with ``incremental=False`` (the seed's reference path);
#: the other names match the :mod:`repro.core.strategies` registry
#: (``portfolio`` races the single strategies across worker processes).
SMT_STRATEGIES = ("linear", "coldstart", "bisection", "warmstart", "portfolio")

REDUCED_LAYOUT_KWARGS = {"x_max": 2, "h_max": 1, "v_max": 1, "c_max": 2, "r_max": 2}


@dataclass
class BenchInstance:
    """One unit of benchmark work: a name plus a picklable spec dict."""

    name: str
    suite: str
    spec: dict


@dataclass
class BenchResult:
    """Outcome of one :class:`BenchInstance`."""

    name: str
    suite: str
    status: str  # "ok" | "timeout" | "error"
    seconds: float
    payload: dict = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# --------------------------------------------------------------------------- #
# Suite construction
# --------------------------------------------------------------------------- #
def smt_suite(
    strategies: Sequence[str] = SMT_STRATEGIES,
    instances: Sequence[str] | None = None,
    layout_kinds: Sequence[str] = SMT_LAYOUT_KINDS,
    time_limit: Optional[float] = 120.0,
    backends: Sequence[Optional[str]] = (None,),
) -> list[BenchInstance]:
    """Exact-SMT scheduling of the reduced instances, one axis per strategy.

    Every (backend, strategy, layout, instance) tuple becomes one spec, so a
    persisted batch captures the full search trajectory — bounds and
    horizons attempted — per strategy, side by side.  *backends* fans the
    suite across SAT backends (registry names; ``None`` is the default
    in-process core, whose instance names keep the historical
    ``smt/{strategy}/{layout}/{instance}`` format — explicit backends are
    prefixed as ``smt/{backend}/...``).
    """
    names = list(instances) if instances is not None else list(SMT_INSTANCES)
    suite: list[BenchInstance] = []
    for backend in backends:
        for strategy in strategies:
            if strategy not in SMT_STRATEGIES:
                raise ValueError(f"unknown SMT scheduler strategy {strategy!r}")
            for kind in layout_kinds:
                # Pseudo-kinds force a shielding override on a base layout;
                # "none-shielded" pairs only with the instances that stay
                # feasible when no idle qubit may enter the entangling zone.
                layout_kind, shielding = (
                    ("none", True) if kind == "none-shielded" else (kind, None)
                )
                for name in names:
                    if shielding and name not in AIRBORNE_SMOKE_INSTANCES:
                        continue
                    num_qubits, gates = SMT_INSTANCES[name]
                    prefix = "smt" if backend is None else f"smt/{backend}"
                    suite.append(
                        BenchInstance(
                            name=f"{prefix}/{strategy}/{kind}/{name}",
                            suite="smt",
                            spec={
                                "kind": "smt",
                                "strategy": strategy,
                                "sat_backend": backend,
                                "layout_kind": layout_kind,
                                "layout_label": kind,
                                "layout_kwargs": dict(REDUCED_LAYOUT_KWARGS),
                                "shielding": shielding,
                                "instance": name,
                                "num_qubits": num_qubits,
                                "gates": [list(g) for g in gates],
                                "time_limit": time_limit,
                            },
                        )
                    )
    return suite


def table1_suite(codes: Sequence[str] | None = None) -> list[BenchInstance]:
    """One instance per Table I cell (code x layout, structured backend).

    Figure 4 is derived from the same rows
    (:func:`repro.evaluation.figure4.figure4_from_rows`), so this suite
    covers both evaluation surfaces.
    """
    from repro.arch import evaluation_layouts
    from repro.qec import available_codes

    code_names = list(codes) if codes is not None else available_codes()
    layout_names = list(evaluation_layouts())
    return [
        BenchInstance(
            name=f"table1/{code}/{layout}",
            suite="table1",
            spec={"kind": "table1", "code": code, "layout": layout},
        )
        for code in code_names
        for layout in layout_names
    ]


def exploration_suite(codes: Sequence[str] | None = None) -> list[BenchInstance]:
    """One design-space sweep per code."""
    from repro.qec import available_codes

    code_names = list(codes) if codes is not None else available_codes()
    return [
        BenchInstance(
            name=f"exploration/{code}",
            suite="exploration",
            spec={"kind": "exploration", "code": code},
        )
        for code in code_names
    ]


def build_suite(
    suite: str,
    codes: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
    time_limit: Optional[float] = 120.0,
    backends: Sequence[Optional[str]] | None = None,
) -> list[BenchInstance]:
    """Construct the instance list for a named suite."""
    smt_strategies = tuple(strategies) if strategies else SMT_STRATEGIES
    smt_backends = tuple(backends) if backends else (None,)
    if suite == "smt":
        return smt_suite(
            strategies=smt_strategies, time_limit=time_limit, backends=smt_backends
        )
    if suite == "table1":
        return table1_suite(codes=codes)
    if suite == "exploration":
        return exploration_suite(codes=codes)
    if suite == "all":
        return (
            smt_suite(
                strategies=smt_strategies,
                time_limit=time_limit,
                backends=smt_backends,
            )
            + table1_suite(codes=codes)
            + exploration_suite(codes=codes)
        )
    raise ValueError(f"unknown suite {suite!r}")


# --------------------------------------------------------------------------- #
# Workers (module-level so they pickle for ProcessPoolExecutor)
# --------------------------------------------------------------------------- #
def execute_spec(spec: dict) -> dict:
    """Run one instance spec and return its JSON-serialisable payload."""
    kind = spec["kind"]
    if kind == "smt":
        return _execute_smt(spec)
    if kind == "table1":
        return _execute_table1(spec)
    if kind == "exploration":
        return _execute_exploration(spec)
    raise ValueError(f"unknown spec kind {kind!r}")


def _execute_smt(spec: dict) -> dict:
    from repro.arch import reduced_layout
    from repro.core.problem import SchedulingProblem
    from repro.core.scheduler import SMTScheduler
    from repro.core.validator import validate_schedule

    architecture = reduced_layout(spec["layout_kind"], **spec["layout_kwargs"])
    strategy = spec["strategy"]
    scheduler = SMTScheduler(
        time_limit_per_instance=spec.get("time_limit"),
        strategy="linear" if strategy == "coldstart" else strategy,
        incremental=strategy != "coldstart",
        phase_seed=spec.get("phase_seed"),
        sat_backend=spec.get("sat_backend"),
    )
    gates = [tuple(g) for g in spec["gates"]]
    problem = SchedulingProblem.from_gates(
        architecture,
        spec["num_qubits"],
        gates,
        shielding=spec.get("shielding"),
    )
    report = scheduler.schedule(problem)
    payload = {
        "strategy": strategy,
        # Schema v4 field: the resolved backend registry name.
        "sat_backend": report.sat_backend,
        "layout": spec.get("layout_label", spec["layout_kind"]),
        "instance": spec["instance"],
        "found": report.found,
        "optimal": report.optimal,
        "lower_bound": report.lower_bound,
        "upper_bound": report.upper_bound,
        # Schema v5 fields: certificate provenance of both bounds.
        "lower_bound_source": report.lower_bound_source,
        "upper_bound_source": report.upper_bound_source,
        "stages_tried": report.stages_tried,
        "num_horizons": report.num_horizons,
        "solver_seconds": report.solver_seconds,
    }
    if report.winner is not None:
        # Schema v3 field (portfolio runs only); stripped for v2 documents.
        payload["winner"] = report.winner
    if report.found:
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        payload.update(
            num_stages=report.schedule.num_stages,
            num_rydberg_stages=report.schedule.num_rydberg_stages,
            num_transfer_stages=report.schedule.num_transfer_stages,
            validated=True,
        )
    return payload


def _execute_table1(spec: dict) -> dict:
    from repro.arch import evaluation_layouts
    from repro.evaluation.table1 import run_table1_row

    layouts = evaluation_layouts()
    layout_name = spec["layout"]
    if layout_name not in layouts:
        raise ValueError(f"unknown layout {layout_name!r}")
    row = run_table1_row(spec["code"], layouts={layout_name: layouts[layout_name]})
    cell = row.layouts[layout_name]
    return {
        "code": spec["code"],
        "layout": layout_name,
        "num_qubits": row.num_qubits,
        "num_cz_gates": row.num_cz_gates,
        "scheduling_seconds": cell.scheduling_seconds,
        "num_rydberg_stages": cell.num_rydberg_stages,
        "num_transfer_stages": cell.num_transfer_stages,
        "num_transfer_operations": cell.num_transfer_operations,
        "execution_time_ms": cell.execution_time_ms,
        "asp": cell.asp,
    }


def _execute_exploration(spec: dict) -> dict:
    from repro.evaluation.exploration import run_architecture_exploration

    results = run_architecture_exploration(spec["code"])
    return {
        "code": spec["code"],
        "design_points": [asdict(result) for result in results],
    }


def _timed_execute(spec: dict) -> dict:
    start = time.monotonic()
    payload = execute_spec(spec)
    payload["seconds"] = time.monotonic() - start
    return payload


# --------------------------------------------------------------------------- #
# Batch execution
# --------------------------------------------------------------------------- #
def run_batch(
    instances: Sequence[BenchInstance],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    output_path: str | os.PathLike | None = None,
    schema_version: int = 5,
) -> list[BenchResult]:
    """Execute *instances*, optionally in parallel, and collect results.

    ``jobs=None`` or ``jobs <= 1`` runs serially in this process (no pickling
    round-trips, easiest to debug); larger values fan out across that many
    worker processes.  *timeout* bounds each instance's execution time: SMT
    instances enforce it cooperatively through the solver's anytime limit,
    and in parallel mode the harness additionally abandons any instance that
    overruns (status ``"timeout"``), terminating straggler workers at the
    end of the batch.  Non-SMT instances cannot be preempted in serial mode.
    When *output_path* is given the results are additionally persisted as
    JSON.
    """
    if jobs is None or jobs <= 1:
        results = _run_serial(instances, timeout)
    else:
        results = _run_parallel(instances, jobs, timeout)
    if output_path is not None:
        save_results(results, output_path, schema_version=schema_version)
    return results


def _run_serial(
    instances: Sequence[BenchInstance], timeout: Optional[float]
) -> list[BenchResult]:
    results: list[BenchResult] = []
    for instance in instances:
        spec = _with_timeout(instance.spec, timeout)
        start = time.monotonic()
        try:
            payload = execute_spec(spec)
        except Exception as exc:  # noqa: BLE001 - reported per instance
            results.append(
                BenchResult(
                    name=instance.name,
                    suite=instance.suite,
                    status="error",
                    seconds=time.monotonic() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        results.append(
            BenchResult(
                name=instance.name,
                suite=instance.suite,
                status="ok",
                seconds=time.monotonic() - start,
                payload=payload,
            )
        )
    return results


def _run_parallel(
    instances: Sequence[BenchInstance], jobs: int, timeout: Optional[float]
) -> list[BenchResult]:
    results: dict[int, BenchResult] = {}
    abandoned_running = False
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = {}
        for index, instance in enumerate(instances):
            future = pool.submit(_timed_execute, _with_timeout(instance.spec, timeout))
            futures[future] = (index, instance)
        pending = set(futures)
        # Execution start per future, observed by polling: the timeout is a
        # budget on a worker actually running the instance, so time spent
        # waiting in the pool queue must not count against it.
        execution_started: dict[object, float] = {}
        while pending:
            done, pending = wait(pending, timeout=0.5, return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in pending:
                if future not in execution_started and future.running():
                    execution_started[future] = now
            for future in done:
                index, instance = futures[future]
                elapsed = now - execution_started.get(future, now)
                try:
                    payload = future.result()
                except Exception as exc:  # noqa: BLE001 - reported per instance
                    results[index] = BenchResult(
                        name=instance.name,
                        suite=instance.suite,
                        status="error",
                        seconds=elapsed,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    results[index] = BenchResult(
                        name=instance.name,
                        suite=instance.suite,
                        status="ok",
                        seconds=payload.pop("seconds", elapsed),
                        payload=payload,
                    )
            if timeout is not None:
                overdue = {
                    future
                    for future in pending
                    if future in execution_started
                    and now - execution_started[future] > timeout
                }
                for future in overdue:
                    index, instance = futures[future]
                    results[index] = BenchResult(
                        name=instance.name,
                        suite=instance.suite,
                        status="timeout",
                        seconds=now - execution_started[future],
                        error=f"exceeded {timeout:.0f}s harness timeout",
                    )
                    abandoned_running = True
                pending -= overdue
    finally:
        # Don't block on abandoned workers: release the queue, then
        # terminate any process still grinding on a timed-out instance.
        workers = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=not abandoned_running, cancel_futures=True)
        if abandoned_running:
            for process in workers.values():
                process.terminate()
    return [results[index] for index in sorted(results)]


@dataclass
class RaceOutcome:
    """Result of a :func:`race_to_first` run."""

    #: Index of the first task whose result was accepted (None: no winner).
    winner_index: Optional[int]
    #: The accepted result itself (None when no winner).
    winner: object
    #: Results of every task that completed before the race was decided,
    #: keyed by task index (includes the winner).
    finished: dict[int, object] = field(default_factory=dict)
    #: Tasks that raised, keyed by task index.
    errors: dict[int, str] = field(default_factory=dict)
    #: Tasks cancelled or terminated because the race was already won.
    cancelled: list[int] = field(default_factory=list)
    seconds: float = 0.0


def race_to_first(
    fn,
    tasks: Sequence,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    accept=None,
) -> RaceOutcome:
    """Run ``fn(task)`` for every task across worker processes; first
    acceptable result wins and the losers are cancelled/terminated.

    This is the racing counterpart of :func:`run_batch`: same pool
    machinery, but the batch stops at the first result for which
    ``accept(result)`` is true (default: any result).  Queued tasks are
    cancelled; workers still grinding on a loser are terminated.  Among
    results arriving in the same poll interval the lowest task index wins,
    which keeps the outcome deterministic when several tasks finish
    near-simultaneously.  With no acceptable result the race returns
    ``winner_index=None`` and every completed result in ``finished``.
    *timeout* bounds the whole race (seconds); on expiry the still-running
    tasks are treated as cancelled.
    """
    if accept is None:
        def accept(result):  # default: any completed result wins
            return True
    start = time.monotonic()
    jobs = max(1, min(len(tasks), jobs or os.cpu_count() or 1))
    outcome = RaceOutcome(winner_index=None, winner=None)
    deadline = start + timeout if timeout is not None else None
    pool = ProcessPoolExecutor(max_workers=jobs)
    abandoned_running = False
    try:
        futures = {pool.submit(fn, task): index for index, task in enumerate(tasks)}
        pending = set(futures)
        while pending and outcome.winner_index is None:
            done, pending = wait(pending, timeout=0.5, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=futures.__getitem__):
                index = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - reported per task
                    outcome.errors[index] = f"{type(exc).__name__}: {exc}"
                    continue
                outcome.finished[index] = result
                if outcome.winner_index is None and accept(result):
                    outcome.winner_index = index
                    outcome.winner = result
            if deadline is not None and time.monotonic() > deadline:
                break
        outcome.cancelled = sorted(futures[future] for future in pending)
        abandoned_running = bool(pending)
    finally:
        # Losers must not keep burning CPU: release the queue, then
        # terminate any worker still grinding on a cancelled task.
        workers = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=not abandoned_running, cancel_futures=True)
        if abandoned_running:
            for process in workers.values():
                process.terminate()
    outcome.seconds = time.monotonic() - start
    return outcome


def _with_timeout(spec: dict, timeout: Optional[float]) -> dict:
    """Forward the harness timeout to specs that support a solver limit."""
    if timeout is None or spec.get("kind") != "smt":
        return spec
    spec = dict(spec)
    limit = spec.get("time_limit")
    spec["time_limit"] = timeout if limit is None else min(limit, timeout)
    return spec


# --------------------------------------------------------------------------- #
# Persistence and formatting
# --------------------------------------------------------------------------- #
#: Payload keys introduced per schema version; stripped when an older
#: document version is requested for compatibility.
_V3_PAYLOAD_KEYS = ("winner",)
_V4_PAYLOAD_KEYS = ("sat_backend",)
_V5_PAYLOAD_KEYS = ("lower_bound_source", "upper_bound_source")


def save_results(
    results: Sequence[BenchResult],
    path: str | os.PathLike,
    schema_version: int = 5,
) -> None:
    """Persist a batch run as a JSON document.

    Schema history: version 2 gave SMT payloads the search trajectory
    (strategy/lower_bound/upper_bound/stages_tried/num_horizons); version 3
    added the portfolio's ``winner`` configuration; version 4 added the SAT
    backend (``sat_backend``) that decided the probes; version 5 (default)
    adds the bound-certificate provenance (``lower_bound_source`` /
    ``upper_bound_source``).  Requesting an older version strips the newer
    fields so downstream consumers pinned to it keep loading
    byte-compatible payloads.
    """
    if schema_version not in (2, 3, 4, 5):
        raise ValueError(f"unknown bench schema version {schema_version}")
    serialised = [asdict(result) for result in results]
    stripped_keys: tuple[str, ...] = ()
    if schema_version <= 4:
        stripped_keys += _V5_PAYLOAD_KEYS
    if schema_version <= 3:
        stripped_keys += _V4_PAYLOAD_KEYS
    if schema_version <= 2:
        stripped_keys += _V3_PAYLOAD_KEYS
    for entry in serialised:
        for key in stripped_keys:
            entry["payload"].pop(key, None)
    document = {
        "version": schema_version,
        "created_unix": time.time(),
        "num_instances": len(results),
        "num_ok": sum(1 for r in results if r.ok),
        "results": serialised,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str | os.PathLike) -> list[BenchResult]:
    """Load a batch run persisted by :func:`save_results`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return [BenchResult(**entry) for entry in document["results"]]


def strategy_horizons(
    results: Sequence[BenchResult], strategy: str
) -> dict[tuple[str, str], int]:
    """Horizons attempted per (layout, instance) by *strategy*'s SMT runs."""
    horizons: dict[tuple[str, str], int] = {}
    for result in results:
        payload = result.payload
        if result.suite != "smt" or payload.get("strategy") != strategy:
            continue
        key = (payload.get("layout"), payload.get("instance"))
        horizons[key] = payload.get("num_horizons", len(payload.get("stages_tried", [])))
    return horizons


def check_bisection_regression(
    linear_results: Sequence[BenchResult],
    bisection_results: Sequence[BenchResult],
    layout: str = "bottom",
    instance: str = "triangle",
) -> tuple[int, int]:
    """Horizon counts of linear vs bisection on the multi-horizon smoke instance.

    Returns ``(linear_horizons, bisection_horizons)`` for the given (layout,
    instance) cell; raises ``ValueError`` when either batch lacks it.  The CI
    bench-regression job fails when the bisection count is not strictly
    smaller.
    """
    key = (layout, instance)
    linear = strategy_horizons(linear_results, "linear").get(key)
    bisection = strategy_horizons(bisection_results, "bisection").get(key)
    if linear is None or bisection is None:
        raise ValueError(
            f"batches do not both cover the smoke instance {layout}/{instance}"
        )
    return linear, bisection


def check_bounds_soundness(
    results: Sequence[BenchResult],
    expect_clique: Optional[dict[str, int]] = None,
) -> int:
    """Certify the analytic bounds of every SMT payload in a batch.

    Every ``ok`` SMT result that certified an optimum must satisfy
    ``lower_bound <= num_stages <= upper_bound`` (the upper-bound half only
    when a structured witness existed), and both bounds must carry their
    certificate provenance (schema v5 ``lower_bound_source`` /
    ``upper_bound_source``).  *expect_clique* maps instance names to the
    minimum lower bound their clique certificate guarantees (the CI gate
    pins the triangle to 3); the check fails when a matching payload
    reports less.  Returns the number of certified cells checked; raises
    ``ValueError`` on the first violation or when no cell qualifies.
    """
    checked = 0
    for result in results:
        payload = result.payload
        if result.suite != "smt" or not result.ok:
            continue
        if not (payload.get("found") and payload.get("optimal")):
            continue
        name = result.name
        stages = payload.get("num_stages")
        lower = payload.get("lower_bound")
        upper = payload.get("upper_bound")
        if lower is None or stages is None:
            raise ValueError(f"{name}: payload lacks lower_bound/num_stages")
        if lower > stages:
            raise ValueError(
                f"{name}: analytic lower bound {lower} exceeds the certified "
                f"optimum {stages} — a certificate is unsound"
            )
        if not payload.get("lower_bound_source"):
            raise ValueError(f"{name}: lower bound lacks its certificate source")
        if upper is not None:
            if stages > upper:
                raise ValueError(
                    f"{name}: certified optimum {stages} exceeds the "
                    f"structured upper bound {upper} — the witness is unsound"
                )
            if not payload.get("upper_bound_source"):
                raise ValueError(
                    f"{name}: upper bound lacks its witness source"
                )
        expected = (expect_clique or {}).get(payload.get("instance"))
        if expected is not None and lower < expected:
            raise ValueError(
                f"{name}: lower bound {lower} below the clique certificate "
                f"value {expected}"
            )
        checked += 1
    if not checked:
        raise ValueError("batch contains no certified SMT cells to check")
    return checked


def check_portfolio_regression(
    baseline_results: Sequence[BenchResult],
    portfolio_results: Sequence[BenchResult],
    baseline_strategy: str = "bisection",
) -> list[tuple[str, str]]:
    """Certify the portfolio against a single-strategy baseline batch.

    For every (layout, instance) cell present in both batches the portfolio
    must have found a schedule, certified optimality, recorded a winning
    configuration, and reached exactly the baseline's optimal stage count.
    Returns the list of compared cells; raises ``ValueError`` on the first
    violated cell or when the batches share no cells — the CI
    bench-regression job turns that into a failure.
    """

    def stage_counts(results: Sequence[BenchResult], strategy: str) -> dict:
        cells = {}
        for result in results:
            payload = result.payload
            if result.suite != "smt" or payload.get("strategy") != strategy:
                continue
            cells[(payload.get("layout"), payload.get("instance"))] = payload
        return cells

    baseline = stage_counts(baseline_results, baseline_strategy)
    portfolio = stage_counts(portfolio_results, "portfolio")
    shared = sorted(set(baseline) & set(portfolio))
    if not shared:
        raise ValueError("batches share no (layout, instance) cells to compare")
    for cell in shared:
        expected = baseline[cell]
        actual = portfolio[cell]
        if not (expected.get("found") and expected.get("optimal")):
            raise ValueError(f"{cell}: baseline {baseline_strategy} did not certify")
        if not (actual.get("found") and actual.get("optimal")):
            raise ValueError(f"{cell}: portfolio failed to certify an optimum")
        if actual.get("num_stages") != expected.get("num_stages"):
            raise ValueError(
                f"{cell}: portfolio found {actual.get('num_stages')} stages, "
                f"{baseline_strategy} certified {expected.get('num_stages')}"
            )
        if not actual.get("winner"):
            raise ValueError(f"{cell}: portfolio did not record a winner")
    return shared


def check_backend_agreement(
    first_results: Sequence[BenchResult],
    second_results: Sequence[BenchResult],
    expect_cells: Optional[int] = None,
) -> list[tuple[str, str, str]]:
    """Certify that two SMT batches agree on every shared optimum.

    The batches are keyed by (strategy, layout, instance) — the same suite
    run under two different SAT backends, one backend per batch.  Every
    shared cell must be found+optimal in both batches with identical stage
    counts, and each batch must record which backend produced it.  Returns
    the compared cells; raises ``ValueError`` on the first disagreement,
    when the batches share no cells, or when a batch mixes backends (a
    multi-backend batch would silently shadow all but one backend's result
    per cell — split it per backend before comparing).

    Only ``ok`` results enter the comparison, so an instance that errored
    or timed out under one backend simply drops out of the shared set —
    pass *expect_cells* to turn that silent coverage loss into a failure
    (the CI backend-matrix job pins it to the suite size).
    """

    def cells(results: Sequence[BenchResult]) -> dict[tuple[str, str, str], dict]:
        mapping = {}
        for result in results:
            payload = result.payload
            if result.suite != "smt" or not result.ok:
                continue
            key = (
                payload.get("strategy"),
                payload.get("layout"),
                payload.get("instance"),
            )
            previous = mapping.get(key)
            if previous is not None and previous.get("sat_backend") != payload.get(
                "sat_backend"
            ):
                raise ValueError(
                    f"{key}: batch mixes SAT backends "
                    f"({previous.get('sat_backend')!r} vs "
                    f"{payload.get('sat_backend')!r}); compare "
                    "single-backend batches"
                )
            mapping[key] = payload
        return mapping

    first = cells(first_results)
    second = cells(second_results)
    shared = sorted(set(first) & set(second))
    if not shared:
        raise ValueError("batches share no (strategy, layout, instance) cells")
    if expect_cells is not None and len(shared) != expect_cells:
        raise ValueError(
            f"expected {expect_cells} comparable cells but only {len(shared)} "
            "are ok in both batches — instances errored or timed out"
        )
    for cell in shared:
        a, b = first[cell], second[cell]
        backends = (a.get("sat_backend"), b.get("sat_backend"))
        if not all(backends):
            raise ValueError(f"{cell}: a batch does not record its SAT backend")
        for payload, backend in ((a, backends[0]), (b, backends[1])):
            if not (payload.get("found") and payload.get("optimal")):
                raise ValueError(
                    f"{cell}: backend {backend!r} failed to certify an optimum"
                )
        if a.get("num_stages") != b.get("num_stages"):
            raise ValueError(
                f"{cell}: backend {backends[0]!r} certified "
                f"{a.get('num_stages')} stages but backend {backends[1]!r} "
                f"certified {b.get('num_stages')}"
            )
    return shared


def format_batch(results: Sequence[BenchResult]) -> str:
    """Human-readable summary table of a batch run."""
    lines = [f"{'Instance':<42}{'Status':>9}{'Time[s]':>9}  Details"]
    for result in results:
        details = ""
        payload = result.payload
        if result.suite == "smt" and payload.get("found"):
            upper = payload.get("upper_bound")
            details = (
                f"stages={payload['num_stages']} "
                f"tried={payload['stages_tried']} "
                f"bounds=[{payload.get('lower_bound')},{'-' if upper is None else upper}]"
            )
        elif result.suite == "table1" and result.ok:
            details = (
                f"#R={payload['num_rydberg_stages']} #T={payload['num_transfer_stages']} "
                f"ASP={payload['asp']:.3f}"
            )
        elif result.suite == "exploration" and result.ok:
            details = f"{len(payload['design_points'])} design points"
        elif result.error:
            details = result.error
        lines.append(f"{result.name:<42}{result.status:>9}{result.seconds:>9.2f}  {details}")
    ok = sum(1 for r in results if r.ok)
    lines.append(f"{ok}/{len(results)} instances ok")
    return "\n".join(lines)
