"""Parallel batch evaluation engine.

The reproduction's evaluation surfaces (Table I cells, Figure 4 bars,
exploration sweeps, and the exact-SMT benchmark instances) are all
embarrassingly parallel: every instance is an independent (circuit,
architecture, backend) triple.  This module turns each surface into a list
of picklable :class:`BenchInstance` specs and fans them out across the
persistent warm worker pool of :mod:`repro.evaluation.executor`, collecting
per-instance wall-clock, status (``ok`` / ``timeout`` / ``error``) and a
JSON-serialisable payload.

Entry points
------------

* :func:`build_suite` — construct the instance list for a named suite
  (``smt``, ``table1``, ``exploration`` or ``all``).
* :func:`shard_suite` — deterministically partition a suite into one of
  ``n`` disjoint, exhaustive shards (``bench --shard i/n``) by a stable
  hash of the cell name, so CI matrix legs and fleets of machines can
  split one suite without coordination.
* :func:`run_batch` — execute instances serially (``jobs <= 1``) or on a
  fault-tolerant worker pool, with an optional per-instance timeout, an
  optional per-cell completion journal (crash/resume support, see
  :mod:`repro.evaluation.journal`), and optional JSON persistence.
* :func:`merge_documents` — union the JSON documents of a sharded run
  back into one, proving the shards were disjoint and exhaustive
  (``repro-nasp bench-merge``).
* ``repro-nasp bench`` — the CLI wrapper around all of it (see
  :mod:`repro.cli`).

Fault tolerance: parallel cells run on a fixed pool of *persistent*
worker processes (:class:`~repro.evaluation.executor.WorkerPool`) that
import the scheduling stack once and then execute cells back to back —
the old one-process-per-cell path re-paid the fork and backend warm-up
for every cell.  The fault contract is unchanged: a worker that
*crashes* (killed, OOM-ed, ``os._exit``) is detected via its exit code,
a replacement worker is spawned, and the cell is retried up to
``1 + max_retries`` attempts before being recorded as ``status:
"failed"`` — a poisoned cell can neither wedge the suite nor take the
pool down with a ``BrokenProcessPool``.  Teardown (normal, timeout,
``KeyboardInterrupt``) terminates **and joins** every live worker so no
child outlives the batch.

The timeout is enforced on two levels: every spec kind receives it as a
cooperative :class:`~repro.core.budget.Deadline` (SMT cells degrade
gracefully and report ``termination: "deadline"`` with their best-known
witness; table1/exploration cells raise
:class:`~repro.core.budget.DeadlineExceeded` between sub-instances and are
recorded as ``timeout`` — in serial and parallel mode alike), and in
parallel mode the harness additionally terminates any worker whose
*execution* exceeds the budget — the cell is recorded as ``timeout``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from repro.core.budget import DeadlineExceeded
# RaceOutcome/race_to_first moved to the executor in PR 9; re-exported here
# because the portfolio strategy and downstream code import them from the
# runner, which remains their documented home.
from repro.evaluation.executor import (
    TASK_CRASHED,
    TASK_OK,
    RaceOutcome,  # noqa: F401 - re-export
    WorkerPool,
    race_to_first,  # noqa: F401 - re-export
)
from repro.evaluation.journal import (
    BenchJournal,
    file_digest,
    load_journal,
    plan_resume,
    suite_digest,
)

#: The reduced-architecture instances exercised by the SMT suite; small
#: enough for the pure-Python SAT core, structurally identical to the paper's
#: full encoding.  Shared with ``benchmarks/test_bench_smt.py``.
SMT_INSTANCES: dict[str, tuple[int, list[tuple[int, int]]]] = {
    "single-gate": (2, [(0, 1)]),
    "chain-2": (3, [(0, 1), (1, 2)]),
    "disjoint-pairs": (4, [(0, 1), (2, 3)]),
    "triangle": (3, [(0, 1), (1, 2), (0, 2)]),
    "ring-4": (4, [(0, 1), (1, 2), (2, 3), (0, 3)]),
}

#: Layout axes of the SMT suite.  ``"none-shielded"`` is the storage-less
#: layout with ``shielding=True`` forced: idle qubits cannot leave the
#: all-covering entangling zone there, so only instances whose beams keep
#: every qubit busy are feasible — the suite pairs the axis with
#: :data:`AIRBORNE_SMOKE_INSTANCES` only.
SMT_LAYOUT_KINDS = ("none", "bottom", "none-shielded")

#: Instances in the airborne choreography's feasible class (load-regular
#: perfect-matching rounds); the only ones schedulable with shielding on a
#: storage-less layout.
AIRBORNE_SMOKE_INSTANCES = ("single-gate", "disjoint-pairs", "ring-4")

#: Search strategies fanned out by the SMT suite.  ``coldstart`` is the
#: linear strategy with ``incremental=False`` (the seed's reference path);
#: the other names match the :mod:`repro.core.strategies` registry
#: (``portfolio`` races the single strategies across worker processes).
SMT_STRATEGIES = ("linear", "coldstart", "bisection", "warmstart", "portfolio")

REDUCED_LAYOUT_KWARGS = {"x_max": 2, "h_max": 1, "v_max": 1, "c_max": 2, "r_max": 2}


@dataclass
class BenchInstance:
    """One unit of benchmark work: a name plus a picklable spec dict."""

    name: str
    suite: str
    spec: dict


@dataclass
class BenchResult:
    """Outcome of one :class:`BenchInstance`.

    ``status`` is one of ``"ok"`` (payload valid), ``"error"`` (the spec
    raised — deterministic, not retried), ``"timeout"`` (harness budget
    exceeded; re-queued by ``--resume``), or ``"failed"`` (the worker
    process crashed on every one of its ``1 + max_retries`` attempts).
    ``attempts`` counts the execution attempts this outcome consumed
    (schema v6; > 1 only when crash retries or a resume were involved).
    """

    name: str
    suite: str
    status: str  # "ok" | "timeout" | "error" | "failed"
    seconds: float
    payload: dict = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# --------------------------------------------------------------------------- #
# Suite construction
# --------------------------------------------------------------------------- #
def smt_suite(
    strategies: Sequence[str] = SMT_STRATEGIES,
    instances: Sequence[str] | None = None,
    layout_kinds: Sequence[str] = SMT_LAYOUT_KINDS,
    time_limit: Optional[float] = 120.0,
    backends: Sequence[Optional[str]] = (None,),
) -> list[BenchInstance]:
    """Exact-SMT scheduling of the reduced instances, one axis per strategy.

    Every (backend, strategy, layout, instance) tuple becomes one spec, so a
    persisted batch captures the full search trajectory — bounds and
    horizons attempted — per strategy, side by side.  *backends* fans the
    suite across SAT backends (registry names; ``None`` is the default
    in-process core, whose instance names keep the historical
    ``smt/{strategy}/{layout}/{instance}`` format — explicit backends are
    prefixed as ``smt/{backend}/...``).
    """
    names = list(instances) if instances is not None else list(SMT_INSTANCES)
    suite: list[BenchInstance] = []
    for backend in backends:
        for strategy in strategies:
            if strategy not in SMT_STRATEGIES:
                raise ValueError(f"unknown SMT scheduler strategy {strategy!r}")
            for kind in layout_kinds:
                # Pseudo-kinds force a shielding override on a base layout;
                # "none-shielded" pairs only with the instances that stay
                # feasible when no idle qubit may enter the entangling zone.
                layout_kind, shielding = (
                    ("none", True) if kind == "none-shielded" else (kind, None)
                )
                for name in names:
                    if shielding and name not in AIRBORNE_SMOKE_INSTANCES:
                        continue
                    num_qubits, gates = SMT_INSTANCES[name]
                    prefix = "smt" if backend is None else f"smt/{backend}"
                    suite.append(
                        BenchInstance(
                            name=f"{prefix}/{strategy}/{kind}/{name}",
                            suite="smt",
                            spec={
                                "kind": "smt",
                                "strategy": strategy,
                                "sat_backend": backend,
                                "layout_kind": layout_kind,
                                "layout_label": kind,
                                "layout_kwargs": dict(REDUCED_LAYOUT_KWARGS),
                                "shielding": shielding,
                                "instance": name,
                                "num_qubits": num_qubits,
                                "gates": [list(g) for g in gates],
                                "time_limit": time_limit,
                            },
                        )
                    )
    return suite


def table1_suite(codes: Sequence[str] | None = None) -> list[BenchInstance]:
    """One instance per Table I cell (code x layout, structured backend).

    Figure 4 is derived from the same rows
    (:func:`repro.evaluation.figure4.figure4_from_rows`), so this suite
    covers both evaluation surfaces.
    """
    from repro.arch import evaluation_layouts
    from repro.qec import available_codes

    code_names = list(codes) if codes is not None else available_codes()
    layout_names = list(evaluation_layouts())
    return [
        BenchInstance(
            name=f"table1/{code}/{layout}",
            suite="table1",
            spec={"kind": "table1", "code": code, "layout": layout},
        )
        for code in code_names
        for layout in layout_names
    ]


def exploration_suite(codes: Sequence[str] | None = None) -> list[BenchInstance]:
    """One design-space sweep per code."""
    from repro.qec import available_codes

    code_names = list(codes) if codes is not None else available_codes()
    return [
        BenchInstance(
            name=f"exploration/{code}",
            suite="exploration",
            spec={"kind": "exploration", "code": code},
        )
        for code in code_names
    ]


def build_suite(
    suite: str,
    codes: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
    time_limit: Optional[float] = 120.0,
    backends: Sequence[Optional[str]] | None = None,
) -> list[BenchInstance]:
    """Construct the instance list for a named suite."""
    smt_strategies = tuple(strategies) if strategies else SMT_STRATEGIES
    smt_backends = tuple(backends) if backends else (None,)
    if suite == "smt":
        return smt_suite(
            strategies=smt_strategies, time_limit=time_limit, backends=smt_backends
        )
    if suite == "table1":
        return table1_suite(codes=codes)
    if suite == "exploration":
        return exploration_suite(codes=codes)
    if suite == "all":
        return (
            smt_suite(
                strategies=smt_strategies,
                time_limit=time_limit,
                backends=smt_backends,
            )
            + table1_suite(codes=codes)
            + exploration_suite(codes=codes)
        )
    raise ValueError(f"unknown suite {suite!r}")


# --------------------------------------------------------------------------- #
# Deterministic sharding
# --------------------------------------------------------------------------- #
def cell_shard(name: str, count: int) -> int:
    """Stable shard index of a cell, derived from a SHA-256 of its name.

    Independent of Python's randomised ``hash()``, the process, and the
    machine, so every leg of a fleet computes the same partition without
    coordination and a re-run lands each cell on the same shard.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


def shard_suite(
    instances: Sequence[BenchInstance], index: int, count: int
) -> list[BenchInstance]:
    """The *index*-th of *count* disjoint shards of a fully-expanded suite.

    The n shards of one suite are pairwise disjoint and their union is the
    whole suite (every cell hashes to exactly one index), so n machines
    running ``bench --shard i/n`` produce documents that
    :func:`merge_documents` can union back into the unsharded result set.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return [inst for inst in instances if cell_shard(inst.name, count) == index]


def shard_info(
    cell_names: Sequence[str], index: int = 0, count: int = 1
) -> dict:
    """Schema-v6 ``shard`` document field describing one run's slice.

    *cell_names* is the **full pre-shard** cell list: the digest and total
    identify the suite every shard belongs to, which is what lets
    :func:`merge_documents` prove a merged run is exhaustive.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return {
        "index": index,
        "count": count,
        "suite_cells": len(cell_names),
        "suite_digest": suite_digest(cell_names),
    }


# --------------------------------------------------------------------------- #
# Workers (module-level so they pickle for ProcessPoolExecutor)
# --------------------------------------------------------------------------- #
def dedupe_instances(
    instances: Sequence[BenchInstance],
) -> tuple[list[BenchInstance], dict[str, str]]:
    """Drop SMT cells that are isomorphic duplicates of an earlier cell.

    Two cells are duplicates when their scheduling problems share a
    canonical key (:func:`repro.core.canonical.canonical_key` — invariant
    under qubit relabeling and gate reordering) *and* their solver
    configuration (strategy, backend, time limit, phase seed) is
    identical: solving both can only reproduce the same certified answer.
    Returns ``(kept, dropped)`` where *dropped* maps each dropped cell
    name to the kept cell it duplicates.  Non-SMT cells are never dropped
    (their specs name circuits, not gate lists, and are already unique).
    """
    from repro.arch import reduced_layout
    from repro.core.canonical import canonical_key
    from repro.core.problem import SchedulingProblem

    kept: list[BenchInstance] = []
    dropped: dict[str, str] = {}
    seen: dict[tuple, str] = {}
    for instance in instances:
        spec = instance.spec
        if spec.get("kind") != "smt":
            kept.append(instance)
            continue
        architecture = reduced_layout(spec["layout_kind"], **spec["layout_kwargs"])
        problem = SchedulingProblem.from_gates(
            architecture,
            spec["num_qubits"],
            [tuple(gate) for gate in spec["gates"]],
            shielding=spec.get("shielding"),
        )
        key = (
            canonical_key(problem),
            spec["strategy"],
            spec.get("sat_backend"),
            spec.get("time_limit"),
            spec.get("phase_seed"),
        )
        if key in seen:
            dropped[instance.name] = seen[key]
        else:
            seen[key] = instance.name
            kept.append(instance)
    return kept, dropped


def execute_spec(spec: dict) -> dict:
    """Run one instance spec and return its JSON-serialisable payload."""
    kind = spec["kind"]
    if kind == "smt":
        return _execute_smt(spec)
    if kind == "table1":
        return _execute_table1(spec)
    if kind == "exploration":
        return _execute_exploration(spec)
    if kind == "selftest":
        return _execute_selftest(spec)
    raise ValueError(f"unknown spec kind {kind!r}")


def _execute_selftest(spec: dict) -> dict:
    """Fault-injection specs for exercising the fleet machinery itself.

    Not part of any named suite: the fleet tests build these instances
    directly to prove crash retry, timeout preemption, journal resume, and
    worker teardown against *real* worker processes instead of mocks.

    Ops: ``ok`` returns immediately; ``pid`` returns the worker's PID (the
    worker-reuse regression test proves the warm pool executes many cells
    on few processes); ``error`` raises; ``sleep`` blocks for ``seconds``
    (optionally writing its PID to ``pid_file`` first, so a test can
    verify the worker was really killed); ``crash`` dies via ``os._exit``
    without a result — indistinguishable from an OOM kill; ``crash-once``
    crashes only while the ``marker`` file does not exist (it creates it
    first), so exactly the first attempt dies and a retry succeeds.
    """
    op = spec.get("op")
    if op == "ok":
        return {"op": "ok", "value": spec.get("value")}
    if op == "pid":
        return {"op": "pid", "pid": os.getpid(), "value": spec.get("value")}
    if op == "error":
        raise RuntimeError(spec.get("message", "injected error"))
    if op == "sleep":
        pid_file = spec.get("pid_file")
        if pid_file:
            with open(pid_file, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
        time.sleep(float(spec["seconds"]))
        return {"op": "sleep", "value": spec.get("value")}
    if op == "crash":
        os._exit(int(spec.get("exit_code", 66)))
    if op == "crash-once":
        marker = spec["marker"]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            os._exit(int(spec.get("exit_code", 66)))
        return {"op": "crash-once", "survived": True}
    raise ValueError(f"unknown selftest op {op!r}")


def _execute_smt(spec: dict) -> dict:
    from repro.arch import reduced_layout
    from repro.core.problem import SchedulingProblem
    from repro.core.scheduler import SMTScheduler
    from repro.core.validator import validate_schedule

    architecture = reduced_layout(spec["layout_kind"], **spec["layout_kwargs"])
    strategy = spec["strategy"]
    scheduler = SMTScheduler(
        time_limit_per_instance=spec.get("time_limit"),
        strategy="linear" if strategy == "coldstart" else strategy,
        incremental=strategy != "coldstart",
        phase_seed=spec.get("phase_seed"),
        sat_backend=spec.get("sat_backend"),
        deadline=spec.get("deadline"),
    )
    gates = [tuple(g) for g in spec["gates"]]
    problem = SchedulingProblem.from_gates(
        architecture,
        spec["num_qubits"],
        gates,
        shielding=spec.get("shielding"),
    )
    report = scheduler.schedule(problem)
    payload = {
        "strategy": strategy,
        # Schema v4 field: the resolved backend registry name.
        "sat_backend": report.sat_backend,
        "layout": spec.get("layout_label", spec["layout_kind"]),
        "instance": spec["instance"],
        "found": report.found,
        "optimal": report.optimal,
        "lower_bound": report.lower_bound,
        "upper_bound": report.upper_bound,
        # Schema v5 fields: certificate provenance of both bounds.
        "lower_bound_source": report.lower_bound_source,
        "upper_bound_source": report.upper_bound_source,
        "stages_tried": report.stages_tried,
        "num_horizons": report.num_horizons,
        "solver_seconds": report.solver_seconds,
        # Schema v7 fields: how the search ended (the graceful-degradation
        # verdict) and how many transient backend failures were retried.
        "termination": report.termination,
        "backend_retries": int(report.statistics.get("backend_retries", 0)),
    }
    # Schema v6 fields: hot-loop telemetry of the deciding SAT backend
    # (per-check rates and search/inprocessing counters of the last probe),
    # when the backend keeps them — the trend tool tracks these across
    # commits.
    for key in (
        "sat_propagations_per_second",
        "sat_conflicts_per_second",
        "sat_chrono_backtracks",
        "sat_vivified_literals",
        "sat_subsumed_clauses",
    ):
        if key in report.statistics:
            payload[key] = report.statistics[key]
    if report.winner is not None:
        # Schema v3 field (portfolio runs only); stripped for v2 documents.
        payload["winner"] = report.winner
    if report.found:
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        payload.update(
            num_stages=report.schedule.num_stages,
            num_rydberg_stages=report.schedule.num_rydberg_stages,
            num_transfer_stages=report.schedule.num_transfer_stages,
            validated=True,
        )
    return payload


def _execute_table1(spec: dict) -> dict:
    from repro.arch import evaluation_layouts
    from repro.evaluation.table1 import run_table1_row

    layouts = evaluation_layouts()
    layout_name = spec["layout"]
    if layout_name not in layouts:
        raise ValueError(f"unknown layout {layout_name!r}")
    row = run_table1_row(
        spec["code"],
        layouts={layout_name: layouts[layout_name]},
        deadline=_spec_deadline(spec),
    )
    cell = row.layouts[layout_name]
    return {
        "code": spec["code"],
        "layout": layout_name,
        "num_qubits": row.num_qubits,
        "num_cz_gates": row.num_cz_gates,
        "scheduling_seconds": cell.scheduling_seconds,
        "num_rydberg_stages": cell.num_rydberg_stages,
        "num_transfer_stages": cell.num_transfer_stages,
        "num_transfer_operations": cell.num_transfer_operations,
        "execution_time_ms": cell.execution_time_ms,
        "asp": cell.asp,
    }


def _execute_exploration(spec: dict) -> dict:
    from repro.evaluation.exploration import run_architecture_exploration

    results = run_architecture_exploration(
        spec["code"], deadline=_spec_deadline(spec)
    )
    return {
        "code": spec["code"],
        "design_points": [asdict(result) for result in results],
    }


def _spec_deadline(spec: dict):
    """Start the cooperative :class:`Deadline` encoded in a spec (or None).

    The budget starts ticking when the cell *executes*, not when the spec
    was built — queueing time behind a busy pool must not count against
    the cell.
    """
    from repro.core.budget import Deadline

    seconds = spec.get("deadline")
    return None if seconds is None else Deadline.after(seconds)


# --------------------------------------------------------------------------- #
# Batch execution
# --------------------------------------------------------------------------- #
def run_batch(
    instances: Sequence[BenchInstance],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    output_path: str | os.PathLike | None = None,
    schema_version: int = 8,
    journal_path: str | os.PathLike | None = None,
    resume: bool = False,
    max_retries: int = 2,
    shard: Optional[dict] = None,
) -> list[BenchResult]:
    """Execute *instances*, optionally in parallel, and collect results.

    ``jobs=None`` or ``jobs <= 1`` runs serially in this process (no pickling
    round-trips, easiest to debug); larger values fan out across that many
    worker processes, one :class:`multiprocessing.Process` per in-flight
    cell.  *timeout* bounds each instance's execution time: every spec
    enforces it cooperatively through a :class:`~repro.core.budget.Deadline`
    (SMT cells degrade gracefully to ``termination: "deadline"``;
    table1/exploration cells are preempted between sub-instances with
    status ``"timeout"``), and in parallel mode the harness additionally
    terminates any worker that overruns (status ``"timeout"``).  When
    *output_path* is given the results are additionally persisted as JSON.

    *journal_path* appends a per-cell completion journal
    (:mod:`repro.evaluation.journal`); with ``resume=True`` the journal is
    loaded first and cells it proves complete are carried over instead of
    re-run, while crashed and timed-out cells are re-queued.  A cell whose
    worker crashes is retried up to ``1 + max_retries`` total attempts
    (counting attempts recorded in a resumed journal) and then recorded as
    ``status: "failed"``.  *shard* is the schema-v6 shard descriptor from
    :func:`shard_info`; when omitted the run is recorded as the single
    shard of its own cell set.
    """
    names = [instance.name for instance in instances]
    if shard is None:
        shard = shard_info(names)
    max_attempts = 1 + max(0, max_retries)
    carried: dict[int, BenchResult] = {}
    pending: list[tuple[int, BenchInstance, int]] = [
        (index, instance, 1) for index, instance in enumerate(instances)
    ]
    journal: Optional[BenchJournal] = None
    if resume:
        if journal_path is None:
            raise ValueError("resume=True requires a journal_path")
        plan = plan_resume(names, load_journal(journal_path), max_retries=max_retries)
        carried = {
            index: _result_from_entry(entry) for index, entry in plan.carried.items()
        }
        pending = [
            (index, instances[index], attempt) for index, attempt in plan.pending
        ]
        journal = BenchJournal(journal_path)
    elif journal_path is not None:
        journal = BenchJournal(journal_path)
        journal.write_header(names, shard=shard)
    try:
        if jobs is None or jobs <= 1:
            executed = _run_serial(pending, timeout, journal)
        else:
            executed = _run_parallel(pending, jobs, timeout, journal, max_attempts)
    finally:
        if journal is not None:
            journal.close()
    merged = {**carried, **executed}
    results = [merged[index] for index in sorted(merged)]
    if output_path is not None:
        save_results(
            results,
            output_path,
            schema_version=schema_version,
            shard=shard,
            journal_path=journal_path,
        )
    return results


def _result_from_entry(entry: dict) -> BenchResult:
    """Rehydrate a :class:`BenchResult` from a journal/JSON entry."""
    known = {f for f in BenchResult.__dataclass_fields__}
    return BenchResult(**{k: v for k, v in entry.items() if k in known})


def _journal_done(
    journal: Optional[BenchJournal], attempt: int, result: BenchResult
) -> None:
    if journal is not None:
        journal.record_done(result.name, attempt, asdict(result))


def _run_serial(
    pending: Sequence[tuple[int, BenchInstance, int]],
    timeout: Optional[float],
    journal: Optional[BenchJournal],
) -> dict[int, BenchResult]:
    results: dict[int, BenchResult] = {}
    for index, instance, attempt in pending:
        if journal is not None:
            journal.record_start(instance.name, attempt)
        spec = _with_timeout(instance.spec, timeout)
        start = time.monotonic()
        try:
            payload = execute_spec(spec)
        except DeadlineExceeded as exc:
            # A cooperative preemption (table1/exploration cells check the
            # budget between sub-instances) is a timeout, not an error —
            # ``--resume`` re-queues it just like a harness-killed worker.
            result = BenchResult(
                name=instance.name,
                suite=instance.suite,
                status="timeout",
                seconds=time.monotonic() - start,
                error=str(exc),
                attempts=attempt,
            )
        except Exception as exc:  # noqa: BLE001 - reported per instance
            result = BenchResult(
                name=instance.name,
                suite=instance.suite,
                status="error",
                seconds=time.monotonic() - start,
                error=f"{type(exc).__name__}: {exc}",
                attempts=attempt,
            )
        else:
            result = BenchResult(
                name=instance.name,
                suite=instance.suite,
                status="ok",
                seconds=time.monotonic() - start,
                payload=payload,
                attempts=attempt,
            )
        results[index] = result
        _journal_done(journal, attempt, result)
    return results


def _warm_worker() -> None:
    """Warm-up hook run once per pool worker before its first cell.

    Imports the scheduling stack (scheduler, structured baseline, SMT and
    SAT layers) so cells pay solver time only — the pool amortises this
    across every cell the worker executes instead of re-paying it per
    cell as the old one-process-per-cell path did.
    """
    import repro.core.scheduler  # noqa: F401
    import repro.core.structured  # noqa: F401
    import repro.sat.backend  # noqa: F401
    import repro.smt.solver  # noqa: F401


def _run_parallel(
    pending: Sequence[tuple[int, BenchInstance, int]],
    jobs: int,
    timeout: Optional[float],
    journal: Optional[BenchJournal],
    max_attempts: int,
) -> dict[int, BenchResult]:
    """Fan cells out across a persistent warm worker pool.

    The pool (:class:`~repro.evaluation.executor.WorkerPool`) keeps its
    workers alive across cells, so the interpreter fork and the backend
    imports are paid once per worker instead of once per cell.  The fault
    contract of the old one-process-per-cell path is preserved: a worker
    crash is an isolated, attributable event — the dead worker's cell is
    re-queued (up to *max_attempts* total attempts, then ``status:
    "failed"``), a replacement worker is spawned, and every other cell
    keeps running.  Submission is throttled to idle workers so the
    journal's ``start`` event stays adjacent to actual execution — a
    resume must only re-queue cells that truly began.  Teardown
    terminates and joins every worker (``KeyboardInterrupt`` included),
    so no child outlives the batch.
    """
    queue: deque[tuple[int, BenchInstance, int]] = deque(pending)
    results: dict[int, BenchResult] = {}
    inflight: dict[int, tuple[int, BenchInstance, int]] = {}
    with WorkerPool(
        max(1, min(jobs, len(pending) or 1)), warmup=_warm_worker, name="bench"
    ) as pool:
        while queue or inflight:
            while queue and pool.idle_count() > 0:
                index, instance, attempt = queue.popleft()
                if journal is not None:
                    journal.record_start(instance.name, attempt)
                task_id = pool.submit(
                    execute_spec,
                    _with_timeout(instance.spec, timeout),
                    timeout=timeout,
                )
                inflight[task_id] = (index, instance, attempt)
            for event in pool.poll(timeout=0.2):
                index, instance, attempt = inflight.pop(event.task_id)
                if event.status == TASK_CRASHED and attempt < max_attempts:
                    # Crash: re-queue the cell for a fresh attempt.  No
                    # result is recorded yet — the journal will see a new
                    # `start` event when the retry launches.
                    queue.append((index, instance, attempt + 1))
                    continue
                if event.status == TASK_CRASHED:
                    result = BenchResult(
                        name=instance.name,
                        suite=instance.suite,
                        status="failed",
                        seconds=event.seconds,
                        error=(
                            f"worker crashed (exit code {event.exitcode}) on "
                            f"attempt {attempt}/{max_attempts}"
                        ),
                        attempts=attempt,
                    )
                else:
                    result = BenchResult(
                        name=instance.name,
                        suite=instance.suite,
                        status=event.status,
                        seconds=event.seconds,
                        payload=event.value if event.status == TASK_OK else {},
                        error=event.error,
                        attempts=attempt,
                    )
                results[index] = result
                _journal_done(journal, attempt, result)
    return results


def _with_timeout(spec: dict, timeout: Optional[float]) -> dict:
    """Forward the harness timeout into the spec's cooperative budget.

    Every executable spec kind understands ``spec["deadline"]`` (a budget in
    seconds, started by :func:`_spec_deadline` when the cell executes): SMT
    cells hand it to :class:`~repro.core.scheduler.SMTScheduler`, which
    degrades gracefully on expiry (``termination: "deadline"``);
    table1/exploration cells check it between sub-instances and raise
    :class:`DeadlineExceeded`, recorded as ``status: "timeout"``.  SMT specs
    additionally clamp their per-probe solver ``time_limit``, preserving
    the pre-deadline anytime behaviour.
    """
    if timeout is None or spec.get("kind") == "selftest":
        return spec
    spec = dict(spec)
    existing = spec.get("deadline")
    spec["deadline"] = timeout if existing is None else min(existing, timeout)
    if spec.get("kind") == "smt":
        limit = spec.get("time_limit")
        spec["time_limit"] = timeout if limit is None else min(limit, timeout)
    return spec


# --------------------------------------------------------------------------- #
# Persistence and formatting
# --------------------------------------------------------------------------- #
#: Payload keys introduced per schema version; stripped when an older
#: document version is requested for compatibility.
_V3_PAYLOAD_KEYS = ("winner",)
_V4_PAYLOAD_KEYS = ("sat_backend",)
_V5_PAYLOAD_KEYS = ("lower_bound_source", "upper_bound_source")
_V6_PAYLOAD_KEYS = (
    "sat_propagations_per_second",
    "sat_conflicts_per_second",
    "sat_chrono_backtracks",
    "sat_vivified_literals",
    "sat_subsumed_clauses",
)
_V7_PAYLOAD_KEYS = ("termination", "backend_retries")
_V8_PAYLOAD_KEYS = (
    "latency_p50_seconds",
    "latency_p99_seconds",
    "cache_hit_rate",
)

#: Every version :func:`save_results` can emit.
BENCH_SCHEMA_VERSIONS = (2, 3, 4, 5, 6, 7, 8)


def save_results(
    results: Sequence[BenchResult],
    path: str | os.PathLike,
    schema_version: int = 8,
    shard: Optional[dict] = None,
    journal_path: str | os.PathLike | None = None,
) -> None:
    """Persist a batch run as a JSON document.

    Schema history: version 2 gave SMT payloads the search trajectory
    (strategy/lower_bound/upper_bound/stages_tried/num_horizons); version 3
    added the portfolio's ``winner`` configuration; version 4 added the SAT
    backend (``sat_backend``) that decided the probes; version 5 added the
    bound-certificate provenance (``lower_bound_source`` /
    ``upper_bound_source``); version 6 is the bench-fleet schema:
    per-result ``attempts`` and the ``"failed"`` status, per-payload SAT
    throughput rates, and the document-level ``shard`` descriptor plus
    ``journal_digest`` (SHA-256 of the completion journal that produced the
    run, ``None`` when it ran unjournalled); version 7 added the
    robustness verdicts of SMT payloads — ``termination`` (how the search
    ended, see :data:`repro.core.report.TERMINATIONS`) and
    ``backend_retries`` (transient SAT-backend failures retried); version
    8 (default) added the service load-test payloads — ``latency_p50_seconds``
    / ``latency_p99_seconds`` (nearest-rank request latency percentiles)
    and ``cache_hit_rate`` (certified-result cache hits over lookups, see
    :mod:`repro.service.loadtest`).
    Requesting an older version strips the newer fields so downstream
    consumers pinned to it keep loading byte-compatible payloads.
    """
    if schema_version not in BENCH_SCHEMA_VERSIONS:
        raise ValueError(f"unknown bench schema version {schema_version}")
    serialised = [asdict(result) for result in results]
    stripped_keys: tuple[str, ...] = ()
    if schema_version <= 7:
        stripped_keys += _V8_PAYLOAD_KEYS
    if schema_version <= 6:
        stripped_keys += _V7_PAYLOAD_KEYS
    if schema_version <= 5:
        stripped_keys += _V6_PAYLOAD_KEYS
        for entry in serialised:
            entry.pop("attempts", None)
    if schema_version <= 4:
        stripped_keys += _V5_PAYLOAD_KEYS
    if schema_version <= 3:
        stripped_keys += _V4_PAYLOAD_KEYS
    if schema_version <= 2:
        stripped_keys += _V3_PAYLOAD_KEYS
    for entry in serialised:
        for key in stripped_keys:
            entry["payload"].pop(key, None)
    document = {
        "version": schema_version,
        "created_unix": time.time(),
        "num_instances": len(results),
        "num_ok": sum(1 for r in results if r.ok),
        "results": serialised,
    }
    if schema_version >= 6:
        document["shard"] = (
            shard
            if shard is not None
            else shard_info([result.name for result in results])
        )
        document["journal_digest"] = (
            file_digest(journal_path)
            if journal_path is not None and os.path.exists(journal_path)
            else None
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str | os.PathLike) -> dict:
    """Load the raw JSON document persisted by :func:`save_results`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def load_results(path: str | os.PathLike) -> list[BenchResult]:
    """Load a batch run persisted by :func:`save_results`."""
    return [
        _result_from_entry(entry) for entry in load_document(path)["results"]
    ]


def merge_documents(documents: Sequence[dict]) -> dict:
    """Union the shard documents of one suite into a single document.

    Validates the merge end-to-end: every document must be a schema-v6+
    shard of the **same** suite (identical shard ``count``,
    ``suite_digest`` and ``suite_cells``), the shard indices must cover
    ``0..count-1`` exactly once, every cell must live on the shard its
    name hashes to, no cell may appear twice, and the union must
    reproduce the suite digest — i.e. be exhaustive, not merely large
    enough.  Raises ``ValueError`` with a precise message otherwise.
    """
    if not documents:
        raise ValueError("no documents to merge")
    for document in documents:
        version = document.get("version", 0)
        if version < 6 or document.get("shard") is None:
            raise ValueError(
                "bench-merge requires schema v6+ shard documents "
                f"(got version {version})"
            )
    shards = [document["shard"] for document in documents]
    for key in ("count", "suite_digest", "suite_cells"):
        values = {shard[key] for shard in shards}
        if len(values) > 1:
            raise ValueError(
                f"documents disagree on shard {key}: {sorted(values)} — "
                "they do not belong to the same suite run"
            )
    count = shards[0]["count"]
    indices = sorted(shard["index"] for shard in shards)
    if indices != list(range(count)):
        raise ValueError(
            f"shard indices {indices} do not cover 0..{count - 1} exactly "
            "once — a shard leg is missing or duplicated"
        )
    entries: dict[str, dict] = {}
    for document, shard in zip(documents, shards):
        for entry in document["results"]:
            name = entry["name"]
            if name in entries:
                raise ValueError(f"cell {name!r} appears in more than one shard")
            owner = cell_shard(name, count)
            if owner != shard["index"]:
                raise ValueError(
                    f"cell {name!r} found on shard {shard['index']} but "
                    f"hashes to shard {owner} — the partition is corrupt"
                )
            entries[name] = entry
    expected_cells = shards[0]["suite_cells"]
    if len(entries) != expected_cells:
        raise ValueError(
            f"merged run covers {len(entries)} cells but the suite has "
            f"{expected_cells} — cells are missing"
        )
    merged_digest = suite_digest(list(entries))
    if merged_digest != shards[0]["suite_digest"]:
        raise ValueError(
            "merged cell set does not reproduce the suite digest — the "
            "shards cover the right number of cells but not the right ones"
        )
    merged_results = [entries[name] for name in sorted(entries)]
    return {
        "version": 6,
        "created_unix": max(doc.get("created_unix", 0.0) for doc in documents),
        "num_instances": len(merged_results),
        "num_ok": sum(1 for entry in merged_results if entry["status"] == "ok"),
        "shard": {
            "index": 0,
            "count": 1,
            "suite_cells": expected_cells,
            "suite_digest": merged_digest,
            "merged_from": count,
        },
        "journal_digest": None,
        "results": merged_results,
    }


def save_document(document: dict, path: str | os.PathLike) -> None:
    """Persist a raw document (e.g. a :func:`merge_documents` union)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def strategy_horizons(
    results: Sequence[BenchResult], strategy: str
) -> dict[tuple[str, str], int]:
    """Horizons attempted per (layout, instance) by *strategy*'s SMT runs."""
    horizons: dict[tuple[str, str], int] = {}
    for result in results:
        payload = result.payload
        if result.suite != "smt" or payload.get("strategy") != strategy:
            continue
        key = (payload.get("layout"), payload.get("instance"))
        horizons[key] = payload.get("num_horizons", len(payload.get("stages_tried", [])))
    return horizons


def check_bisection_regression(
    linear_results: Sequence[BenchResult],
    bisection_results: Sequence[BenchResult],
    layout: str = "bottom",
    instance: str = "triangle",
) -> tuple[int, int]:
    """Horizon counts of linear vs bisection on the multi-horizon smoke instance.

    Returns ``(linear_horizons, bisection_horizons)`` for the given (layout,
    instance) cell; raises ``ValueError`` when either batch lacks it.  The CI
    bench-regression job fails when the bisection count is not strictly
    smaller.
    """
    key = (layout, instance)
    linear = strategy_horizons(linear_results, "linear").get(key)
    bisection = strategy_horizons(bisection_results, "bisection").get(key)
    if linear is None or bisection is None:
        raise ValueError(
            f"batches do not both cover the smoke instance {layout}/{instance}"
        )
    return linear, bisection


def check_bounds_soundness(
    results: Sequence[BenchResult],
    expect_clique: Optional[dict[str, int]] = None,
) -> int:
    """Certify the analytic bounds of every SMT payload in a batch.

    Every ``ok`` SMT result that certified an optimum must satisfy
    ``lower_bound <= num_stages <= upper_bound`` (the upper-bound half only
    when a structured witness existed), and both bounds must carry their
    certificate provenance (schema v5 ``lower_bound_source`` /
    ``upper_bound_source``).  *expect_clique* maps instance names to the
    minimum lower bound their clique certificate guarantees (the CI gate
    pins the triangle to 3); the check fails when a matching payload
    reports less.  Returns the number of certified cells checked; raises
    ``ValueError`` on the first violation or when no cell qualifies.
    """
    checked = 0
    for result in results:
        payload = result.payload
        if result.suite != "smt" or not result.ok:
            continue
        if not (payload.get("found") and payload.get("optimal")):
            continue
        name = result.name
        stages = payload.get("num_stages")
        lower = payload.get("lower_bound")
        upper = payload.get("upper_bound")
        if lower is None or stages is None:
            raise ValueError(f"{name}: payload lacks lower_bound/num_stages")
        if lower > stages:
            raise ValueError(
                f"{name}: analytic lower bound {lower} exceeds the certified "
                f"optimum {stages} — a certificate is unsound"
            )
        if not payload.get("lower_bound_source"):
            raise ValueError(f"{name}: lower bound lacks its certificate source")
        if upper is not None:
            if stages > upper:
                raise ValueError(
                    f"{name}: certified optimum {stages} exceeds the "
                    f"structured upper bound {upper} — the witness is unsound"
                )
            if not payload.get("upper_bound_source"):
                raise ValueError(
                    f"{name}: upper bound lacks its witness source"
                )
        expected = (expect_clique or {}).get(payload.get("instance"))
        if expected is not None and lower < expected:
            raise ValueError(
                f"{name}: lower bound {lower} below the clique certificate "
                f"value {expected}"
            )
        checked += 1
    if not checked:
        raise ValueError("batch contains no certified SMT cells to check")
    return checked


def check_portfolio_regression(
    baseline_results: Sequence[BenchResult],
    portfolio_results: Sequence[BenchResult],
    baseline_strategy: str = "bisection",
) -> list[tuple[str, str]]:
    """Certify the portfolio against a single-strategy baseline batch.

    For every (layout, instance) cell present in both batches the portfolio
    must have found a schedule, certified optimality, recorded a winning
    configuration, and reached exactly the baseline's optimal stage count.
    Returns the list of compared cells; raises ``ValueError`` on the first
    violated cell or when the batches share no cells — the CI
    bench-regression job turns that into a failure.
    """

    def stage_counts(results: Sequence[BenchResult], strategy: str) -> dict:
        cells = {}
        for result in results:
            payload = result.payload
            if result.suite != "smt" or payload.get("strategy") != strategy:
                continue
            cells[(payload.get("layout"), payload.get("instance"))] = payload
        return cells

    baseline = stage_counts(baseline_results, baseline_strategy)
    portfolio = stage_counts(portfolio_results, "portfolio")
    shared = sorted(set(baseline) & set(portfolio))
    if not shared:
        raise ValueError("batches share no (layout, instance) cells to compare")
    for cell in shared:
        expected = baseline[cell]
        actual = portfolio[cell]
        if not (expected.get("found") and expected.get("optimal")):
            raise ValueError(f"{cell}: baseline {baseline_strategy} did not certify")
        if not (actual.get("found") and actual.get("optimal")):
            raise ValueError(f"{cell}: portfolio failed to certify an optimum")
        if actual.get("num_stages") != expected.get("num_stages"):
            raise ValueError(
                f"{cell}: portfolio found {actual.get('num_stages')} stages, "
                f"{baseline_strategy} certified {expected.get('num_stages')}"
            )
        if not actual.get("winner"):
            raise ValueError(f"{cell}: portfolio did not record a winner")
    return shared


def check_backend_agreement(
    first_results: Sequence[BenchResult],
    second_results: Sequence[BenchResult],
    expect_cells: Optional[int] = None,
) -> list[tuple[str, str, str]]:
    """Certify that two SMT batches agree on every shared optimum.

    The batches are keyed by (strategy, layout, instance) — the same suite
    run under two different SAT backends, one backend per batch.  Every
    shared cell must be found+optimal in both batches with identical stage
    counts, and each batch must record which backend produced it.  Returns
    the compared cells; raises ``ValueError`` on the first disagreement,
    when the batches share no cells, or when a batch mixes backends (a
    multi-backend batch would silently shadow all but one backend's result
    per cell — split it per backend before comparing).

    Only ``ok`` results enter the comparison, so an instance that errored
    or timed out under one backend simply drops out of the shared set —
    pass *expect_cells* to turn that silent coverage loss into a failure
    (the CI backend-matrix job pins it to the suite size).
    """

    def cells(results: Sequence[BenchResult]) -> dict[tuple[str, str, str], dict]:
        mapping = {}
        for result in results:
            payload = result.payload
            if result.suite != "smt" or not result.ok:
                continue
            key = (
                payload.get("strategy"),
                payload.get("layout"),
                payload.get("instance"),
            )
            previous = mapping.get(key)
            if previous is not None and previous.get("sat_backend") != payload.get(
                "sat_backend"
            ):
                raise ValueError(
                    f"{key}: batch mixes SAT backends "
                    f"({previous.get('sat_backend')!r} vs "
                    f"{payload.get('sat_backend')!r}); compare "
                    "single-backend batches"
                )
            mapping[key] = payload
        return mapping

    first = cells(first_results)
    second = cells(second_results)
    shared = sorted(set(first) & set(second))
    if not shared:
        raise ValueError("batches share no (strategy, layout, instance) cells")
    if expect_cells is not None and len(shared) != expect_cells:
        raise ValueError(
            f"expected {expect_cells} comparable cells but only {len(shared)} "
            "are ok in both batches — instances errored or timed out"
        )
    for cell in shared:
        a, b = first[cell], second[cell]
        backends = (a.get("sat_backend"), b.get("sat_backend"))
        if not all(backends):
            raise ValueError(f"{cell}: a batch does not record its SAT backend")
        for payload, backend in ((a, backends[0]), (b, backends[1])):
            if not (payload.get("found") and payload.get("optimal")):
                raise ValueError(
                    f"{cell}: backend {backend!r} failed to certify an optimum"
                )
        if a.get("num_stages") != b.get("num_stages"):
            raise ValueError(
                f"{cell}: backend {backends[0]!r} certified "
                f"{a.get('num_stages')} stages but backend {backends[1]!r} "
                f"certified {b.get('num_stages')}"
            )
    return shared


def format_batch(results: Sequence[BenchResult]) -> str:
    """Human-readable summary table of a batch run."""
    lines = [f"{'Instance':<42}{'Status':>9}{'Time[s]':>9}  Details"]
    for result in results:
        details = ""
        payload = result.payload
        if result.suite == "smt" and payload.get("found"):
            upper = payload.get("upper_bound")
            details = (
                f"stages={payload['num_stages']} "
                f"tried={payload['stages_tried']} "
                f"bounds=[{payload.get('lower_bound')},{'-' if upper is None else upper}]"
            )
        elif result.suite == "table1" and result.ok:
            details = (
                f"#R={payload['num_rydberg_stages']} #T={payload['num_transfer_stages']} "
                f"ASP={payload['asp']:.3f}"
            )
        elif result.suite == "exploration" and result.ok:
            details = f"{len(payload['design_points'])} design points"
        elif result.error:
            details = result.error
        lines.append(f"{result.name:<42}{result.status:>9}{result.seconds:>9.2f}  {details}")
    ok = sum(1 for r in results if r.ok)
    lines.append(f"{ok}/{len(results)} instances ok")
    return "\n".join(lines)
