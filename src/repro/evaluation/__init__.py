"""Reproduction harness for the paper's evaluation (Table I and Figure 4)."""

from repro.evaluation.table1 import (
    LayoutResult,
    Table1Row,
    format_table1,
    run_table1,
    run_table1_row,
)
from repro.evaluation.figure4 import Figure4Bar, figure4_from_rows, format_figure4
from repro.evaluation.exploration import ExplorationResult, run_architecture_exploration

__all__ = [
    "ExplorationResult",
    "Figure4Bar",
    "LayoutResult",
    "Table1Row",
    "figure4_from_rows",
    "format_figure4",
    "format_table1",
    "run_architecture_exploration",
    "run_table1",
    "run_table1_row",
]
