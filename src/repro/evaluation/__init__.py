"""Reproduction harness for the paper's evaluation (Table I and Figure 4)."""

from repro.evaluation.table1 import (
    LayoutResult,
    Table1Row,
    format_table1,
    run_table1,
    run_table1_row,
)
from repro.evaluation.figure4 import Figure4Bar, figure4_from_rows, format_figure4
from repro.evaluation.exploration import ExplorationResult, run_architecture_exploration
from repro.evaluation.runner import (
    BenchInstance,
    BenchResult,
    build_suite,
    format_batch,
    load_results,
    run_batch,
    save_results,
)

__all__ = [
    "BenchInstance",
    "BenchResult",
    "ExplorationResult",
    "Figure4Bar",
    "LayoutResult",
    "Table1Row",
    "build_suite",
    "figure4_from_rows",
    "format_batch",
    "format_figure4",
    "format_table1",
    "load_results",
    "run_architecture_exploration",
    "run_batch",
    "run_table1",
    "run_table1_row",
    "save_results",
]
