"""Reproduction harness for the paper's evaluation (Table I and Figure 4)."""

from repro.evaluation.table1 import (
    LayoutResult,
    Table1Row,
    format_table1,
    run_table1,
    run_table1_row,
)
from repro.evaluation.figure4 import Figure4Bar, figure4_from_rows, format_figure4
from repro.evaluation.exploration import ExplorationResult, run_architecture_exploration
from repro.evaluation.journal import (
    BenchJournal,
    load_journal,
    plan_resume,
    suite_digest,
)
from repro.evaluation.runner import (
    BenchInstance,
    BenchResult,
    build_suite,
    cell_shard,
    format_batch,
    load_document,
    load_results,
    merge_documents,
    run_batch,
    save_document,
    save_results,
    shard_info,
    shard_suite,
)
from repro.evaluation.trend import (
    TrendReport,
    compare_documents,
    compare_paths,
    format_trend,
    format_trend_markdown,
    save_trend,
)

__all__ = [
    "BenchInstance",
    "BenchJournal",
    "BenchResult",
    "ExplorationResult",
    "Figure4Bar",
    "LayoutResult",
    "Table1Row",
    "TrendReport",
    "build_suite",
    "cell_shard",
    "compare_documents",
    "compare_paths",
    "figure4_from_rows",
    "format_batch",
    "format_figure4",
    "format_table1",
    "format_trend",
    "format_trend_markdown",
    "load_document",
    "load_journal",
    "load_results",
    "merge_documents",
    "plan_resume",
    "run_architecture_exploration",
    "run_batch",
    "run_table1",
    "run_table1_row",
    "save_document",
    "save_results",
    "save_trend",
    "shard_info",
    "shard_suite",
    "suite_digest",
]
