"""Persistent warm worker pool for the bench fleet and the service.

PR 6's bench fleet ran one :class:`multiprocessing.Process` per in-flight
cell: fault isolation was perfect, but every cell paid a fresh interpreter
fork plus a cold import of the whole scheduling stack, and the racing
primitive (:func:`race_to_first`) duplicated the pool machinery on
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module generalises
both into one substrate: a pool of *persistent* workers that execute
picklable ``fn(arg)`` tasks back to back, amortising warm-up across tasks,
while keeping the fleet's fault-tolerance contract:

* a worker **crash** (killed, OOM-ed, ``os._exit``) is an isolated,
  attributable event — the task is reported as ``"crashed"`` with the exit
  code and a replacement worker is spawned; the pool never cascades into a
  ``BrokenProcessPool``-style failure;
* a task that overruns its **timeout** has its worker terminated (and
  replaced), reported as ``"timeout"``; cooperative
  :class:`~repro.core.budget.DeadlineExceeded` preemptions inside the
  worker are also ``"timeout"``, with the worker surviving to take the
  next task;
* **shutdown** (normal, error, ``KeyboardInterrupt``) terminates and joins
  every worker, so no child outlives the pool;
* **health checks**: :meth:`WorkerPool.health` reports per-worker
  liveness/busyness/task counts from the parent's bookkeeping, and
  :meth:`WorkerPool.stats` aggregates spawn/restart/completion counters —
  the service's ``/v1/healthz`` endpoint surfaces both.

The pool is single-threaded by design: one owner thread calls
:meth:`submit`/:meth:`poll`; results are delivered as
:class:`TaskOutcome` batches from :meth:`poll`.  (The service bridges this
to asyncio with a dispatcher thread; the bench runner drives it directly.)
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Optional, Sequence

from repro.core.budget import DeadlineExceeded

#: Outcome statuses a task can end with.
TASK_OK = "ok"
TASK_ERROR = "error"
TASK_TIMEOUT = "timeout"
TASK_CRASHED = "crashed"


@dataclass
class TaskOutcome:
    """Terminal report of one submitted task.

    ``status`` is ``"ok"`` (``value`` holds the return value), ``"error"``
    (the task raised; ``error`` holds ``TypeName: message``), ``"timeout"``
    (cooperative ``DeadlineExceeded`` or the harness timeout), or
    ``"crashed"`` (the worker died without reporting; ``exitcode`` holds
    its exit code).  ``seconds`` measures execution, not queueing.
    """

    task_id: int
    status: str
    value: object = None
    error: Optional[str] = None
    seconds: float = 0.0
    worker_pid: Optional[int] = None
    exitcode: Optional[int] = None


@dataclass
class _Task:
    task_id: int
    fn: Callable
    arg: object
    timeout: Optional[float]
    started: float = 0.0


@dataclass
class _Worker:
    ident: int
    process: multiprocessing.Process
    conn: object
    tasks_completed: int = 0
    task: Optional[_Task] = None


def _worker_main(conn, warmup) -> None:
    """Long-lived worker loop: receive tasks, execute, report, repeat.

    A worker reports ``("ok", id, value, seconds)``, ``("timeout", id,
    message, seconds)`` (cooperative preemption) or ``("error", id,
    message, seconds)``; dying without reporting is a crash the parent
    attributes via the process sentinel and exit code.
    """
    if warmup is not None:
        try:
            warmup()
        except Exception:  # noqa: BLE001 - warm-up is an optimisation only
            pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away
        if message[0] == "stop":
            break
        _, task_id, fn, arg = message
        start = time.monotonic()
        try:
            value = fn(arg)
        except DeadlineExceeded as exc:
            # Cooperative preemption beats the parent's terminate(): the
            # task is a clean timeout and this worker survives to take the
            # next one.
            reply = ("timeout", task_id, str(exc), time.monotonic() - start)
        except BaseException as exc:  # noqa: BLE001 - reported per task
            reply = (
                "error",
                task_id,
                f"{type(exc).__name__}: {exc}",
                time.monotonic() - start,
            )
        else:
            reply = ("ok", task_id, value, time.monotonic() - start)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


class WorkerPool:
    """A fixed-size pool of persistent worker processes.

    *jobs* workers are spawned eagerly (warm by the time the first task
    lands); *warmup*, when given, is a picklable zero-argument callable
    each worker runs once before its task loop — e.g. importing the
    scheduling stack so tasks only pay solver time.
    """

    def __init__(
        self,
        jobs: int,
        warmup: Optional[Callable[[], None]] = None,
        name: str = "pool",
    ):
        if jobs < 1:
            raise ValueError("a pool needs at least one worker")
        self.name = name
        self._jobs = jobs
        self._warmup = warmup
        self._ctx = multiprocessing.get_context()
        self._next_task_id = 0
        self._next_worker_ident = 0
        self._backlog: deque[_Task] = deque()
        self._spawned = 0
        self._restarts = 0
        self._tasks_completed = 0
        self._closed = False
        self._workers: list[_Worker] = [self._spawn() for _ in range(jobs)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._warmup),
            daemon=True,
            name=f"{self.name}-worker-{self._next_worker_ident}",
        )
        process.start()
        child_conn.close()
        worker = _Worker(
            ident=self._next_worker_ident, process=process, conn=parent_conn
        )
        self._next_worker_ident += 1
        self._spawned += 1
        return worker

    def _restart(self, worker: _Worker, terminate: bool) -> None:
        """Replace a dead or overrunning worker with a fresh one."""
        if terminate:
            _terminate_process(worker.process)
        else:
            _reap_process(worker.process)
        worker.conn.close()
        self._restarts += 1
        self._workers[self._workers.index(worker)] = self._spawn()

    def shutdown(self) -> None:
        """Terminate and join every worker; idempotent, never raises late.

        Idle workers are asked to stop and briefly joined (a clean exit
        keeps coverage/atexit hooks intact); anything still alive after
        that — busy workers included — is terminated and joined, so no
        child outlives the pool even on ``KeyboardInterrupt``.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.task is None and worker.process.is_alive():
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            try:
                if worker.task is None:
                    worker.process.join(timeout=1.0)
                _terminate_process(worker.process)
            finally:
                worker.conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Work
    # ------------------------------------------------------------------ #
    def submit(
        self, fn: Callable, arg: object, timeout: Optional[float] = None
    ) -> int:
        """Queue ``fn(arg)`` for execution; returns the task id.

        The task starts immediately when a worker is idle, otherwise it
        waits in the pool's backlog and is dispatched by :meth:`poll` as
        workers free up.  *timeout* bounds execution (not queueing): an
        overrunning worker is terminated and the task reported as
        ``"timeout"``.
        """
        if self._closed:
            raise ValueError("pool is shut down")
        task = _Task(task_id=self._next_task_id, fn=fn, arg=arg, timeout=timeout)
        self._next_task_id += 1
        worker = self._idle_worker()
        if worker is not None:
            self._dispatch(worker, task)
        else:
            self._backlog.append(task)
        return task.task_id

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if worker.task is None:
                return worker
        return None

    def _dispatch(self, worker: _Worker, task: _Task) -> None:
        # An idle worker can die between tasks (externally killed); the
        # send fails rather than the task, so replace and retry once.
        try:
            worker.conn.send(("task", task.task_id, task.fn, task.arg))
        except (BrokenPipeError, OSError):
            self._restart(worker, terminate=False)
            replacement = self._idle_worker()
            assert replacement is not None
            replacement.conn.send(("task", task.task_id, task.fn, task.arg))
            worker = replacement
        task.started = time.monotonic()
        worker.task = task

    def idle_count(self) -> int:
        """Number of workers ready for an immediate dispatch."""
        if self._backlog:
            return 0
        return sum(1 for worker in self._workers if worker.task is None)

    def busy_count(self) -> int:
        return sum(1 for worker in self._workers if worker.task is not None)

    def backlog_size(self) -> int:
        return len(self._backlog)

    def poll(self, timeout: float = 0.2) -> list[TaskOutcome]:
        """Collect finished tasks, enforcing timeouts and crash-restart.

        Blocks up to *timeout* seconds for a worker to report or die (the
        interval also paces timeout enforcement), then drains every
        available event and dispatches backlog tasks onto freed workers.
        Returns immediately with ``[]`` when nothing is in flight.
        """
        busy = [worker for worker in self._workers if worker.task is not None]
        if busy and timeout > 0:
            handles = [worker.conn for worker in busy]
            handles += [worker.process.sentinel for worker in busy]
            connection_wait(handles, timeout=timeout)
        now = time.monotonic()
        outcomes: list[TaskOutcome] = []
        for worker in list(self._workers):
            task = worker.task
            if task is None:
                continue
            message = None
            if worker.conn.poll():
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None  # died mid-send: treat as a crash
            if message is not None:
                status, task_id, body, seconds = message
                outcomes.append(
                    TaskOutcome(
                        task_id=task_id,
                        status=status,
                        value=body if status == TASK_OK else None,
                        error=None if status == TASK_OK else body,
                        seconds=seconds,
                        worker_pid=worker.process.pid,
                    )
                )
                worker.task = None
                worker.tasks_completed += 1
                self._tasks_completed += 1
            elif not worker.process.is_alive():
                exitcode = worker.process.exitcode
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status=TASK_CRASHED,
                        error=f"worker crashed (exit code {exitcode})",
                        seconds=now - task.started,
                        worker_pid=worker.process.pid,
                        exitcode=exitcode,
                    )
                )
                self._tasks_completed += 1
                self._restart(worker, terminate=False)
            elif task.timeout is not None and now - task.started > task.timeout:
                outcomes.append(
                    TaskOutcome(
                        task_id=task.task_id,
                        status=TASK_TIMEOUT,
                        error=f"exceeded {task.timeout:.0f}s harness timeout",
                        seconds=now - task.started,
                        worker_pid=worker.process.pid,
                    )
                )
                self._tasks_completed += 1
                self._restart(worker, terminate=True)
        while self._backlog:
            worker = self._idle_worker()
            if worker is None:
                break
            self._dispatch(worker, self._backlog.popleft())
        return outcomes

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    def health(self) -> list[dict]:
        """Per-worker health snapshot (parent-side bookkeeping, no IPC)."""
        return [
            {
                "worker": worker.ident,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "busy": worker.task is not None,
                "tasks_completed": worker.tasks_completed,
            }
            for worker in self._workers
        ]

    def stats(self) -> dict:
        """Aggregate pool counters (includes the crash-restart count)."""
        return {
            "jobs": self._jobs,
            "workers_spawned": self._spawned,
            "worker_restarts": self._restarts,
            "tasks_completed": self._tasks_completed,
            "backlog": len(self._backlog),
            "busy": self.busy_count(),
        }


def _reap_process(process: multiprocessing.Process) -> None:
    """Join a finished worker (it exited or is exiting after reporting)."""
    process.join(timeout=10.0)
    if process.is_alive():  # pragma: no cover - defensive
        process.kill()
        process.join(timeout=10.0)


def _terminate_process(process: multiprocessing.Process) -> None:
    """Terminate a live worker and wait until it is really gone."""
    if process.is_alive():
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)
    else:
        process.join(timeout=5.0)


# --------------------------------------------------------------------------- #
# Racing
# --------------------------------------------------------------------------- #
@dataclass
class RaceOutcome:
    """Result of a :func:`race_to_first` run."""

    #: Index of the first task whose result was accepted (None: no winner).
    winner_index: Optional[int]
    #: The accepted result itself (None when no winner).
    winner: object
    #: Results of every task that completed before the race was decided,
    #: keyed by task index (includes the winner).
    finished: dict[int, object] = field(default_factory=dict)
    #: Tasks that raised (or whose worker crashed), keyed by task index.
    errors: dict[int, str] = field(default_factory=dict)
    #: Tasks cancelled or terminated because the race was already won.
    cancelled: list[int] = field(default_factory=list)
    seconds: float = 0.0


def race_to_first(
    fn,
    tasks: Sequence,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    accept=None,
) -> RaceOutcome:
    """Run ``fn(task)`` for every task across worker processes; first
    acceptable result wins and the losers are cancelled/terminated.

    This is the racing counterpart of the bench fleet: same
    :class:`WorkerPool` substrate, but the batch stops at the first result
    for which ``accept(result)`` is true (default: any result).  Queued
    tasks are cancelled; workers still grinding on a loser are terminated
    by the pool shutdown.  Among results arriving in the same poll
    interval the lowest task index wins, which keeps the outcome
    deterministic when several tasks finish near-simultaneously.  A task
    that raises (or whose worker crashes) is recorded in ``errors`` and
    the race continues.  With no acceptable result the race returns
    ``winner_index=None`` and every completed result in ``finished``.
    *timeout* bounds the whole race (seconds); on expiry the still-running
    tasks are treated as cancelled.
    """
    if accept is None:
        def accept(result):  # default: any completed result wins
            return True
    start = time.monotonic()
    jobs = max(1, min(len(tasks), jobs or os.cpu_count() or 1))
    outcome = RaceOutcome(winner_index=None, winner=None)
    deadline = start + timeout if timeout is not None else None
    with WorkerPool(jobs, name="race") as pool:
        index_of = {
            pool.submit(fn, task): index for index, task in enumerate(tasks)
        }
        pending = set(index_of.values())
        while pending and outcome.winner_index is None:
            events = pool.poll(timeout=0.5)
            for event in sorted(events, key=lambda e: index_of[e.task_id]):
                index = index_of[event.task_id]
                pending.discard(index)
                if event.status != TASK_OK:
                    outcome.errors[index] = event.error or event.status
                    continue
                outcome.finished[index] = event.value
                if outcome.winner_index is None and accept(event.value):
                    outcome.winner_index = index
                    outcome.winner = event.value
            if deadline is not None and time.monotonic() > deadline:
                break
        outcome.cancelled = sorted(pending)
    outcome.seconds = time.monotonic() - start
    return outcome
