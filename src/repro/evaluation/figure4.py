"""Reproduction of Figure 4 (ASP improvement of the shielded layouts).

The figure plots, for every code, the difference in ASP between each
storage-equipped layout (2: bottom storage, 3: double-sided storage) and the
no-shielding baseline (layout 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.table1 import Table1Row

#: The layout that serves as the baseline of the differences.
BASELINE_LAYOUT = "(1) No Shielding"


@dataclass
class Figure4Bar:
    """One bar of Figure 4: ASP difference of a layout vs. the baseline."""

    code: str
    label: str
    layout: str
    asp_baseline: float
    asp_layout: float

    @property
    def delta_asp(self) -> float:
        """ASP improvement over the no-shielding baseline."""
        return self.asp_layout - self.asp_baseline


def figure4_from_rows(rows: Sequence[Table1Row]) -> list[Figure4Bar]:
    """Derive the Figure 4 bars from Table I results."""
    bars: list[Figure4Bar] = []
    for row in rows:
        if BASELINE_LAYOUT not in row.layouts:
            raise ValueError(f"row {row.code!r} lacks the baseline layout")
        baseline = row.layouts[BASELINE_LAYOUT].asp
        for layout_name, result in row.layouts.items():
            if layout_name == BASELINE_LAYOUT:
                continue
            bars.append(
                Figure4Bar(
                    code=row.code,
                    label=row.label,
                    layout=layout_name,
                    asp_baseline=baseline,
                    asp_layout=result.asp,
                )
            )
    return bars


def format_figure4(bars: Sequence[Figure4Bar]) -> str:
    """ASCII rendering of Figure 4 (one bar per code and layout)."""
    if not bars:
        return "(no data)"
    scale = max(abs(bar.delta_asp) for bar in bars) or 1.0
    lines = [f"{'Code':<26}{'Layout':<28}{'dASP':>8}  bar"]
    for bar in bars:
        width = int(round(40 * abs(bar.delta_asp) / scale))
        glyph = "#" * width if bar.delta_asp >= 0 else "-" * width
        lines.append(f"{bar.label:<26}{bar.layout:<28}{bar.delta_asp:>+8.3f}  {glyph}")
    return "\n".join(lines)
