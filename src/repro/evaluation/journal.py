"""Per-cell completion journal for resumable benchmark suites.

A bench run that dies halfway — machine preempted, worker OOM-killed,
operator ^C — used to restart the whole suite from scratch: the output
JSON is written once at the end, so a crash loses every completed cell.
The journal fixes that with an **append-only JSONL file next to the
output JSON** that records the life cycle of every cell as it happens:

``{"event": "suite", ...}``
    Header line written when a (new) journal is opened: the full expanded
    cell list, its order-independent digest, and the shard assignment of
    this run.  Resuming validates the header against the rebuilt suite so
    a journal can never silently resume a *different* suite.

``{"event": "start", "cell": ..., "attempt": k}``
    Appended immediately before a cell's k-th execution attempt begins.
    A ``start`` with no matching ``done`` means the attempt never finished
    — the worker (or the whole harness) was killed mid-cell.

``{"event": "done", "cell": ..., "result": {...}}``
    Appended when an attempt produces a terminal
    :class:`~repro.evaluation.runner.BenchResult` (``ok`` / ``error`` /
    ``timeout`` / ``failed``), carrying the full serialised result.

Because every line is flushed and fsync-free appends are atomic at these
sizes, the journal survives ``SIGKILL`` at any point with at most the
in-flight cells unaccounted for — exactly the cells a resumed run must
re-queue.  :func:`plan_resume` turns a loaded journal plus the rebuilt
suite into (results to carry forward, cells still to run, next attempt
numbers), applying the retry policy:

* ``ok`` / ``error`` / ``failed`` results are **carried** — they are
  terminal outcomes (an ``error`` is a deterministic exception, rerunning
  it buys nothing).
* ``timeout`` results and crashed attempts (``start`` without ``done``)
  are **re-queued**, unless the cell already burned ``1 + max_retries``
  attempts, in which case it is carried as ``status: "failed"`` so the
  suite completes instead of wedging on a poisoned cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import IO, Optional, Sequence

#: Journal format version, bumped on incompatible line-shape changes.
JOURNAL_VERSION = 1


def suite_digest(cell_names: Sequence[str]) -> str:
    """Order-independent SHA-256 digest of a suite's expanded cell list.

    The digest identifies the *cell set*, not the execution order, so the
    n shard journals of one suite and its unsharded journal all validate
    against the same value and ``bench-merge`` can prove exhaustiveness.
    """
    hasher = hashlib.sha256()
    for name in sorted(cell_names):
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def file_digest(path: str | os.PathLike) -> str:
    """SHA-256 of a file's bytes (the ``journal_digest`` payload field)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class BenchJournal:
    """Append-only writer for one run's journal file.

    The writer is line-buffered and flushes after every event so the
    journal is crash-consistent: a ``SIGKILL`` loses at most the line
    being written, and :func:`load_journal` tolerates a torn final line.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def write_header(
        self,
        cell_names: Sequence[str],
        shard: Optional[dict] = None,
    ) -> None:
        """Record the suite identity (skipped when resuming an old journal)."""
        self._append(
            {
                "event": "suite",
                "journal_version": JOURNAL_VERSION,
                "cells": list(cell_names),
                "suite_digest": suite_digest(cell_names),
                "shard": shard,
                "created_unix": time.time(),
            }
        )

    def record_start(self, cell: str, attempt: int) -> None:
        self._append({"event": "start", "cell": cell, "attempt": attempt})

    def record_done(self, cell: str, attempt: int, result_entry: dict) -> None:
        """Record a terminal attempt; *result_entry* is ``asdict(BenchResult)``."""
        self._append(
            {"event": "done", "cell": cell, "attempt": attempt, "result": result_entry}
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BenchJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _append(self, record: dict) -> None:
        if self._handle is None:  # pragma: no cover - misuse guard
            raise ValueError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()


@dataclass
class JournalState:
    """Parsed view of a journal file."""

    path: str
    #: Cell list from the header (None when the journal has no header —
    #: e.g. it was truncated to nothing).
    cells: Optional[list[str]] = None
    suite_digest: Optional[str] = None
    shard: Optional[dict] = None
    #: Highest attempt number *started* per cell.
    attempts: dict[str, int] = field(default_factory=dict)
    #: Last terminal result entry per cell (``asdict(BenchResult)`` shape).
    completed: dict[str, dict] = field(default_factory=dict)

    def crashed_cells(self) -> list[str]:
        """Cells with a started attempt but no terminal result."""
        return [cell for cell in self.attempts if cell not in self.completed]


def load_journal(path: str | os.PathLike) -> JournalState:
    """Parse a journal file, tolerating a torn (half-written) final line."""
    state = JournalState(path=os.fspath(path))
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A kill mid-append can tear the last line; everything
                # before it is still valid, so keep what parsed.
                continue
            event = record.get("event")
            if event == "suite":
                state.cells = list(record.get("cells") or [])
                state.suite_digest = record.get("suite_digest")
                state.shard = record.get("shard")
            elif event == "start":
                cell = record["cell"]
                attempt = int(record.get("attempt", 1))
                state.attempts[cell] = max(state.attempts.get(cell, 0), attempt)
            elif event == "done":
                cell = record["cell"]
                attempt = int(record.get("attempt", 1))
                state.attempts[cell] = max(state.attempts.get(cell, 0), attempt)
                state.completed[cell] = record["result"]
    return state


@dataclass
class ResumePlan:
    """Outcome of :func:`plan_resume`: what to carry, what to rerun."""

    #: Carried-forward results keyed by suite index (``asdict`` shape);
    #: includes cells force-failed because their retry budget is spent.
    carried: dict[int, dict] = field(default_factory=dict)
    #: ``(suite_index, next_attempt)`` for every cell still to run.
    pending: list[tuple[int, int]] = field(default_factory=list)
    #: Cells re-queued because a previous attempt crashed or timed out.
    requeued: list[str] = field(default_factory=list)
    #: Cells force-failed because ``1 + max_retries`` attempts were spent.
    exhausted: list[str] = field(default_factory=list)


#: Result statuses that are terminal for resume purposes; ``timeout`` is
#: deliberately absent — a timed-out cell is re-queued on resume.
_TERMINAL_STATUSES = frozenset({"ok", "error", "failed"})


def plan_resume(
    cell_names: Sequence[str],
    state: JournalState,
    max_retries: int = 2,
) -> ResumePlan:
    """Partition *cell_names* into carried results and cells still to run.

    Raises ``ValueError`` when the journal belongs to a different suite
    (digest mismatch) — resuming someone else's journal would silently
    drop or duplicate cells.
    """
    names = list(cell_names)
    if state.suite_digest is not None:
        expected = suite_digest(names)
        if state.suite_digest != expected:
            raise ValueError(
                f"journal {state.path} records suite digest "
                f"{state.suite_digest[:12]}… but the rebuilt suite has "
                f"{expected[:12]}… — it belongs to a different suite "
                "(same bench arguments are required to resume)"
            )
    max_attempts = 1 + max(0, max_retries)
    plan = ResumePlan()
    for index, name in enumerate(names):
        attempts = state.attempts.get(name, 0)
        done = state.completed.get(name)
        if done is not None and done.get("status") in _TERMINAL_STATUSES:
            plan.carried[index] = done
            continue
        if attempts >= max_attempts:
            # Crash/timeout with the retry budget spent: record the cell as
            # failed so the merged payload is complete and the suite does
            # not wedge re-running a poisoned cell forever.
            reason = (
                "timed out" if done is not None else "crashed (no terminal result)"
            )
            plan.carried[index] = {
                "name": name,
                "suite": name.split("/", 1)[0],
                "status": "failed",
                "seconds": (done or {}).get("seconds", 0.0),
                "payload": {},
                "error": f"{reason} after {attempts} attempts",
                "attempts": attempts,
            }
            plan.exhausted.append(name)
            continue
        if attempts:
            plan.requeued.append(name)
        plan.pending.append((index, attempts + 1))
    return plan
