"""Architecture design-space exploration.

Sec. V-C of the paper argues that the approach "allows to evaluate the
benefits of the zoned neutral atom architecture" and "provides valuable
insights for the design of future quantum devices".  This module provides a
small design-space sweep in that spirit: it varies the zone structure (and
optionally the number of AOD lines) and reports the resulting ASP for a
given code, using the same pipeline as the Table I harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    no_shielding_layout,
)
from repro.arch.architecture import ZonedArchitecture
from repro.core.budget import Deadline
from repro.core.problem import SchedulingProblem
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.metrics import approximate_success_probability
from repro.qec import get_code
from repro.qec.state_prep import state_preparation_circuit


@dataclass
class ExplorationResult:
    """Outcome of one design point."""

    code: str
    architecture: str
    num_rydberg_stages: int
    num_transfer_stages: int
    execution_time_ms: float
    asp: float


def default_design_space() -> dict[str, ZonedArchitecture]:
    """The layouts compared by the paper plus AOD-count variations."""
    designs: dict[str, ZonedArchitecture] = {
        "no shielding": no_shielding_layout(),
        "bottom storage": bottom_storage_layout(),
        "double-sided storage": double_sided_storage_layout(),
    }
    return designs


def run_architecture_exploration(
    code_name: str,
    designs: dict[str, ZonedArchitecture] | None = None,
    validate: bool = True,
    deadline: Optional[Deadline] = None,
) -> list[ExplorationResult]:
    """Schedule *code_name*'s preparation circuit on every design point.

    *deadline* makes the sweep cooperatively preemptible: the budget is
    checked before every design point and expiry raises
    :class:`~repro.core.budget.DeadlineExceeded` (how the bench harness's
    serial ``--timeout`` interrupts a sweep mid-flight).
    """
    designs = designs or default_design_space()
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    results: list[ExplorationResult] = []
    for name, architecture in designs.items():
        if deadline is not None:
            deadline.check(f"exploration {code_name}/{name}")
        problem = SchedulingProblem.from_circuit(
            architecture, prep, metadata={"code": code.name}
        )
        schedule = StructuredScheduler().schedule(problem)
        if validate:
            validate_schedule(schedule, require_shielding=problem.shielding)
        breakdown = approximate_success_probability(schedule, prep)
        results.append(
            ExplorationResult(
                code=code_name,
                architecture=name,
                num_rydberg_stages=schedule.num_rydberg_stages,
                num_transfer_stages=schedule.num_transfer_stages,
                execution_time_ms=breakdown.timing.total_ms,
                asp=breakdown.asp,
            )
        )
    return results


def format_exploration(results: Sequence[ExplorationResult]) -> str:
    """Tabular rendering of an exploration sweep."""
    lines = [f"{'Architecture':<28}{'#R':>4}{'#T':>4}{'t[ms]':>9}{'ASP':>8}"]
    for result in results:
        lines.append(
            f"{result.architecture:<28}{result.num_rydberg_stages:>4}"
            f"{result.num_transfer_stages:>4}{result.execution_time_ms:>9.2f}{result.asp:>8.3f}"
        )
    return "\n".join(lines)
