"""CZ-gate layering.

A Rydberg beam executes all CZ gates whose operands are adjacent, so the CZ
gates of a state-preparation circuit must be partitioned into *layers* of
pairwise-disjoint gates.  The minimum number of layers equals the chromatic
index of the interaction graph; for scheduling purposes a good greedy
edge colouring (Vizing-style bound Δ+1, usually Δ) is sufficient as a fast
lower-bound heuristic, while the optimal backends search over assignments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx


def interaction_graph(cz_pairs: Iterable[tuple[int, int]]) -> nx.Graph:
    """Build the interaction (multi-)graph of a CZ-gate list.

    Parallel CZ gates between the same pair would be redundant (CZ² = I), so
    duplicates are collapsed.
    """
    graph = nx.Graph()
    for a, b in cz_pairs:
        if a == b:
            raise ValueError(f"CZ gate with identical operands: ({a}, {b})")
        graph.add_edge(a, b)
    return graph


def cz_layers(cz_pairs: Sequence[tuple[int, int]]) -> list[list[tuple[int, int]]]:
    """Partition CZ gates into layers of qubit-disjoint gates.

    Uses a greedy edge-colouring that processes edges in order of decreasing
    endpoint degree.  On the evaluation codes this achieves the optimum (the
    max degree Δ); in the worst case a greedy colouring may use up to
    2Δ - 1 layers — use :func:`optimal_cz_layers` when minimality matters.
    """
    graph = interaction_graph(cz_pairs)
    if graph.number_of_edges() == 0:
        return []
    degree = dict(graph.degree())
    edges = sorted(
        {(min(a, b), max(a, b)) for a, b in cz_pairs},
        key=lambda edge: -(degree[edge[0]] + degree[edge[1]]),
    )
    layers: list[list[tuple[int, int]]] = []
    layer_qubits: list[set[int]] = []
    for a, b in edges:
        placed = False
        for layer, qubits in zip(layers, layer_qubits):
            if a not in qubits and b not in qubits:
                layer.append((a, b))
                qubits.update((a, b))
                placed = True
                break
        if not placed:
            layers.append([(a, b)])
            layer_qubits.append({a, b})
    return layers


def minimum_layer_count(cz_pairs: Sequence[tuple[int, int]]) -> int:
    """Lower bound on the number of Rydberg stages: the max qubit degree."""
    graph = interaction_graph(cz_pairs)
    if graph.number_of_edges() == 0:
        return 0
    return max(degree for _, degree in graph.degree())


def optimal_cz_layers(
    cz_pairs: Sequence[tuple[int, int]], max_layers: int | None = None
) -> list[list[tuple[int, int]]]:
    """Partition CZ gates into the *minimum* number of disjoint layers.

    Performs an exact chromatic-index search by iterative deepening over the
    layer count, starting from the max-degree lower bound.  Intended for the
    code sizes of the paper's evaluation (tens of edges); raises
    ``ValueError`` if no partition with at most *max_layers* layers exists.
    """
    edges = sorted({(min(a, b), max(a, b)) for a, b in cz_pairs})
    if not edges:
        return []
    lower = minimum_layer_count(edges)
    upper = max_layers if max_layers is not None else len(cz_layers(edges))
    for num_layers in range(lower, upper + 1):
        assignment = _try_color_edges(edges, num_layers)
        if assignment is not None:
            layers: list[list[tuple[int, int]]] = [[] for _ in range(num_layers)]
            for edge, layer in zip(edges, assignment):
                layers[layer].append(edge)
            return [layer for layer in layers if layer]
    raise ValueError(f"no edge colouring with at most {upper} layers found")


def _try_color_edges(
    edges: Sequence[tuple[int, int]], num_layers: int
) -> list[int] | None:
    """Backtracking search for a proper edge colouring with *num_layers* colours."""
    # Order edges by degree of saturation (most conflicting first) statically:
    # process edges incident to high-degree vertices first.
    graph = interaction_graph(edges)
    degree = dict(graph.degree())
    order = sorted(
        range(len(edges)),
        key=lambda i: -(degree[edges[i][0]] + degree[edges[i][1]]),
    )
    assignment = [-1] * len(edges)
    layer_qubits: list[set[int]] = [set() for _ in range(num_layers)]

    def backtrack(position: int) -> bool:
        if position == len(order):
            return True
        index = order[position]
        a, b = edges[index]
        # Symmetry breaking: the first edge may only use layer 0, the second
        # at most layer 1, etc.
        limit = min(num_layers, position + 1)
        for layer in range(limit):
            if a in layer_qubits[layer] or b in layer_qubits[layer]:
                continue
            assignment[index] = layer
            layer_qubits[layer].update((a, b))
            if backtrack(position + 1):
                return True
            assignment[index] = -1
            layer_qubits[layer].discard(a)
            layer_qubits[layer].discard(b)
        return False

    if backtrack(0):
        return assignment
    return None
