"""The rigid state-preparation circuit structure of the paper (Fig. 1b).

A :class:`StatePrepCircuit` consists of

1. initialisation of every physical qubit in ``|+>``,
2. a list of CZ gates creating a graph state, and
3. a final layer of single-qubit Clifford corrections (Hadamards in the CSS
   case, possibly phase/Pauli corrections in general).

Only the CZ list requires scheduling on the zoned architecture; the
single-qubit parts can be executed anywhere (storage or entangling zone) by
rotational gates, exactly as argued in Sec. III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate, GateKind

#: Single-qubit Clifford labels allowed in the final correction layer.
_LOCAL_GATE_SEQUENCES = {
    "I": (),
    "H": (GateKind.H,),
    "S": (GateKind.S,),
    "SDG": (GateKind.SDG,),
    "X": (GateKind.X,),
    "Y": (GateKind.Y,),
    "Z": (GateKind.Z,),
}


@dataclass
class StatePrepCircuit:
    """Structured representation of a logical-state preparation circuit."""

    num_qubits: int
    cz_gates: list[tuple[int, int]]
    #: Per-qubit sequence of single-qubit gate kinds applied *after* the CZ
    #: part (applied left-to-right).
    local_corrections: dict[int, tuple[GateKind, ...]] = field(default_factory=dict)
    #: Human-readable provenance, e.g. the code name.
    name: str = ""

    def __post_init__(self) -> None:
        normalised = []
        for a, b in self.cz_gates:
            if a == b:
                raise ValueError(f"CZ with identical operands: ({a}, {b})")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"CZ operands out of range: ({a}, {b})")
            normalised.append((min(a, b), max(a, b)))
        self.cz_gates = normalised
        for qubit in self.local_corrections:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(f"local correction on unknown qubit {qubit}")

    # ------------------------------------------------------------------ #
    @property
    def num_cz_gates(self) -> int:
        """Number of CZ gates (the #CZ column of Table I)."""
        return len(self.cz_gates)

    def hadamard_qubits(self) -> list[int]:
        """Qubits whose correction layer is exactly one Hadamard."""
        return sorted(
            q
            for q, seq in self.local_corrections.items()
            if seq == (GateKind.H,)
        )

    def to_circuit(self) -> Circuit:
        """Expand to a flat :class:`~repro.circuit.circuit.Circuit`.

        Qubits start in ``|0>``, so the ``|+>`` initialisation becomes an
        initial layer of Hadamards.
        """
        circuit = Circuit(self.num_qubits)
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        for a, b in self.cz_gates:
            circuit.cz(a, b)
        for qubit in sorted(self.local_corrections):
            for kind in self.local_corrections[qubit]:
                circuit.append(Gate(kind, (qubit,)))
        return circuit

    def single_qubit_gate_count(self) -> int:
        """Number of single-qubit gates (initialisation plus corrections)."""
        corrections = sum(len(seq) for seq in self.local_corrections.values())
        return self.num_qubits + corrections

    @classmethod
    def from_circuit(cls, circuit: Circuit, name: str = "") -> "StatePrepCircuit":
        """Recover the structured form from a flat circuit.

        The circuit must have the Fig. 1b shape: a Hadamard on every qubit,
        then CZ gates only, then single-qubit gates only.
        """
        gates = list(circuit.gates)
        n = circuit.num_qubits
        init = gates[:n]
        if len(init) < n or any(
            g.kind is not GateKind.H or g.qubits[0] != q for q, g in enumerate(init)
        ):
            raise ValueError("circuit does not start with H on every qubit in order")
        cz_part: list[tuple[int, int]] = []
        index = n
        while index < len(gates) and gates[index].kind is GateKind.CZ:
            a, b = gates[index].qubits
            cz_part.append((a, b))
            index += 1
        corrections: dict[int, list[GateKind]] = {}
        for gate in gates[index:]:
            if gate.kind.num_qubits != 1:
                raise ValueError("two-qubit gate found after the CZ section")
            corrections.setdefault(gate.qubits[0], []).append(gate.kind)
        return cls(
            num_qubits=n,
            cz_gates=cz_part,
            local_corrections={q: tuple(seq) for q, seq in corrections.items()},
            name=name,
        )
