"""Gate definitions for the circuit IR."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class GateKind(enum.Enum):
    """Supported gate kinds.

    Only Clifford gates appear in state-preparation circuits for stabilizer
    codes, so the set is deliberately small.
    """

    H = "h"
    S = "s"
    SDG = "sdg"
    X = "x"
    Y = "y"
    Z = "z"
    CZ = "cz"
    CX = "cx"

    @property
    def num_qubits(self) -> int:
        """Arity of the gate."""
        return 2 if self in (GateKind.CZ, GateKind.CX) else 1

    @property
    def is_diagonal(self) -> bool:
        """True when the gate is diagonal in the computational basis."""
        return self in (GateKind.S, GateKind.SDG, GateKind.Z, GateKind.CZ)


@dataclass(frozen=True)
class Gate:
    """A gate applied to specific qubits.

    Qubits are integers; two-qubit gates store their operands as a tuple in
    the order given (CZ is symmetric, CX is control/target).
    """

    kind: GateKind
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.qubits) != self.kind.num_qubits:
            raise ValueError(
                f"{self.kind.value} expects {self.kind.num_qubits} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in gate: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in gate: {self.qubits}")

    @classmethod
    def h(cls, qubit: int) -> "Gate":
        """Hadamard."""
        return cls(GateKind.H, (qubit,))

    @classmethod
    def s(cls, qubit: int) -> "Gate":
        """Phase gate S."""
        return cls(GateKind.S, (qubit,))

    @classmethod
    def sdg(cls, qubit: int) -> "Gate":
        """Inverse phase gate S†."""
        return cls(GateKind.SDG, (qubit,))

    @classmethod
    def x(cls, qubit: int) -> "Gate":
        """Pauli X."""
        return cls(GateKind.X, (qubit,))

    @classmethod
    def y(cls, qubit: int) -> "Gate":
        """Pauli Y."""
        return cls(GateKind.Y, (qubit,))

    @classmethod
    def z(cls, qubit: int) -> "Gate":
        """Pauli Z."""
        return cls(GateKind.Z, (qubit,))

    @classmethod
    def cz(cls, a: int, b: int) -> "Gate":
        """Controlled-Z between qubits *a* and *b*."""
        return cls(GateKind.CZ, (a, b))

    @classmethod
    def cx(cls, control: int, target: int) -> "Gate":
        """Controlled-X (CNOT)."""
        return cls(GateKind.CX, (control, target))

    def __str__(self) -> str:
        return f"{self.kind.value} " + " ".join(f"q{q}" for q in self.qubits)
