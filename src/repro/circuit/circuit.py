"""Generic circuit container."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.circuit.gates import Gate, GateKind


class Circuit:
    """An ordered list of gates over ``num_qubits`` qubits.

    The circuit assumes all qubits start in ``|0>``; explicit state
    preparation (e.g. the ``|+>`` initialisation of the paper's circuits) is
    expressed with Hadamard gates.
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = ()) -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self._num_qubits = num_qubits
        self._gates: list[Gate] = []
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the circuit acts on."""
        return self._num_qubits

    @property
    def gates(self) -> Sequence[Gate]:
        """The gate list (read-only view)."""
        return tuple(self._gates)

    def append(self, gate: Gate) -> None:
        """Append a gate, validating qubit indices."""
        if any(q >= self._num_qubits for q in gate.qubits):
            raise ValueError(
                f"gate {gate} addresses a qubit outside 0..{self._num_qubits - 1}"
            )
        self._gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append several gates."""
        for gate in gates:
            self.append(gate)

    # Convenience wrappers -------------------------------------------------
    def h(self, qubit: int) -> "Circuit":
        """Append a Hadamard and return ``self`` for chaining."""
        self.append(Gate.h(qubit))
        return self

    def s(self, qubit: int) -> "Circuit":
        """Append an S gate."""
        self.append(Gate.s(qubit))
        return self

    def sdg(self, qubit: int) -> "Circuit":
        """Append an S† gate."""
        self.append(Gate.sdg(qubit))
        return self

    def x(self, qubit: int) -> "Circuit":
        """Append a Pauli X."""
        self.append(Gate.x(qubit))
        return self

    def y(self, qubit: int) -> "Circuit":
        """Append a Pauli Y."""
        self.append(Gate.y(qubit))
        return self

    def z(self, qubit: int) -> "Circuit":
        """Append a Pauli Z."""
        self.append(Gate.z(qubit))
        return self

    def cz(self, a: int, b: int) -> "Circuit":
        """Append a CZ gate."""
        self.append(Gate.cz(a, b))
        return self

    def cx(self, control: int, target: int) -> "Circuit":
        """Append a CNOT gate."""
        self.append(Gate.cx(control, target))
        return self

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def count(self, kind: GateKind) -> int:
        """Number of gates of the given kind."""
        return sum(1 for gate in self._gates if gate.kind is kind)

    @property
    def cz_pairs(self) -> list[tuple[int, int]]:
        """All CZ gates as (min, max) qubit pairs, in circuit order."""
        return [
            (min(gate.qubits), max(gate.qubits))
            for gate in self._gates
            if gate.kind is GateKind.CZ
        ]

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        busy_until = [0] * self._num_qubits
        depth = 0
        for gate in self._gates:
            start = max(busy_until[q] for q in gate.qubits)
            for q in gate.qubits:
                busy_until[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Circuit(num_qubits={self._num_qubits}, num_gates={len(self._gates)})"

    # ------------------------------------------------------------------ #
    # OpenQASM 2 support
    # ------------------------------------------------------------------ #
    def to_qasm(self) -> str:
        """Export as OpenQASM 2 text."""
        lines = [
            "OPENQASM 2.0;",
            'include "qelib1.inc";',
            f"qreg q[{self._num_qubits}];",
        ]
        for gate in self._gates:
            operands = ",".join(f"q[{q}]" for q in gate.qubits)
            lines.append(f"{gate.kind.value} {operands};")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_qasm(cls, text: str) -> "Circuit":
        """Parse the (small) subset of OpenQASM 2 produced by :meth:`to_qasm`."""
        num_qubits = None
        gates: list[Gate] = []
        for raw_line in text.splitlines():
            line = raw_line.split("//")[0].strip()
            if not line or line.startswith(("OPENQASM", "include")):
                continue
            if line.startswith("qreg"):
                num_qubits = int(line[line.index("[") + 1 : line.index("]")])
                continue
            if not line.endswith(";"):
                raise ValueError(f"malformed QASM line: {raw_line!r}")
            body = line[:-1]
            name, _, operands = body.partition(" ")
            qubits = []
            for operand in operands.split(","):
                operand = operand.strip()
                qubits.append(int(operand[operand.index("[") + 1 : operand.index("]")]))
            try:
                kind = GateKind(name)
            except ValueError as exc:
                raise ValueError(f"unsupported QASM gate {name!r}") from exc
            gates.append(Gate(kind, tuple(qubits)))
        if num_qubits is None:
            raise ValueError("QASM text has no qreg declaration")
        return cls(num_qubits, gates)
