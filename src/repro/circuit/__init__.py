"""A minimal quantum-circuit intermediate representation.

The state-preparation circuits handled by the paper have a rigid structure
(Fig. 1b): every qubit is initialised in ``|+>``, a set of CZ gates creates a
graph state, and a final layer of single-qubit Cliffords (Hadamards, plus
phase/Pauli corrections produced by the graph-state reduction) maps the graph
state to the logical basis state.  This package provides that representation
plus generic gate/circuit types, CZ layering (edge colouring) and OpenQASM 2
import/export.
"""

from repro.circuit.gates import Gate, GateKind
from repro.circuit.circuit import Circuit
from repro.circuit.state_prep_circuit import StatePrepCircuit
from repro.circuit.layers import cz_layers, interaction_graph

__all__ = [
    "Circuit",
    "Gate",
    "GateKind",
    "StatePrepCircuit",
    "cz_layers",
    "interaction_graph",
]
