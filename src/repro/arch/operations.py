"""Hardware figures of merit (fidelities, durations, speeds).

The values are the ones given in the table of Sec. V-A of the paper (taken
there from Bluvstein et al. 2023 and Evered et al. 2023):

==================  ==========  ==============  =================
Operation           Fidelity    Duration [µs]   Speed [µs/µm]
==================  ==========  ==============  =================
CZ / Id(Rydberg)    0.995/0.998 0.27            --
local RZ            0.999       12              --
global RY           0.9999      1               --
Load / Store        0.999       200             --
Shuttling           1.0         --              0.55
==================  ==========  ==============  =================

together with the effective idle coherence time ``T_eff = 1 s`` used in the
Approximated Success Probability.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperationParameters:
    """Fidelity/duration model of the zoned neutral-atom architecture."""

    # Fidelities -----------------------------------------------------------
    cz_fidelity: float = 0.995
    rydberg_idle_fidelity: float = 0.998
    local_rz_fidelity: float = 0.999
    global_ry_fidelity: float = 0.9999
    transfer_fidelity: float = 0.999  # one load or store operation
    shuttling_fidelity: float = 1.0

    # Durations in microseconds --------------------------------------------
    cz_duration_us: float = 0.27
    local_rz_duration_us: float = 12.0
    global_ry_duration_us: float = 1.0
    transfer_duration_us: float = 200.0

    # Shuttling speed: time per micrometre moved ----------------------------
    shuttling_speed_us_per_um: float = 0.55

    # Effective coherence time for the ASP idle-time penalty -----------------
    effective_coherence_time_us: float = 1_000_000.0  # T_eff = 1 s

    # Geometry (Sec. V-A) ----------------------------------------------------
    intra_site_spacing_um: float = 1.0
    site_spacing_um: float = 14.0
    zone_separation_um: float = 20.0

    def __post_init__(self) -> None:
        for field_name in (
            "cz_fidelity",
            "rydberg_idle_fidelity",
            "local_rz_fidelity",
            "global_ry_fidelity",
            "transfer_fidelity",
            "shuttling_fidelity",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name} must lie in (0, 1], got {value}")
        for field_name in (
            "cz_duration_us",
            "local_rz_duration_us",
            "global_ry_duration_us",
            "transfer_duration_us",
            "shuttling_speed_us_per_um",
            "effective_coherence_time_us",
            "intra_site_spacing_um",
            "site_spacing_um",
            "zone_separation_um",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    def shuttling_duration_us(self, distance_um: float) -> float:
        """Time to shuttle a set of AOD qubits by *distance_um* micrometres."""
        return self.shuttling_speed_us_per_um * float(distance_um)


#: Default parameters exactly as used for the paper's evaluation.
DEFAULT_OPERATION_PARAMETERS = OperationParameters()
