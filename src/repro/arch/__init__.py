"""The zoned neutral-atom architecture model.

Captures the hardware abstractions of the paper's Sec. II-B / III / V-A:

* interaction sites on a grid, each with one SLM trap and surrounding AOD
  trap offsets,
* spatially separated zones (entangling / storage / readout),
* AOD columns and rows whose relative order must be preserved while moving,
* the fidelity and duration figures of merit used for the ASP.
"""

from repro.arch.zones import Zone, ZoneKind
from repro.arch.architecture import ZonedArchitecture, Position
from repro.arch.layouts import (
    bottom_storage_layout,
    double_sided_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
    reduced_layout,
)
from repro.arch.operations import OperationParameters, DEFAULT_OPERATION_PARAMETERS

__all__ = [
    "DEFAULT_OPERATION_PARAMETERS",
    "OperationParameters",
    "Position",
    "Zone",
    "ZoneKind",
    "ZonedArchitecture",
    "bottom_storage_layout",
    "double_sided_storage_layout",
    "evaluation_layouts",
    "no_shielding_layout",
    "reduced_layout",
]
