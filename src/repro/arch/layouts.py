"""The architecture layouts used in the paper's evaluation (Sec. V-A).

All three layouts share the same overall extent (eight site columns,
``Xmax = 7``, and seven site rows, ``Ymax = 6``), six AOD lines per direction
(``Cmax = Rmax = 5``), offsets up to two (``Hmax = Vmax = 2``) and an
interaction radius of two:

1. **No shielding** — a single entangling zone covering all rows
   (``Emin = 0``, ``Emax = 6``); idling qubits cannot be shielded.
2. **Bottom storage** — one two-row storage zone below the entangling zone
   (``Emin = 2``, ``Emax = 6``).
3. **Double-sided storage** — two-row storage zones below *and* above the
   entangling zone (``Emin = 2``, ``Emax = 4``).

``reduced_layout`` additionally provides smaller instances of the same three
shapes for the exact SMT backend (the paper ran Z3 for up to 320 hours per
instance; the reduced bounds keep the pure-Python solver in the seconds-to-
minutes range while exercising exactly the same constraint system).
"""

from __future__ import annotations

from repro.arch.architecture import ZonedArchitecture
from repro.arch.operations import DEFAULT_OPERATION_PARAMETERS, OperationParameters
from repro.arch.zones import Zone, ZoneKind

#: Shared evaluation-scale extents (Sec. V-A).
_EVAL_X_MAX = 7
_EVAL_Y_MAX = 6
_EVAL_H_MAX = 2
_EVAL_V_MAX = 2
_EVAL_C_MAX = 5
_EVAL_R_MAX = 5
_EVAL_RADIUS = 2


def no_shielding_layout(
    parameters: OperationParameters = DEFAULT_OPERATION_PARAMETERS,
) -> ZonedArchitecture:
    """Layout (1): a single entangling zone, no storage."""
    return ZonedArchitecture(
        name="no-shielding",
        x_max=_EVAL_X_MAX,
        y_max=_EVAL_Y_MAX,
        h_max=_EVAL_H_MAX,
        v_max=_EVAL_V_MAX,
        c_max=_EVAL_C_MAX,
        r_max=_EVAL_R_MAX,
        interaction_radius=_EVAL_RADIUS,
        zones=(Zone(ZoneKind.ENTANGLING, 0, _EVAL_Y_MAX, name="entangling"),),
        parameters=parameters,
    )


def bottom_storage_layout(
    parameters: OperationParameters = DEFAULT_OPERATION_PARAMETERS,
) -> ZonedArchitecture:
    """Layout (2): a two-row storage zone below the entangling zone."""
    return ZonedArchitecture(
        name="bottom-storage",
        x_max=_EVAL_X_MAX,
        y_max=_EVAL_Y_MAX,
        h_max=_EVAL_H_MAX,
        v_max=_EVAL_V_MAX,
        c_max=_EVAL_C_MAX,
        r_max=_EVAL_R_MAX,
        interaction_radius=_EVAL_RADIUS,
        zones=(
            Zone(ZoneKind.STORAGE, 0, 1, name="bottom storage"),
            Zone(ZoneKind.ENTANGLING, 2, _EVAL_Y_MAX, name="entangling"),
        ),
        parameters=parameters,
    )


def double_sided_storage_layout(
    parameters: OperationParameters = DEFAULT_OPERATION_PARAMETERS,
) -> ZonedArchitecture:
    """Layout (3): storage zones on both sides of the entangling zone."""
    return ZonedArchitecture(
        name="double-sided-storage",
        x_max=_EVAL_X_MAX,
        y_max=_EVAL_Y_MAX,
        h_max=_EVAL_H_MAX,
        v_max=_EVAL_V_MAX,
        c_max=_EVAL_C_MAX,
        r_max=_EVAL_R_MAX,
        interaction_radius=_EVAL_RADIUS,
        zones=(
            Zone(ZoneKind.STORAGE, 0, 1, name="bottom storage"),
            Zone(ZoneKind.ENTANGLING, 2, 4, name="entangling"),
            Zone(ZoneKind.STORAGE, 5, 6, name="top storage"),
        ),
        parameters=parameters,
    )


def evaluation_layouts(
    parameters: OperationParameters = DEFAULT_OPERATION_PARAMETERS,
) -> dict[str, ZonedArchitecture]:
    """The three Table I layouts, keyed by their table label."""
    return {
        "(1) No Shielding": no_shielding_layout(parameters),
        "(2) Bottom Storage": bottom_storage_layout(parameters),
        "(3) Double-Sided Storage": double_sided_storage_layout(parameters),
    }


def reduced_layout(
    kind: str = "bottom",
    x_max: int = 3,
    h_max: int = 1,
    v_max: int = 1,
    c_max: int = 3,
    r_max: int = 2,
    parameters: OperationParameters = DEFAULT_OPERATION_PARAMETERS,
) -> ZonedArchitecture:
    """A small architecture with the same zone structure as the evaluation.

    *kind* is one of ``"none"`` (no storage), ``"bottom"`` (one storage zone
    below a two-row entangling zone) or ``"double"`` (storage above and
    below).  Used by tests and by the exact SMT backend.
    """
    kind = kind.lower()
    if kind == "none":
        zones = (Zone(ZoneKind.ENTANGLING, 0, 2, name="entangling"),)
        y_max = 2
    elif kind == "bottom":
        zones = (
            Zone(ZoneKind.STORAGE, 0, 0, name="bottom storage"),
            Zone(ZoneKind.ENTANGLING, 1, 2, name="entangling"),
        )
        y_max = 2
    elif kind == "double":
        zones = (
            Zone(ZoneKind.STORAGE, 0, 0, name="bottom storage"),
            Zone(ZoneKind.ENTANGLING, 1, 2, name="entangling"),
            Zone(ZoneKind.STORAGE, 3, 3, name="top storage"),
        )
        y_max = 3
    else:
        raise ValueError(f"unknown reduced layout kind {kind!r}")
    return ZonedArchitecture(
        name=f"reduced-{kind}",
        x_max=x_max,
        y_max=y_max,
        h_max=h_max,
        v_max=v_max,
        c_max=c_max,
        r_max=r_max,
        interaction_radius=2,
        zones=zones,
        parameters=parameters,
    )
