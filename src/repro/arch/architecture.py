"""The zoned neutral-atom architecture.

The spatial model follows Sec. IV-A of the paper: space is discretised into
*interaction sites* arranged on a grid with ``Xmax + 1`` columns and
``Ymax + 1`` rows.  Each interaction site has one static SLM trap at its
centre (offset ``(0, 0)``) and potential AOD traps at horizontal/vertical
offsets up to ``Hmax`` / ``Vmax``.  Mobile qubits are carried by ``Cmax + 1``
AOD columns and ``Rmax + 1`` AOD rows whose relative order must be preserved.
Rows are grouped into zones; CZ gates can only happen inside the entangling
zone, and qubits parked in storage zones are shielded from the Rydberg beam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.operations import DEFAULT_OPERATION_PARAMETERS, OperationParameters
from repro.arch.zones import Zone, ZoneKind


@dataclass(frozen=True, order=True)
class Position:
    """A discrete trap position: interaction site (x, y) plus offsets (h, v)."""

    x: int
    y: int
    h: int = 0
    v: int = 0

    @property
    def is_site_center(self) -> bool:
        """True when the position is the SLM trap at the site centre."""
        return self.h == 0 and self.v == 0

    def same_site(self, other: "Position") -> bool:
        """True when both positions belong to the same interaction site."""
        return self.x == other.x and self.y == other.y


@dataclass(frozen=True)
class ZonedArchitecture:
    """A zoned neutral-atom architecture instance.

    Parameters use the paper's notation: ``x_max``/``y_max`` are the maximum
    site coordinates (inclusive), ``h_max``/``v_max`` the maximum AOD offsets
    within a site, ``c_max``/``r_max`` the maximum AOD column/row indices,
    ``interaction_radius`` the offset distance below which two qubits at the
    same site interact during a Rydberg beam (``r`` in constraint C3).
    """

    name: str
    x_max: int
    y_max: int
    h_max: int
    v_max: int
    c_max: int
    r_max: int
    interaction_radius: int
    zones: tuple[Zone, ...]
    parameters: OperationParameters = field(default=DEFAULT_OPERATION_PARAMETERS)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.x_max < 0 or self.y_max < 0:
            raise ValueError("architecture extents must be non-negative")
        if self.h_max < 0 or self.v_max < 0:
            raise ValueError("AOD offsets must be non-negative")
        if self.c_max < 0 or self.r_max < 0:
            raise ValueError("AOD line counts must be non-negative")
        if self.interaction_radius <= 0:
            raise ValueError("interaction radius must be positive")
        if not self.zones:
            raise ValueError("an architecture needs at least one zone")
        covered_rows: set[int] = set()
        for zone in self.zones:
            if zone.y_max > self.y_max:
                raise ValueError(f"zone {zone} exceeds the architecture rows")
            overlap = covered_rows.intersection(range(zone.y_min, zone.y_max + 1))
            if overlap:
                raise ValueError(f"zones overlap on rows {sorted(overlap)}")
            covered_rows.update(range(zone.y_min, zone.y_max + 1))
        if covered_rows != set(range(self.y_max + 1)):
            missing = sorted(set(range(self.y_max + 1)) - covered_rows)
            raise ValueError(f"rows {missing} are not assigned to any zone")
        if not any(zone.kind is ZoneKind.ENTANGLING for zone in self.zones):
            raise ValueError("an architecture needs an entangling zone")

    # ------------------------------------------------------------------ #
    # Zone queries
    # ------------------------------------------------------------------ #
    @property
    def entangling_zone(self) -> Zone:
        """The (single) entangling zone."""
        entangling = [z for z in self.zones if z.kind is ZoneKind.ENTANGLING]
        return entangling[0]

    @property
    def storage_zones(self) -> tuple[Zone, ...]:
        """All storage zones (possibly empty)."""
        return tuple(z for z in self.zones if z.kind is ZoneKind.STORAGE)

    @property
    def has_storage(self) -> bool:
        """True when at least one storage zone exists."""
        return bool(self.storage_zones)

    @property
    def entangling_rows(self) -> tuple[int, int]:
        """(Emin, Emax): the inclusive row bounds of the entangling zone."""
        zone = self.entangling_zone
        return (zone.y_min, zone.y_max)

    def zone_of_row(self, y: int) -> Zone:
        """The zone containing row *y*."""
        for zone in self.zones:
            if zone.contains_row(y):
                return zone
        raise ValueError(f"row {y} outside the architecture")

    def in_entangling_zone(self, y: int) -> bool:
        """True when row *y* belongs to the entangling zone."""
        e_min, e_max = self.entangling_rows
        return e_min <= y <= e_max

    def storage_rows(self) -> list[int]:
        """All rows belonging to storage zones (sorted)."""
        rows: list[int] = []
        for zone in self.storage_zones:
            rows.extend(range(zone.y_min, zone.y_max + 1))
        return sorted(rows)

    # ------------------------------------------------------------------ #
    # Capacity queries
    # ------------------------------------------------------------------ #
    @property
    def num_sites(self) -> int:
        """Number of interaction sites."""
        return (self.x_max + 1) * (self.y_max + 1)

    @property
    def num_aod_columns(self) -> int:
        """Number of AOD columns available."""
        return self.c_max + 1

    @property
    def num_aod_rows(self) -> int:
        """Number of AOD rows available."""
        return self.r_max + 1

    def offsets(self) -> list[tuple[int, int]]:
        """All (h, v) offsets available within an interaction site."""
        return [
            (h, v)
            for h in range(-self.h_max, self.h_max + 1)
            for v in range(-self.v_max, self.v_max + 1)
        ]

    def contains(self, position: Position) -> bool:
        """True when *position* lies within the architecture bounds."""
        return (
            0 <= position.x <= self.x_max
            and 0 <= position.y <= self.y_max
            and abs(position.h) <= self.h_max
            and abs(position.v) <= self.v_max
        )

    def sites(self) -> Iterable[tuple[int, int]]:
        """Iterate over all interaction-site coordinates."""
        for y in range(self.y_max + 1):
            for x in range(self.x_max + 1):
                yield (x, y)

    def sites_in_zone(self, kind: ZoneKind) -> list[tuple[int, int]]:
        """All site coordinates lying in zones of the given kind."""
        rows = {
            y
            for zone in self.zones
            if zone.kind is kind
            for y in range(zone.y_min, zone.y_max + 1)
        }
        return [(x, y) for (x, y) in self.sites() if y in rows]

    # ------------------------------------------------------------------ #
    # Physical geometry
    # ------------------------------------------------------------------ #
    def physical_coordinates_um(self, position: Position) -> tuple[float, float]:
        """Map a discrete position to physical (x, y) coordinates in µm.

        Interaction sites are ``site_spacing_um`` apart, traps within a site
        ``intra_site_spacing_um`` apart, and crossing a zone boundary adds
        enough extra space that sites in different zones are at least
        ``zone_separation_um`` apart.
        """
        params = self.parameters
        x_um = position.x * params.site_spacing_um + position.h * params.intra_site_spacing_um
        zone_gap_extra = max(params.zone_separation_um - params.site_spacing_um, 0.0)
        boundaries_below = 0
        for zone in self.zones:
            # A boundary exists above the zone if the zone does not end at
            # the top row; count boundaries strictly below the position row.
            if zone.y_max < position.y:
                boundaries_below += 1
        y_um = (
            position.y * params.site_spacing_um
            + boundaries_below * zone_gap_extra
            + position.v * params.intra_site_spacing_um
        )
        return (x_um, y_um)

    def distance_um(self, source: Position, target: Position) -> float:
        """Euclidean distance in µm between two discrete positions."""
        sx, sy = self.physical_coordinates_um(source)
        tx, ty = self.physical_coordinates_um(target)
        return float(((sx - tx) ** 2 + (sy - ty) ** 2) ** 0.5)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Human-readable multi-line description (used by the CLI)."""
        lines = [
            f"architecture {self.name!r}:",
            f"  sites: {self.x_max + 1} x {self.y_max + 1}",
            f"  AOD: {self.num_aod_columns} columns, {self.num_aod_rows} rows",
            f"  offsets: |h| <= {self.h_max}, |v| <= {self.v_max}",
            f"  interaction radius: {self.interaction_radius}",
        ]
        for zone in self.zones:
            lines.append(f"  zone: {zone}")
        return "\n".join(lines)
