"""Zone definitions for the zoned neutral-atom architecture."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ZoneKind(enum.Enum):
    """The three kinds of zones described in Sec. III of the paper."""

    ENTANGLING = "entangling"
    STORAGE = "storage"
    READOUT = "readout"


@dataclass(frozen=True)
class Zone:
    """A horizontal band of interaction-site rows with a common purpose.

    Rows are inclusive: the zone covers all interaction sites with
    ``y_min <= y <= y_max``.
    """

    kind: ZoneKind
    y_min: int
    y_max: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.y_min > self.y_max:
            raise ValueError(f"zone with empty row range: [{self.y_min}, {self.y_max}]")
        if self.y_min < 0:
            raise ValueError("zone rows must be non-negative")

    @property
    def num_rows(self) -> int:
        """Number of interaction-site rows covered by the zone."""
        return self.y_max - self.y_min + 1

    def contains_row(self, y: int) -> bool:
        """True when row *y* lies inside the zone."""
        return self.y_min <= y <= self.y_max

    def __str__(self) -> str:
        label = self.name or self.kind.value
        return f"{label}[rows {self.y_min}..{self.y_max}]"
