"""The outcome record shared by every scheduling strategy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.schedule import Schedule

#: The search certified the minimum stage count (``optimal=True``).
TERMINATION_CERTIFIED = "certified"
#: The deadline (or a per-probe resource limit) expired before the optimum
#: was certified; the report carries the best-known witness and the interval
#: proven by the probes that did complete.
TERMINATION_DEADLINE = "deadline"
#: The search proved no schedule exists within ``limits.max_stages``.
TERMINATION_INFEASIBLE = "infeasible"
#: A permanent SAT-backend failure (after bounded retries) ended the search;
#: the analytic interval and any structured witness are still reported.
TERMINATION_BACKEND_ERROR = "backend-error"

#: Every value the ``termination`` field may take, in severity order.
TERMINATIONS = (
    TERMINATION_CERTIFIED,
    TERMINATION_INFEASIBLE,
    TERMINATION_DEADLINE,
    TERMINATION_BACKEND_ERROR,
)


@dataclass
class SchedulerReport:
    """Outcome of one :class:`~repro.core.scheduler.SMTScheduler` run.

    Besides the schedule itself the report records the full search
    trajectory — which strategy ran, the analytic lower bound it started
    from, the constructive upper bound it had available (``None`` for
    strategies that do not compute one), and every stage horizon probed, in
    probe order.  The evaluation runner persists these fields so BENCH JSON
    files stay comparable across revisions.
    """

    schedule: Optional[Schedule]
    optimal: bool
    strategy: str = "linear"
    #: Registry name of the SAT backend that decided the probes
    #: (:mod:`repro.sat.backend`); set by the scheduler facade.  The
    #: portfolio's ``winner`` may name a different backend when a raced
    #: backend variant landed the certificate first.
    sat_backend: str = "flat"
    lower_bound: int = 0
    upper_bound: Optional[int] = None
    #: Provenance of the analytic lower bound: the winning certificate name
    #: from :meth:`repro.core.problem.SchedulingProblem.bound_breakdown`
    #: (e.g. ``"clique+transfer"``).  ``None`` only for reports built
    #: outside the strategy layer.
    lower_bound_source: Optional[str] = None
    #: Provenance of the constructive upper bound: which structured
    #: choreography produced the witness (``"structured-homes"`` or
    #: ``"structured-airborne"``); ``None`` when no witness exists.
    upper_bound_source: Optional[str] = None
    stages_tried: list[int] = field(default_factory=list)
    solver_seconds: float = 0.0
    #: How the search ended — one of :data:`TERMINATIONS`
    #: (``"certified"`` / ``"deadline"`` / ``"infeasible"`` /
    #: ``"backend-error"``).  Every strategy honours one graceful-degradation
    #: contract: on a non-certified termination the report still carries the
    #: best-known witness (structured fallback or last SAT model) and the
    #: interval proven by the probes that completed — strategies never raise
    #: and never lose work.  ``None`` only for reports built outside the
    #: strategy layer.
    termination: Optional[str] = None
    statistics: dict[str, float] = field(default_factory=dict)
    #: Set by the portfolio strategy only: the configuration whose
    #: certificate landed first (e.g. ``{"strategy": "warmstart"}`` or
    #: ``{"strategy": "bisection", "phase_seed": 2}``), plus how it won
    #: (``"raced"`` across worker processes or ``"inline"`` when the
    #: analytic interval was too narrow to pay for process fan-out).
    winner: Optional[dict] = None

    @property
    def found(self) -> bool:
        """True when a schedule was found (optimal or not)."""
        return self.schedule is not None

    @property
    def num_horizons(self) -> int:
        """How many stage horizons the strategy asked the solver to decide."""
        return len(self.stages_tried)


#: Backwards-compatible alias (the seed called the report a "result").
SchedulerResult = SchedulerReport
