"""Bound-driven bisection over the stage count.

Instead of walking every horizon from the analytic lower bound upward, this
strategy binary-searches the interval between the IR's lower bound and a
*certified* upper bound: the stage count of the constructive
:class:`~repro.core.structured.StructuredScheduler` schedule, which is
feasible by construction and validated before use.  Satisfiability is
monotone in the stage count (any ``S``-stage schedule extends to ``S+1`` by
appending a do-nothing transfer stage), so an UNSAT probe at ``mid``
eliminates every horizon ``<= mid`` and a SAT probe every horizon
``> mid``.  All probes — ascending or descending — run against one
incremental instance via per-horizon assumption literals, so CDCL learned
clauses, activities, and saved phases persist across the whole search.

When the interval is degenerate (the structured schedule already matches the
lower bound), the optimum is certified without a single SMT probe and the
structured schedule itself is returned.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.problem import SchedulingProblem
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_CERTIFIED,
    TERMINATION_DEADLINE,
    TERMINATION_INFEASIBLE,
    SchedulerReport,
)
from repro.core.schedule import Schedule
from repro.core.strategies.base import (
    SearchContext,
    SearchLimits,
    SearchStrategy,
    register_strategy,
)
from repro.core.structured import StructuredScheduler
from repro.core.validator import ValidationError, validate_schedule
from repro.sat.errors import BackendError
from repro.smt import CheckResult

#: ``lower_bound_source`` suffix marking a probe-lifted (tightened) bound.
UNSAT_PROBE_SOURCE = "unsat-probes"


@register_strategy
class BisectionStrategy(SearchStrategy):
    """Binary search on S between the analytic LB and the structured UB.

    An already-computed (and validated) structured *witness* can be injected
    to skip the redundant constructive-scheduling pass — the portfolio's
    inline path computes it during triage and hands it over.
    """

    name = "bisection"
    requires_incremental = True

    def __init__(self, witness: Optional[Schedule] = None) -> None:
        self._witness = witness

    def run(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict | None = None,
    ) -> SchedulerReport:
        start = time.monotonic()
        if not limits.incremental:
            raise ValueError(
                f"the {self.name!r} strategy requires an incremental scheduler"
            )
        deadline = limits.deadline
        breakdown = problem.bound_breakdown()
        lower_bound = breakdown.total
        report = SchedulerReport(
            schedule=None,
            optimal=False,
            strategy=self.name,
            lower_bound=lower_bound,
            lower_bound_source=breakdown.source,
        )
        if lower_bound > limits.max_stages:
            report.termination = TERMINATION_INFEASIBLE
            report.solver_seconds = time.monotonic() - start
            return report

        witness = self._upper_bound_schedule(problem)
        if witness is not None:
            report.upper_bound = witness.num_stages
            report.upper_bound_source = witness_source(witness)
            if witness.num_stages > limits.max_stages:
                # The constructive schedule overshoots the stage budget; it
                # still bounds the optimum but cannot serve as a fallback.
                witness = None
        high = report.upper_bound if witness is not None else limits.max_stages
        context = self._make_context(problem, limits, witness, high)

        low = lower_bound
        # The search-control cursor ``low`` advances past UNSAT *and*
        # UNKNOWN horizons (an undecided horizon may hide the optimum, so
        # the search must continue above it); ``proven_low`` advances past
        # UNSAT horizons only — it is the lower bound the completed probes
        # actually *proved*, and the only value that may tighten the
        # reported interval (treating an UNKNOWN as refuted would be
        # unsound).
        proven_low = lower_bound
        best: Optional[Schedule] = None
        optimal = True
        backend_error = False
        expired = False
        # Identical provenance no matter which path produces the schedule:
        # SMT extractions carry the problem metadata just like the witness
        # does, and the winning strategy is recorded either way.
        merged = {"strategy": self.name, **problem.metadata, **(metadata or {})}
        while low < high:
            if deadline is not None and deadline.expired():
                expired = True
                optimal = False
                break
            mid = (low + high) // 2
            report.stages_tried.append(mid)
            try:
                result = context.decide(mid)
                report.statistics = context.statistics()
            except BackendError as exc:
                backend_error = True
                optimal = False
                report.statistics = {**report.statistics, "backend_error": 1.0}
                merged.setdefault("backend_error", str(exc))
                break
            if result is CheckResult.SAT:
                high = mid
                best = context.extract(mid, metadata=dict(merged))
            elif result is CheckResult.UNSAT:
                low = mid + 1
                proven_low = max(proven_low, mid + 1)
            else:
                # Undecided horizons may hide the true optimum below the
                # final answer; search above, like the linear strategy does.
                optimal = False
                low = mid + 1

        if best is not None:
            # ``high`` only ever decreases onto a SAT probe, so the last
            # extraction is exactly the ``low == high`` horizon (or, when
            # the search was cut short, the tightest SAT horizon reached).
            report.schedule = best
        elif not (expired or backend_error):
            if witness is not None and low == witness.num_stages:
                # Never probed below SAT: the structured witness *is* the
                # answer.
                witness.metadata.update(merged)
                report.schedule = witness
            elif low <= limits.max_stages:
                # No witness available (or it overshot the budget): the
                # final horizon was never confirmed satisfiable — decide it
                # directly (under the same deadline/failure guards).
                if deadline is not None and deadline.expired():
                    expired = True
                    optimal = False
                else:
                    report.stages_tried.append(low)
                    try:
                        result = context.decide(low)
                        report.statistics = context.statistics()
                    except BackendError as exc:
                        backend_error = True
                        optimal = False
                        report.statistics = {
                            **report.statistics,
                            "backend_error": 1.0,
                        }
                        merged.setdefault("backend_error", str(exc))
                    else:
                        if result is CheckResult.SAT:
                            report.schedule = context.extract(
                                low, metadata=dict(merged)
                            )
                        elif result is CheckResult.UNSAT:
                            proven_low = max(proven_low, low + 1)
                        else:
                            optimal = False
        if report.schedule is None and (expired or backend_error or not optimal):
            # Degraded without a SAT model: the structured witness (when it
            # fits the stage budget) is still a correct, validated schedule.
            if witness is not None:
                witness.metadata.update(merged)
                report.schedule = witness
                optimal = False
        if report.schedule is not None:
            report.schedule.metadata.setdefault("optimal", optimal)
            report.optimal = optimal

        if report.optimal and report.schedule is not None:
            report.termination = TERMINATION_CERTIFIED
        elif backend_error:
            report.termination = TERMINATION_BACKEND_ERROR
        elif report.schedule is not None or expired or not optimal:
            report.termination = TERMINATION_DEADLINE
        else:
            # Every horizon up to the stage budget was genuinely refuted.
            report.termination = TERMINATION_INFEASIBLE
        if report.termination in (TERMINATION_DEADLINE, TERMINATION_BACKEND_ERROR):
            lift_lower_bound(report, proven_low)
            if best is not None and (
                report.upper_bound is None or best.num_stages < report.upper_bound
            ):
                report.upper_bound = best.num_stages
                report.upper_bound_source = "sat-probe"
        report.solver_seconds = time.monotonic() - start
        return report

    # ------------------------------------------------------------------ #
    def _make_context(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        witness: Optional[Schedule],
        high: int,
    ) -> SearchContext:
        """Build the shared incremental context (hook for warm-starting)."""
        # With a witness the largest horizon ever probed is ``high - 1``
        # (the witness itself certifies ``high``), so the capacity is known
        # exactly and no headroom/rebuild cycle is needed.
        capacity = max(high - 1, 1) if witness is not None else None
        return SearchContext(problem, limits, capacity=capacity)

    def _upper_bound_schedule(self, problem: SchedulingProblem) -> Optional[Schedule]:
        """A validated constructive schedule, or ``None`` when unavailable."""
        if self._witness is not None:
            return self._witness
        return structured_upper_bound(problem)


def structured_upper_bound(problem: SchedulingProblem) -> Optional[Schedule]:
    """The tightest validated constructive schedule of *problem*, or ``None``.

    Shared by the bound-driven strategies (bisection, warmstart, portfolio):
    a structured schedule is feasible by construction and validated before
    use, so its stage count is a certified upper bound on the optimum.  Two
    choreographies compete:

    * the classic home-based choreography (idle qubits parked in SLM traps,
      one or two transfer stages per round boundary), and
    * the transfer-free *airborne* choreography (every qubit permanently in
      an AOD trap, beams staged by edge colouring) — the only structured
      witness for ``shielding=True`` on storage-less architectures, and
      frequently the tighter one elsewhere because it pays no transfer
      stages.

    The schedule with the fewer stages wins (ties prefer the classic
    choreography); ``None`` means neither choreography applies, leaving the
    search interval open.  The winning choreography is recorded in the
    schedule metadata and surfaced as ``SchedulerReport.upper_bound_source``
    (see :func:`witness_source`).
    """
    scheduler = StructuredScheduler()
    candidates: list[Schedule] = []
    try:
        # Dispatches to the airborne choreography by itself for
        # ``shielding=True`` on storage-less architectures.
        schedule = scheduler.schedule(problem)
        validate_schedule(schedule, require_shielding=problem.shielding)
        candidates.append(schedule)
    except (ValueError, ValidationError):
        pass
    if not (problem.shielding and not problem.architecture.has_storage):
        # The classic path ran above; offer the transfer-free witness as a
        # tightening candidate (no idle exposure, so it satisfies any
        # shielding requirement).
        try:
            airborne = scheduler.schedule_airborne(problem)
            validate_schedule(airborne, require_shielding=problem.shielding)
            candidates.append(airborne)
        except (ValueError, ValidationError):
            pass
    if not candidates:
        return None
    return min(candidates, key=lambda schedule: schedule.num_stages)


def witness_source(schedule: Schedule) -> str:
    """Provenance label of a structured witness (for ``upper_bound_source``)."""
    return f"structured-{schedule.metadata.get('choreography', 'homes')}"


def lift_lower_bound(report: SchedulerReport, proven_low: int) -> None:
    """Tighten the report's lower bound from completed UNSAT probes.

    Sound by stage-count monotonicity: an UNSAT answer at ``S`` refutes
    every horizon ``<= S``, so the optimum is at least ``S + 1``.  Only
    genuinely refuted horizons may feed *proven_low* — treating an UNKNOWN
    probe as refuted would report an unsound interval, which is why the
    strategies track ``proven_low`` separately from their search cursor.
    """
    if proven_low > report.lower_bound:
        report.lower_bound = proven_low
        base = report.lower_bound_source or "analytic"
        report.lower_bound_source = f"{base}+{UNSAT_PROBE_SOURCE}"


def attach_fallback_witness(
    report: SchedulerReport,
    problem: SchedulingProblem,
    limits: SearchLimits,
    merged: dict,
) -> None:
    """Attach the structured witness as a best-known non-optimal schedule.

    Used by degradation paths that did not already compute a witness: when
    a search ends without a SAT model, the validated structured schedule
    (when one exists and fits the stage budget) is still a correct answer —
    just not a certified-minimal one.  The report's upper bound is set from
    the witness even when it overshoots ``limits.max_stages`` (it bounds
    the optimum either way; it just cannot serve as a schedule).
    """
    if report.schedule is not None:
        return
    witness = structured_upper_bound(problem)
    if witness is None:
        return
    if report.upper_bound is None or witness.num_stages < report.upper_bound:
        report.upper_bound = witness.num_stages
        report.upper_bound_source = witness_source(witness)
    if witness.num_stages <= limits.max_stages:
        witness.metadata.update(merged)
        witness.metadata.setdefault("optimal", False)
        report.schedule = witness
