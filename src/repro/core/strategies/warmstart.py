"""Bisection with structured warm-starts.

Identical horizon search to
:class:`~repro.core.strategies.bisection.BisectionStrategy`, but the CDCL
core's saved phases are seeded from the structured schedule before the first
probe: every ``gate_stage`` variable is hinted to the stage its gate occupies
in the constructive schedule, and every execution flag to the corresponding
stage kind.  The hints bias the first descent of the search towards a known
feasible assignment; they are polarity suggestions only and can never change
a SAT/UNSAT answer (see :meth:`repro.sat.solver.CDCLSolver.set_phase_hints`).

The witness may come from either structured choreography (see
:func:`~repro.core.strategies.bisection.structured_upper_bound`): hints from
an *airborne* witness map every gate to its edge-colouring round and every
stage to an execution stage — particularly strong seeds, since such a
witness is stage-minimal whenever it exists.
"""

from __future__ import annotations

from typing import Optional

from repro.core.encoding import IncrementalInstance
from repro.core.problem import SchedulingProblem
from repro.core.schedule import Schedule
from repro.core.strategies.base import SearchContext, SearchLimits, register_strategy
from repro.core.strategies.bisection import BisectionStrategy


@register_strategy
class WarmstartStrategy(BisectionStrategy):
    """Bisection whose solver phases are seeded from the structured schedule."""

    name = "warmstart"

    def _make_context(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        witness: Optional[Schedule],
        high: int,
    ) -> SearchContext:
        context = super()._make_context(problem, limits, witness, high)
        if witness is not None:
            context.set_hint_provider(
                lambda instance: structured_phase_hints(instance, witness)
            )
        return context


def structured_phase_hints(
    instance: IncrementalInstance, witness: Schedule
) -> dict:
    """Phase hints mirroring *witness*'s gate-stage assignment.

    Gate stages beyond the instance's capacity are clamped to the last
    representable stage — hints are heuristics, not constraints, so a lossy
    projection is harmless.  Execution flags are hinted for the stages that
    exist at seeding time; stages added later simply keep default phases.
    """
    stage_of_gate: dict[frozenset[int], int] = {}
    for index, stage in enumerate(witness.stages):
        for gate in stage.gates:
            stage_of_gate.setdefault(frozenset(gate), index)
    hints: dict = {}
    capacity = instance.max_stages
    for i, gate in enumerate(instance.gates):
        structured_stage = stage_of_gate.get(frozenset(gate))
        if structured_stage is not None:
            hints[instance.variables.gate_stage[i]] = min(
                structured_stage, capacity - 1
            )
    for index, execution in enumerate(instance.variables.execution):
        if index < len(witness.stages):
            hints[execution] = witness.stages[index].is_execution
    return hints
