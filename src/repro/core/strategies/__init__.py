"""Pluggable minimum-stage search strategies.

Importing this package registers the built-in strategies:

* ``linear`` — iterative deepening from the analytic lower bound (the
  paper's Sec. V-A procedure and the seed's behaviour).
* ``bisection`` — binary search between the IR's analytic lower bound and
  the structured scheduler's certified upper bound, on one incremental
  instance.
* ``warmstart`` — bisection plus CDCL phase seeding from the structured
  schedule's gate-stage assignment.
* ``portfolio`` — races the single strategies (plus phase-seed variants)
  across worker processes; the first certified optimum wins and the losers
  are cancelled.

Strategies are looked up by name through :func:`get_strategy`; third-party
strategies can join the registry with :func:`register_strategy`.
"""

from repro.core.strategies.base import (
    SearchContext,
    SearchLimits,
    SearchStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    seeded_phase_hints,
)
from repro.core.strategies.linear import LinearStrategy
from repro.core.strategies.bisection import BisectionStrategy, structured_upper_bound
from repro.core.strategies.warmstart import WarmstartStrategy, structured_phase_hints
from repro.core.strategies.portfolio import PortfolioStrategy

__all__ = [
    "BisectionStrategy",
    "LinearStrategy",
    "PortfolioStrategy",
    "SearchContext",
    "SearchLimits",
    "SearchStrategy",
    "WarmstartStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "seeded_phase_hints",
    "structured_phase_hints",
    "structured_upper_bound",
]
