"""Process-level portfolio racing over the single search strategies.

The portfolio fans a set of solver *configurations* — ``bisection``,
``warmstart``, ``linear``, phase-seed variants that only differ in the
CDCL core's initial branching polarities, plus one bisection variant per
additional usable SAT backend (:mod:`repro.sat.backend`) — across worker
processes
(reusing :func:`repro.evaluation.runner.race_to_first`, the racing
counterpart of the bench runner's pool machinery), keeps the first
configuration that certifies an optimum, and cancels/terminates the losers.
Every configuration is sound and complete for the same problem, so whichever
certificate lands first reports the *same* optimal stage count — racing buys
wall-clock, never answers.

Racing only pays when there is search to parallelise.  When the analytic
interval between :meth:`~repro.core.problem.SchedulingProblem.lower_bound`
and the structured upper bound is narrower than :data:`RACE_THRESHOLD`
stages (or only one worker is available), the portfolio delegates inline to
plain bisection instead of paying process fan-out for a probe or two; the
report's ``winner`` records which path ran.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import replace
from typing import Optional, Sequence

from repro.core.problem import SchedulingProblem
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_DEADLINE,
    SchedulerReport,
)
from repro.core.strategies.base import (
    SearchLimits,
    SearchStrategy,
    register_strategy,
)
from repro.core.strategies.bisection import (
    BisectionStrategy,
    structured_upper_bound,
    witness_source,
)

#: The default racing configurations, in priority order (ties in the race go
#: to the earliest index).  Phase-seed variants restart the same bound-driven
#: search from different first polarities — cheap diversity that pays off
#: exactly when one descent gets lucky.
DEFAULT_CONFIGS: tuple[dict, ...] = (
    {"strategy": "bisection"},
    {"strategy": "warmstart"},
    {"strategy": "linear"},
    {"strategy": "bisection", "phase_seed": 1},
    {"strategy": "bisection", "phase_seed": 2},
)

#: Minimum width of the [lower bound, structured upper bound] interval for
#: which racing worker processes beats running bisection inline.
RACE_THRESHOLD = 3

#: Minimum remaining deadline budget for which process fan-out still pays;
#: below this the portfolio delegates inline (startup would eat the budget).
MIN_RACE_SECONDS = 1.0


def run_portfolio_config(task: tuple) -> SchedulerReport:
    """Worker entry point: run one configuration to completion.

    Module-level so it pickles for the process pool.  *task* is
    ``(problem, config, limits, metadata, witness)``; the configuration's
    ``phase_seed`` is folded into the limits so every strategy sees it
    through the shared :class:`~repro.core.strategies.base.SearchContext`,
    and the triage-time structured *witness* is injected into the
    bound-driven strategies so no worker repeats the constructive
    scheduling pass.
    """
    from repro.core.strategies import get_strategy

    problem, config, limits, metadata, witness = task
    # A config without its own seed/backend inherits the caller's (so a
    # user-level SMTScheduler(phase_seed=..., sat_backend=...) behaves the
    # same raced or inline).
    limits = replace(
        limits,
        phase_seed=config.get("phase_seed", limits.phase_seed),
        sat_backend=config.get("sat_backend", limits.sat_backend),
    )
    strategy = get_strategy(config["strategy"])
    if witness is not None and isinstance(strategy, BisectionStrategy):
        strategy = type(strategy)(witness=witness)
    return strategy.run(problem, limits, metadata)


@register_strategy
class PortfolioStrategy(SearchStrategy):
    """Race heterogeneous solver configurations; first certificate wins."""

    name = "portfolio"
    requires_incremental = True

    def __init__(
        self,
        configs: Optional[Sequence[dict]] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self._configs = tuple(dict(config) for config in (configs or DEFAULT_CONFIGS))
        self._jobs = jobs

    def run(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict | None = None,
    ) -> SchedulerReport:
        start = time.monotonic()
        if not limits.incremental:
            raise ValueError(
                f"the {self.name!r} strategy requires an incremental scheduler"
            )
        # The schedule must advertise the portfolio whichever configuration
        # produces it (the winning configuration is recorded separately).
        metadata = {**(metadata or {}), "strategy": self.name}
        configs = self._configs + self._backend_variants(limits)
        jobs = self._jobs if self._jobs is not None else (os.cpu_count() or 1)
        jobs = max(1, min(jobs, len(configs)))
        witness = structured_upper_bound(problem)
        if jobs > 1 and self._should_race(problem, witness, limits):
            report = self._run_race(problem, limits, metadata, jobs, witness, configs)
        else:
            report = self._run_inline(problem, limits, metadata, witness)
        report.strategy = self.name
        report.solver_seconds = time.monotonic() - start
        return report

    # ------------------------------------------------------------------ #
    def _backend_variants(self, limits: SearchLimits) -> tuple[dict, ...]:
        """Extra configurations racing the other usable SAT backends.

        Every registered backend certifies the same optima (the knob trades
        speed, never answers), so whichever backend's bisection lands its
        certificate first is a legitimate winner.  Variants only join when
        the caller left the backend unpinned: an explicit
        ``limits.sat_backend`` is a request to measure *that* backend (e.g.
        the CI cross-backend agreement gate), which racing others would
        silently undermine.  Backends flagged ``race_variant=False`` (the
        deliberately slow seed reference) and the default backend already
        raced by the base configurations are skipped.
        """
        from repro.sat.backend import DEFAULT_BACKEND, backend_info, usable_backends

        if limits.sat_backend is not None:
            return ()
        return tuple(
            {"strategy": "bisection", "sat_backend": name}
            for name in usable_backends()
            if name != DEFAULT_BACKEND and backend_info(name).race_variant
        )

    def _should_race(
        self, problem: SchedulingProblem, witness, limits: SearchLimits
    ) -> bool:
        """Whether the analytic interval is wide enough to pay for fan-out.

        With a structured *witness* within :data:`RACE_THRESHOLD` stages of
        the lower bound, any single strategy finishes within a couple of
        probes and process startup would dominate.  Without a witness the
        interval is open — racing is how the portfolio hedges the unbounded
        search.  Racing is also disabled inside another pool's worker
        process (e.g. ``repro-nasp bench --jobs N``): the batch is already
        parallel there, and a harness-terminated worker cannot clean up a
        nested pool, which would orphan the grandchild solvers.  An
        (almost) expired deadline likewise delegates inline — process
        startup would eat the remaining budget before any worker probes.
        """
        if multiprocessing.parent_process() is not None:
            return False
        deadline = limits.deadline
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None and remaining < MIN_RACE_SECONDS:
                return False
        if witness is None:
            return True
        return witness.num_stages - problem.lower_bound() >= RACE_THRESHOLD

    def _run_inline(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict,
        witness=None,
    ) -> SchedulerReport:
        report = BisectionStrategy(witness=witness).run(problem, limits, metadata)
        # Same invariant as the raced path: an uncertified report must not
        # advertise a winner.
        if report.found and report.optimal:
            report.winner = {"strategy": "bisection", "mode": "inline"}
        return report

    def _run_race(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict,
        jobs: int,
        witness,
        configs: Sequence[dict],
    ) -> SchedulerReport:
        from repro.evaluation.runner import race_to_first

        tasks = [
            (problem, config, limits, dict(metadata), witness)
            for config in configs
        ]
        # Workers enforce the deadline cooperatively through the limits they
        # receive (Deadline pickles as an absolute monotonic instant, which
        # CLOCK_MONOTONIC keeps meaningful across processes); the race-level
        # timeout is a backstop against a worker that cannot reach its next
        # cooperative check in time.
        race_timeout = None
        if limits.deadline is not None:
            race_timeout = limits.deadline.remaining()
        outcome = race_to_first(
            run_portfolio_config,
            tasks,
            jobs=jobs,
            timeout=race_timeout,
            accept=lambda report: report.found and report.optimal,
        )
        report = outcome.winner
        if report is None:
            # No certificate: every configuration finished non-optimal (or
            # failed).  Keep the best effort — the first finished report
            # with a schedule, else the first finished, else degrade with
            # the analytic interval and the structured witness, exactly
            # like the single strategies do.
            report = self._best_effort(problem, limits, metadata, witness, outcome)
        if outcome.winner_index is not None:
            report.winner = {
                **configs[outcome.winner_index],
                "mode": "raced",
                "raced_configs": len(tasks),
                "finished": len(outcome.finished),
                "cancelled": len(outcome.cancelled),
            }
        else:
            # Nothing certified: the report is best-effort and must not
            # advertise a winner (consumers key on winner["strategy"]).
            report.winner = None
        report.statistics = {
            **report.statistics,
            "portfolio_race_seconds": outcome.seconds,
            "portfolio_cancelled": len(outcome.cancelled),
        }
        return report

    def _best_effort(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict,
        witness,
        outcome,
    ) -> SchedulerReport:
        """The graceful-degradation report when no configuration certified.

        Finished worker reports already honour the degradation contract
        (termination verdict, witness fallback, tightened interval), so the
        first one with a schedule is the best effort.  With nothing
        finished — the race expired or every worker failed — the portfolio
        degrades itself: analytic interval, structured witness as the
        schedule, and a termination verdict telling deadline expiry apart
        from backend failure.
        """
        finished: dict[int, SchedulerReport] = outcome.finished
        for index in sorted(finished):
            if finished[index].found:
                return finished[index]
        if finished:
            return finished[min(finished)]
        breakdown = problem.bound_breakdown()
        report = SchedulerReport(
            schedule=None,
            optimal=False,
            strategy=self.name,
            lower_bound=breakdown.total,
            lower_bound_source=breakdown.source,
        )
        expired = limits.deadline is not None and limits.deadline.expired()
        report.termination = (
            TERMINATION_DEADLINE
            if expired or not outcome.errors
            else TERMINATION_BACKEND_ERROR
        )
        if witness is not None:
            report.upper_bound = witness.num_stages
            report.upper_bound_source = witness_source(witness)
            if witness.num_stages <= limits.max_stages:
                witness.metadata.update(metadata)
                witness.metadata.setdefault("optimal", False)
                report.schedule = witness
        return report
