"""Strategy infrastructure: registry, limits, and the shared search context.

A *search strategy* decides which stage horizons to probe, and in what
order, to find the minimum stage count of a
:class:`~repro.core.problem.SchedulingProblem`.  Every strategy returns a
:class:`~repro.core.scheduler.SchedulerReport`; the
:class:`~repro.core.scheduler.SMTScheduler` facade looks strategies up by
name in the registry populated by :func:`register_strategy`.

:class:`SearchContext` owns the growable
:class:`~repro.core.encoding.IncrementalInstance` that all SMT-backed
strategies share: it lazily (re)builds the instance with capacity headroom,
extends it towards larger horizons, and decides smaller horizons on the same
instance through assumption literals — so learned clauses persist across
SAT *and* UNSAT horizons regardless of the probing order.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.budget import Deadline
from repro.core.encoding import IncrementalInstance, encode_incremental_problem
from repro.core.problem import SchedulingProblem
from repro.smt import CheckResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule import Schedule
    from repro.core.scheduler import SchedulerReport

#: Extra stage headroom reserved by a fresh incremental instance beyond the
#: first horizon it is asked to decide.  A small value keeps the up-front
#: ``gate_stage`` bit-vectors narrow (their domain covers the full capacity);
#: searches that outgrow the capacity rebuild the instance with double the
#: headroom, which costs one cold re-encode and is rare in practice.
_CAPACITY_HEADROOM = 7


@dataclass(frozen=True)
class SearchLimits:
    """Resource limits a scheduler run imposes on its strategy."""

    max_stages: int = 32
    max_conflicts: Optional[int] = None
    time_limit: Optional[float] = None
    #: Honoured by the linear strategy only: ``False`` re-encodes every
    #: horizon from scratch (the seed's cold-start reference behaviour).
    incremental: bool = True
    #: Seed for deterministic pseudo-random CDCL phase hints
    #: (:func:`seeded_phase_hints`).  ``None`` disables seeding.  Strategies
    #: that install their own hint provider (warmstart) override the seeded
    #: one.  Pure heuristic — never changes a SAT/UNSAT answer — which is
    #: what lets the portfolio race phase-seed variants soundly.
    phase_seed: Optional[int] = None
    #: Registry name of the SAT backend deciding every probe
    #: (:mod:`repro.sat.backend`).  ``None`` selects the default in-process
    #: flat-array core.  Every registered backend is sound and complete, so
    #: the knob trades speed, never answers — which is what lets the
    #: portfolio race backends as variants alongside phase seeds.
    sat_backend: Optional[str] = None
    #: Chronological backtracking in the flat core: ``None`` keeps the
    #: backend's default (on), ``False`` forces the pre-chrono backjumping
    #: search.  A pure search heuristic — answers never change — forwarded
    #: through :func:`repro.sat.backend.create_backend` and silently dropped
    #: by backends without the knob.
    sat_chrono: Optional[bool] = None
    #: Inprocessing (clause vivification + subsumption) in the flat core;
    #: same ``None``/``True``/``False`` semantics as :attr:`sat_chrono`.
    sat_inprocessing: Optional[bool] = None
    #: Whole-search wall-clock governance (:class:`repro.core.budget.Deadline`).
    #: Unlike :attr:`time_limit` — a *per-probe* cap handed identically to
    #: every probe — the deadline is absolute: every probe's effective time
    #: budget is sliced from the remaining whole-search time, strategies
    #: check it between probes, and on expiry they degrade along the
    #: graceful-degradation contract (``report.termination``).  ``None``
    #: means unbounded.
    deadline: Optional[Deadline] = None
    #: Per-check retry budget for transient SAT-backend failures (``None``
    #: keeps :data:`repro.smt.solver.DEFAULT_BACKEND_RETRIES`).
    backend_retries: Optional[int] = None

    @property
    def sat_backend_options(self) -> dict:
        """The backend factory options encoded in these limits."""
        options: dict = {}
        if self.sat_chrono is not None:
            options["chrono"] = self.sat_chrono
        if self.sat_inprocessing is not None:
            options["inprocessing"] = self.sat_inprocessing
        return options


class SearchContext:
    """One growable incremental instance serving a whole strategy run."""

    def __init__(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        capacity: Optional[int] = None,
    ) -> None:
        self.problem = problem
        self.limits = limits
        self._fixed_capacity = capacity
        self._headroom = _CAPACITY_HEADROOM
        self._instance: Optional[IncrementalInstance] = None
        self._hint_provider: Optional[Callable[[IncrementalInstance], dict]] = None
        if limits.phase_seed is not None:
            self._hint_provider = partial(seeded_phase_hints, seed=limits.phase_seed)

    @property
    def instance(self) -> Optional[IncrementalInstance]:
        """The current incremental instance (``None`` before the first probe)."""
        return self._instance

    def decide(self, horizon: int) -> CheckResult:
        """Decide satisfiability at *horizon* stages, growing as needed.

        With a deadline in the limits, the probe's effective time and
        conflict budgets are sliced from the *remaining* whole-search time
        (an expired deadline short-circuits to UNKNOWN inside the SMT
        facade), so no single probe can overrun the search budget.
        """
        instance = self._ensure_capacity(horizon)
        if horizon > instance.num_stages:
            instance.extend_to(horizon)
        return instance.check(
            max_conflicts=self.limits.max_conflicts,
            time_limit=self.limits.time_limit,
            horizon=horizon,
            deadline=self.limits.deadline,
        )

    def extract(self, horizon: int, metadata: dict | None = None) -> "Schedule":
        """Extract the schedule of the last SAT probe, truncated to *horizon*."""
        if self._instance is None:
            raise RuntimeError("no instance built yet; call decide() first")
        return self._instance.extract_schedule(metadata=metadata, horizon=horizon)

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent probe."""
        return {} if self._instance is None else self._instance.statistics()

    def set_hint_provider(
        self, provider: Callable[[IncrementalInstance], dict]
    ) -> None:
        """Register a callback producing phase hints for a (re)built instance.

        The provider runs once per instance construction (including capacity
        rebuilds) and returns a ``{variable: value}`` mapping passed to
        :meth:`repro.smt.solver.Solver.set_phase_hints`.  Registering a
        provider after the instance exists seeds it immediately.
        """
        self._hint_provider = provider
        if self._instance is not None:
            self._instance.set_phase_hints(provider(self._instance))

    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, horizon: int) -> IncrementalInstance:
        instance = self._instance
        if instance is not None and horizon <= instance.max_stages:
            return instance
        if instance is not None:
            # Capacity exhausted: rebuild with more headroom (one cold
            # re-encode; learned clauses of the old instance are dropped).
            self._headroom *= 2
        capacity = self._fixed_capacity
        if capacity is None or capacity < horizon:
            capacity = min(self.limits.max_stages, horizon + self._headroom)
        instance = encode_incremental_problem(
            self.problem,
            num_stages=horizon,
            max_stages=max(capacity, horizon),
            backend=self.limits.sat_backend,
            backend_options=self.limits.sat_backend_options or None,
            backend_retries=self.limits.backend_retries,
        )
        if self._hint_provider is not None:
            instance.set_phase_hints(self._hint_provider(instance))
        self._instance = instance
        return instance


def seeded_phase_hints(instance: IncrementalInstance, seed: int) -> dict:
    """Deterministic pseudo-random phase assignment for a fresh instance.

    Every ``gate_stage`` variable is hinted to a pseudo-random stage and
    every execution flag to a pseudo-random polarity, reproducibly derived
    from *seed*.  Like all phase hints these only bias the CDCL core's first
    descent; they cannot change any SAT/UNSAT answer, so the portfolio can
    race differently-seeded copies of the same strategy and keep whichever
    certificate lands first.
    """
    rng = random.Random(seed)
    hints: dict = {}
    capacity = instance.max_stages
    for var in instance.variables.gate_stage:
        hints[var] = rng.randrange(capacity)
    for var in instance.variables.execution:
        hints[var] = rng.random() < 0.5
    return hints


class SearchStrategy(ABC):
    """Interface every registered search strategy implements."""

    #: Registry key; set by subclasses.
    name: str = ""
    #: Whether the strategy needs ``limits.incremental`` (checked eagerly by
    #: the scheduler constructor so bad configurations fail fast).
    requires_incremental: bool = False

    @abstractmethod
    def run(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict | None = None,
    ) -> "SchedulerReport":
        """Search for a minimum-stage schedule of *problem*."""


_REGISTRY: dict[str, type[SearchStrategy]] = {}


def register_strategy(cls: type[SearchStrategy]) -> type[SearchStrategy]:
    """Class decorator adding a strategy to the registry (keyed by ``name``)."""
    if not cls.name:
        raise ValueError(f"strategy {cls.__name__} needs a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"strategy name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_strategies() -> list[str]:
    """Names of all registered strategies (sorted)."""
    return sorted(_REGISTRY)


def get_strategy(name: str) -> SearchStrategy:
    """Instantiate the strategy registered under *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_strategies())
        raise ValueError(f"unknown strategy {name!r} (available: {known})") from None
    return cls()
