"""The linear (iterative-deepening) search strategy.

This is the paper's Sec. V-A procedure and the seed's behaviour: starting
from the analytic lower bound, increment the stage count until the first
satisfiable horizon.  With ``limits.incremental`` (the default) one growable
instance is extended in place and every horizon is decided under an
assumption literal, so CDCL learned clauses survive each UNSAT horizon; with
``incremental=False`` every horizon re-encodes a fresh cold-start instance —
slower on multi-horizon searches, kept as the validation reference.

Like every strategy, the linear search honours the graceful-degradation
contract: a deadline expiry or a permanent backend failure never raises —
the report carries a ``termination`` verdict, the structured witness as a
best-known fallback schedule, and the interval proven by the UNSAT probes
that completed (each UNSAT at ``S`` lifts the proven lower bound to
``S + 1``; UNKNOWN probes prove nothing and are never counted).
"""

from __future__ import annotations

import time

from repro.core.encoding import encode_problem
from repro.core.problem import SchedulingProblem
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_CERTIFIED,
    TERMINATION_DEADLINE,
    TERMINATION_INFEASIBLE,
    SchedulerReport,
)
from repro.core.strategies.base import (
    SearchContext,
    SearchLimits,
    SearchStrategy,
    register_strategy,
)
from repro.core.strategies.bisection import (
    attach_fallback_witness,
    lift_lower_bound,
)
from repro.sat.errors import BackendError
from repro.smt import CheckResult


@register_strategy
class LinearStrategy(SearchStrategy):
    """Try S = lower bound, lower bound + 1, ... until SAT."""

    name = "linear"

    def run(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict | None = None,
    ) -> SchedulerReport:
        start = time.monotonic()
        deadline = limits.deadline
        breakdown = problem.bound_breakdown()
        lower_bound = breakdown.total
        report = SchedulerReport(
            schedule=None,
            optimal=False,
            strategy=self.name,
            lower_bound=lower_bound,
            lower_bound_source=breakdown.source,
            upper_bound=None,
        )
        merged = {
            "optimal": False,
            "strategy": self.name,
            **problem.metadata,
            **(metadata or {}),
        }
        if lower_bound > limits.max_stages:
            report.termination = TERMINATION_INFEASIBLE
            report.solver_seconds = time.monotonic() - start
            return report
        context = SearchContext(problem, limits) if limits.incremental else None
        optimal = True
        # The lower bound proven by completed UNSAT probes.  UNKNOWN probes
        # must never lift it: they refute nothing.
        proven_low = lower_bound
        saw_unknown = False
        backend_error = False
        expired = False
        for num_stages in range(lower_bound, limits.max_stages + 1):
            if deadline is not None and deadline.expired():
                expired = True
                optimal = False
                break
            report.stages_tried.append(num_stages)
            try:
                if context is not None:
                    result = context.decide(num_stages)
                    report.statistics = context.statistics()
                else:
                    instance = encode_problem(
                        problem,
                        num_stages,
                        backend=limits.sat_backend,
                        backend_options=limits.sat_backend_options or None,
                        backend_retries=limits.backend_retries,
                    )
                    result = instance.check(
                        max_conflicts=limits.max_conflicts,
                        time_limit=limits.time_limit,
                        deadline=deadline,
                    )
                    report.statistics = instance.statistics()
            except BackendError as exc:
                backend_error = True
                optimal = False
                report.statistics = {**report.statistics, "backend_error": 1.0}
                merged.setdefault("backend_error", str(exc))
                break
            if result is CheckResult.UNKNOWN:
                # Could not decide this stage count: any later answer is no
                # longer guaranteed to be minimal.
                saw_unknown = True
                optimal = False
                continue
            if result is CheckResult.UNSAT:
                proven_low = num_stages + 1
                continue
            merged["optimal"] = optimal
            if context is not None:
                report.schedule = context.extract(num_stages, metadata=dict(merged))
            else:
                report.schedule = instance.extract_schedule(metadata=dict(merged))
            report.optimal = optimal
            break

        if report.schedule is not None:
            report.termination = (
                TERMINATION_CERTIFIED if report.optimal else TERMINATION_DEADLINE
            )
            if not report.optimal:
                lift_lower_bound(report, proven_low)
                report.upper_bound = report.schedule.num_stages
                report.upper_bound_source = "sat-probe"
        elif backend_error:
            report.termination = TERMINATION_BACKEND_ERROR
            lift_lower_bound(report, proven_low)
            attach_fallback_witness(report, problem, limits, merged)
        elif expired or saw_unknown:
            report.termination = TERMINATION_DEADLINE
            lift_lower_bound(report, proven_low)
            attach_fallback_witness(report, problem, limits, merged)
        else:
            # Every horizon up to the stage budget was genuinely refuted.
            report.termination = TERMINATION_INFEASIBLE
        report.solver_seconds = time.monotonic() - start
        return report
