"""The linear (iterative-deepening) search strategy.

This is the paper's Sec. V-A procedure and the seed's behaviour: starting
from the analytic lower bound, increment the stage count until the first
satisfiable horizon.  With ``limits.incremental`` (the default) one growable
instance is extended in place and every horizon is decided under an
assumption literal, so CDCL learned clauses survive each UNSAT horizon; with
``incremental=False`` every horizon re-encodes a fresh cold-start instance —
slower on multi-horizon searches, kept as the validation reference.
"""

from __future__ import annotations

import time

from repro.core.encoding import encode_problem
from repro.core.problem import SchedulingProblem
from repro.core.report import SchedulerReport
from repro.core.strategies.base import (
    SearchContext,
    SearchLimits,
    SearchStrategy,
    register_strategy,
)
from repro.smt import CheckResult


@register_strategy
class LinearStrategy(SearchStrategy):
    """Try S = lower bound, lower bound + 1, ... until SAT."""

    name = "linear"

    def run(
        self,
        problem: SchedulingProblem,
        limits: SearchLimits,
        metadata: dict | None = None,
    ) -> SchedulerReport:
        start = time.monotonic()
        breakdown = problem.bound_breakdown()
        lower_bound = breakdown.total
        report = SchedulerReport(
            schedule=None,
            optimal=False,
            strategy=self.name,
            lower_bound=lower_bound,
            lower_bound_source=breakdown.source,
            upper_bound=None,
        )
        if lower_bound > limits.max_stages:
            report.solver_seconds = time.monotonic() - start
            return report
        context = SearchContext(problem, limits) if limits.incremental else None
        optimal = True
        for num_stages in range(lower_bound, limits.max_stages + 1):
            report.stages_tried.append(num_stages)
            if context is not None:
                result = context.decide(num_stages)
                report.statistics = context.statistics()
            else:
                instance = encode_problem(
                    problem,
                    num_stages,
                    backend=limits.sat_backend,
                    backend_options=limits.sat_backend_options or None,
                )
                result = instance.check(
                    max_conflicts=limits.max_conflicts, time_limit=limits.time_limit
                )
                report.statistics = instance.statistics()
            if result is CheckResult.UNKNOWN:
                # Could not decide this stage count: any later answer is no
                # longer guaranteed to be minimal.
                optimal = False
                continue
            if result is CheckResult.UNSAT:
                continue
            merged = {
                "optimal": optimal,
                "strategy": self.name,
                **problem.metadata,
                **(metadata or {}),
            }
            if context is not None:
                report.schedule = context.extract(num_stages, metadata=merged)
            else:
                report.schedule = instance.extract_schedule(metadata=merged)
            report.optimal = optimal
            break
        report.solver_seconds = time.monotonic() - start
        return report
