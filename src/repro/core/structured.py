"""A constructive, zone-aware scheduler for full-size instances.

The SMT backend (:mod:`repro.core.scheduler`) reproduces the paper's exact
approach but — with a pure-Python SAT core — cannot solve the full-size
Table I instances in reasonable time (the paper itself reports up to 320 h of
Z3 time).  This module provides a *constructive* scheduler whose schedules
are feasible by construction and are certified by the same independent
validator.  It follows a fixed choreography:

* Every qubit is assigned a static **home**: an SLM trap in the storage zone
  (architectures with storage) or in a non-beam row of the entangling zone
  (the no-shielding layout).  If the storage zone is too small for all
  qubits, a single *homeless* qubit permanently lives in an AOD trap parked
  over the storage zone.
* CZ gates are grouped into **rounds**.  Each round becomes one Rydberg
  stage: the participating qubits are picked up from their homes by AOD
  columns, brought to a dedicated beam row of the entangling zone, entangled
  and returned to their homes, where the next transfer stage stores them and
  simultaneously loads the next round's qubits.
* Idle qubits never move: on zoned layouts they remain shielded in the
  storage zone during every beam (Eq. 14); on the no-shielding layout they
  sit at separate sites of the entangling zone and accumulate the Rydberg
  idling error, exactly like the baseline the paper compares against.

Within a round the AOD order-preservation rules (C2/C6) are satisfied by
construction: gates are admitted to a round only if the home columns of
their operands form pairwise disjoint x-intervals, so the pick-up order,
the beam order and the drop-off order all coincide.  Partners that share a
home column are paired vertically (they share an AOD column); partners from
different columns are paired horizontally.

The resulting schedules use one transfer stage per round boundary
(#T = #R - 1) and are therefore not always minimal in the number of
transfer stages; the optimality claims of the paper are reproduced with the
SMT backend on small instances, while this backend scales to all Table I
codes within seconds.

The airborne (storage-less) choreography
----------------------------------------

:meth:`StructuredScheduler.schedule_airborne` builds *transfer-free*
schedules: every qubit lives in an AOD trap for the whole schedule, so no
storage zone — and no transfer stage — is ever used.  Because execution
transitions freeze trap types and AOD indices (Eqs. 15-17), an all-Rydberg
schedule pins each qubit to one (column, row) AOD line pair forever; the
choreography therefore stages the gate graph by *edge colouring* and
realises each colour class as a folding of a rigid AOD grid:

* a **vertical fold** brings two adjacent AOD rows to the same interaction
  site row, executing the gate between the two qubits of every folded
  column;
* a **horizontal fold** does the same for two adjacent AOD columns.

On an architecture whose entangling zone covers every row (the paper's
no-shielding layout), shielding idle qubits is impossible — so a shielded
schedule exists only when *no qubit is ever idle*: every beam is a perfect
matching over all qubits and every qubit carries the same gate load ``k``.
The grid-fold realisation supports exactly the gate multigraphs whose
components are single edges (``k = 1``), parallel edge bundles (the same
pair beamed ``k`` times), and 4-cycles (``k = 2``); anything else raises
``ValueError`` and the caller falls back to the storage choreography or
reports no upper bound.  When it applies, the schedule has exactly ``k``
stages — which meets the per-qubit-load lower bound, so the witness is
*optimal* and bound-driven search certifies it without any SMT probe.

The airborne witness is also valid (and often much tighter) on storage
architectures: a schedule with no idle-qubit exposure trivially satisfies
Eq. 14, so :func:`repro.core.strategies.bisection.structured_upper_bound`
offers it as an upper-bound candidate everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.problem import SchedulingProblem
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind


@dataclass
class _Home:
    """A qubit's static SLM home site."""

    x: int
    y: int
    #: Rank of the home row among all home rows (defines the beam offset).
    group: int


class StructuredScheduler:
    """Constructive zone-aware scheduler (see module docstring).

    The scheduler is stateless between calls: each :meth:`schedule`
    invocation reads circuit and architecture from its
    :class:`~repro.core.problem.SchedulingProblem` argument, so one instance
    serves any number of problems (it is not safe to share across threads,
    as per-call geometry is cached on the instance while scheduling).
    """

    def __init__(self) -> None:
        self._arch = None
        self._beam_row = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        problem: SchedulingProblem,
        metadata: dict | None = None,
    ) -> Schedule:
        """Build a schedule for *problem* on its architecture."""
        if not isinstance(problem, SchedulingProblem):
            raise TypeError(
                "StructuredScheduler.schedule() takes a SchedulingProblem; "
                "build one with SchedulingProblem.from_gates(architecture, "
                "num_qubits, cz_gates) or SchedulingProblem.from_circuit(...)"
            )
        if problem.shielding and not problem.architecture.has_storage:
            # The home-based choreography parks idle qubits in SLM traps
            # inside the entangling zone, which Eq. 14 forbids here; the
            # transfer-free airborne choreography is the only structured
            # schedule that can shield on a storage-less architecture.
            return self.schedule_airborne(problem, metadata)
        self._arch = problem.architecture
        self._beam_row = self._choose_beam_row()
        num_qubits = problem.num_qubits
        gates = list(problem.gates)
        homes, homeless = self._assign_homes(num_qubits, gates)
        rounds = self._build_rounds(gates, homes, homeless)
        stages = self._build_stages(num_qubits, rounds, homes, homeless)
        return Schedule(
            architecture=self._arch,
            num_qubits=num_qubits,
            stages=stages,
            target_gates=list(gates),
            metadata={
                "backend": "structured",
                "choreography": "homes",
                **problem.metadata,
                **(metadata or {}),
            },
        )

    def schedule_airborne(
        self,
        problem: SchedulingProblem,
        metadata: dict | None = None,
    ) -> Schedule:
        """Build a transfer-free all-airborne schedule (see module docstring).

        Raises ``ValueError`` when the gate multigraph is outside the
        supported class (non-regular load, odd qubit count, or a component
        that is not a single edge, a parallel-edge bundle, or a 4-cycle) or
        when the architecture cannot host the AOD grid.
        """
        if not isinstance(problem, SchedulingProblem):
            raise TypeError(
                "StructuredScheduler.schedule_airborne() takes a "
                "SchedulingProblem; build one with SchedulingProblem."
                "from_gates(...) or SchedulingProblem.from_circuit(...)"
            )
        arch = problem.architecture
        self._arch = arch
        num_qubits = problem.num_qubits
        gates = list(problem.gates)
        if not gates:
            raise ValueError("the airborne choreography needs at least one gate")
        if num_qubits % 2:
            raise ValueError(
                "odd qubit count: some qubit would idle in every beam"
            )
        load = problem.gate_load()
        rounds = load[0]
        if rounds == 0 or any(l != rounds for l in load):
            raise ValueError(
                "gate multigraph is not load-regular: some qubit would idle "
                "during a beam"
            )
        if arch.interaction_radius < 2:
            raise ValueError("airborne gate pairing needs interaction radius >= 2")
        if arch.h_max < 1 or arch.v_max < 1:
            raise ValueError("airborne gate pairing needs offsets |h|,|v| >= 1")
        pair_units, cycle_units = self._airborne_units(problem, rounds)
        stages = self._build_airborne_stages(
            num_qubits, rounds, pair_units, cycle_units
        )
        return Schedule(
            architecture=arch,
            num_qubits=num_qubits,
            stages=stages,
            target_gates=gates,
            metadata={
                "backend": "structured",
                "choreography": "airborne",
                **problem.metadata,
                **(metadata or {}),
            },
        )

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def _choose_beam_row(self) -> int:
        """The entangling-zone row used for Rydberg beams."""
        e_min, e_max = self._arch.entangling_rows
        return (e_min + e_max) // 2

    def _home_rows(self) -> list[int]:
        """Rows that may carry SLM homes, ordered by increasing y."""
        arch = self._arch
        if arch.has_storage:
            return arch.storage_rows()
        e_min, e_max = arch.entangling_rows
        rows = [y for y in range(e_min, e_max + 1) if y != self._beam_row]
        return rows if rows else [e_min]

    def _assign_homes(
        self, num_qubits: int, gates: Sequence[tuple[int, int]] = ()
    ) -> tuple[dict[int, _Home], int | None]:
        """Assign each qubit a home site; return (homes, homeless qubit).

        Home columns are assigned along a bandwidth-reducing ordering of the
        interaction graph (reverse Cuthill–McKee) so that gate partners tend
        to live in nearby columns, which lets the round builder pack more
        gates per Rydberg stage.
        """
        arch = self._arch
        rows = self._home_rows()
        capacity = len(rows) * (arch.x_max + 1)
        # Use as few home rows as possible and prefer the rows closest to the
        # beam row: fewer row groups mean fewer group-adjacency conflicts per
        # round, and nearby rows mean shorter shuttles (this is where the
        # double-sided layout gains over the bottom-only layout).
        needed_rows = -(-num_qubits // (arch.x_max + 1))
        if 0 < needed_rows < len(rows):
            by_proximity = sorted(rows, key=lambda row: (abs(row - self._beam_row), row))
            rows = sorted(by_proximity[:needed_rows])
        order = self._qubit_order(num_qubits, gates)
        homeless: int | None = None
        if num_qubits > capacity:
            if num_qubits > capacity + 1:
                raise ValueError(
                    f"architecture offers {capacity} home sites but the circuit has "
                    f"{num_qubits} qubits"
                )
            homeless = order.pop()
        homes: dict[int, _Home] = {}
        for index, qubit in enumerate(order):
            # Fill column by column so that consecutive qubits in the
            # ordering share a home column (they can then be paired
            # vertically within one AOD column).
            x, row_index = divmod(index, len(rows))
            homes[qubit] = _Home(x=x, y=rows[row_index], group=row_index)
        return homes, homeless

    def _qubit_order(
        self, num_qubits: int, gates: Sequence[tuple[int, int]]
    ) -> list[int]:
        """Bandwidth-reducing qubit ordering for home assignment."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(num_qubits))
        graph.add_edges_from(gates)
        try:
            order = list(nx.utils.reverse_cuthill_mckee_ordering(graph))
        except Exception:  # pragma: no cover - networkx API fallback
            order = list(range(num_qubits))
        if len(order) != num_qubits:
            order = list(range(num_qubits))
        return order

    # ------------------------------------------------------------------ #
    # Round construction
    # ------------------------------------------------------------------ #
    def _max_gates_per_round(self, homeless_exists: bool) -> int:
        """Hard cap on gates per Rydberg stage (one beam site per gate)."""
        return self._arch.x_max + 1

    def _available_columns(self, homeless_exists: bool) -> int:
        """AOD columns usable for picked-up qubits."""
        return self._arch.num_aod_columns - (1 if homeless_exists else 0)

    def _build_rounds(
        self,
        gates: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> list[list[tuple[int, int]]]:
        """Greedy grouping of gates into rounds satisfying the choreography rules."""
        def right_endpoint(gate: tuple[int, int]) -> float:
            a, b = gate
            return max(
                self._virtual_x(a, homes, homeless), self._virtual_x(b, homes, homeless)
            )

        # Classic interval-scheduling greedy: processing gates by the right
        # endpoint of their home-column interval maximises the number of
        # disjoint intervals packed into each Rydberg stage.
        remaining = sorted(gates, key=right_endpoint)
        rounds: list[list[tuple[int, int]]] = []
        limit = self._max_gates_per_round(homeless is not None)
        while remaining:
            chosen: list[tuple[int, int]] = []
            for gate in list(remaining):
                if len(chosen) >= limit:
                    break
                if self._round_accepts(chosen + [gate], homes, homeless):
                    chosen.append(gate)
            if not chosen:
                # A singleton round is always feasible (vertical or horizontal
                # pairing of a single pair of qubits).
                chosen = [remaining[0]]
            for gate in chosen:
                remaining.remove(gate)
            rounds.append(chosen)
        return rounds

    def _virtual_x(self, qubit: int, homes: dict[int, _Home], homeless: int | None) -> float:
        """Pick-up column of a qubit (the homeless one sits right of all homes)."""
        if homeless is not None and qubit == homeless:
            return self._arch.x_max + 0.5
        return float(homes[qubit].x)

    def _round_accepts(
        self,
        candidate: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> bool:
        """Check the choreography rules for a tentative round."""
        qubits = [q for gate in candidate for q in gate]
        if len(set(qubits)) != len(qubits):
            return False  # gates must be qubit-disjoint
        xs = {q: self._virtual_x(q, homes, homeless) for q in qubits}
        # The pick-up needs one AOD column per distinct home column in use.
        if len(set(xs.values())) > self._available_columns(homeless is not None):
            return False
        # Two qubits of *different* gates must not share a pick-up column.
        for a, b in candidate:
            for other_a, other_b in candidate:
                if (a, b) == (other_a, other_b):
                    continue
                if xs[a] in (xs[other_a], xs[other_b]) or xs[b] in (xs[other_a], xs[other_b]):
                    return False
        # Pairwise disjoint home-x intervals keep pick-up and beam order equal.
        intervals = sorted(
            (min(xs[a], xs[b]), max(xs[a], xs[b])) for a, b in candidate
        )
        for (_, high1), (low2, _) in zip(intervals, intervals[1:]):
            if low2 <= high1:
                return False
        # Partner home rows must be adjacent in the set of used rows so that
        # the vertical beam offsets stay within the blockade radius.
        used_groups = sorted({homes[q].group for q in qubits if q in homes})
        if len(used_groups) > 2 * self._arch.v_max + 1:
            return False
        rank = {group: i for i, group in enumerate(used_groups)}
        for a, b in candidate:
            if homeless is not None and homeless in (a, b):
                partner = b if a == homeless else a
                # The homeless qubit flies at the lowest beam offset and the
                # right-most column; its partner must therefore belong to the
                # lowest used home row and be the right-most regular pick-up.
                if rank.get(homes[partner].group, 0) != 0:
                    return False
                others = [q for q in qubits if q not in (a, b)]
                if any(xs[q] > xs[partner] for q in others):
                    return False
                continue
            group_a, group_b = homes[a].group, homes[b].group
            if xs[a] == xs[b]:
                # Vertical pairing: the partners share an AOD column; their
                # home rows must be adjacent among the used rows.
                if abs(rank[group_a] - rank[group_b]) != 1:
                    return False
            elif abs(rank[group_a] - rank[group_b]) > 1:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Stage construction
    # ------------------------------------------------------------------ #
    def _build_stages(
        self,
        num_qubits: int,
        rounds: list[list[tuple[int, int]]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> list[Stage]:
        park = self._park_placement() if homeless is not None else None
        home_placement = {
            q: QubitPlacement(x=home.x, y=home.y, in_aod=False) for q, home in homes.items()
        }
        def hover_placements(active: list[int]) -> dict[int, QubitPlacement]:
            """All qubits at rest: actives hover in AOD above their homes."""
            columns = self._column_indices(active, homes, homeless)
            row_indices = self._row_indices(active, homes, homeless)
            placements: dict[int, QubitPlacement] = {}
            for qubit in range(num_qubits):
                if homeless is not None and qubit == homeless:
                    placement = park
                    if qubit in active:
                        placement = park.moved_to(
                            column=columns[qubit], row=row_indices[qubit]
                        )
                    placements[qubit] = placement
                elif qubit in active:
                    home = homes[qubit]
                    placements[qubit] = QubitPlacement(
                        x=home.x,
                        y=home.y,
                        in_aod=True,
                        column=columns[qubit],
                        row=row_indices[qubit],
                    )
                else:
                    placements[qubit] = home_placement[qubit]
            return placements

        stages: list[Stage] = []
        for index, round_gates in enumerate(rounds):
            active = sorted({q for gate in round_gates for q in gate})
            layout = self._beam_layout(round_gates, homes, homeless)
            placements = {}
            for qubit in range(num_qubits):
                if qubit in layout:
                    placements[qubit] = layout[qubit]
                elif homeless is not None and qubit == homeless:
                    placements[qubit] = park
                else:
                    placements[qubit] = home_placement[qubit]
            stages.append(
                Stage(kind=StageKind.RYDBERG, placements=placements, gates=list(round_gates))
            )
            if index == len(rounds) - 1:
                break
            next_active = sorted({q for gate in rounds[index + 1] for q in gate})
            regular_active = [q for q in active if q != homeless]
            regular_next = [q for q in next_active if q != homeless]
            shared = sorted(set(regular_active) & set(regular_next))
            if not shared:
                # Single transfer stage: store this round's qubits (hovering
                # above their homes) and load the next round's qubits.
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements(active),
                        stored_qubits=regular_active,
                        loaded_qubits=regular_next,
                    )
                )
            else:
                # Qubits shared between consecutive rounds cannot be stored
                # and re-loaded within one stage, and keeping them airborne
                # can block the storage of their AOD line.  Use two transfer
                # stages: first store everybody, then load the next round.
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements(active),
                        stored_qubits=regular_active,
                        loaded_qubits=[],
                    )
                )
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements([]),
                        stored_qubits=[],
                        loaded_qubits=regular_next,
                    )
                )
        return stages

    # ------------------------------------------------------------------ #
    # Airborne (storage-less) choreography
    # ------------------------------------------------------------------ #
    def _airborne_units(
        self, problem: SchedulingProblem, rounds: int
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int, int, int]]]:
        """Decompose the gate multigraph into grid-realisable units.

        Returns ``(pair_units, cycle_units)``: a pair unit is two qubits
        joined by ``rounds`` parallel gate copies (one AOD column, beamed
        vertically in every round); a cycle unit is a simple 4-cycle
        (two adjacent AOD columns whose proper 2-edge-colouring alternates
        a vertical and a horizontal fold).  Any other component shape
        cannot keep every qubit busy in every beam on a rigid AOD grid and
        raises ``ValueError``.
        """
        # Per-edge multiplicity never enters the classification: the caller's
        # load-regularity check already pins a 2-vertex component to exactly
        # ``rounds`` parallel copies and a 4-vertex degree-2 component to
        # four simple edges.
        adjacency = problem.interaction_graph()
        pair_units: list[tuple[int, int]] = []
        cycle_units: list[tuple[int, int, int, int]] = []
        seen: set[int] = set()
        for root in range(problem.num_qubits):
            if root in seen:
                continue
            component = {root}
            frontier = [root]
            while frontier:
                vertex = frontier.pop()
                for neighbour in adjacency[vertex]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            if len(component) == 2:
                pair_units.append(tuple(sorted(component)))
            elif len(component) == 4 and rounds == 2:
                cycle_units.append(self._airborne_cycle(component, adjacency))
            else:
                raise ValueError(
                    f"interaction component {sorted(component)} is neither a "
                    "gate pair nor a 4-cycle; no rigid AOD grid keeps every "
                    "qubit busy in every beam"
                )
        return pair_units, cycle_units

    def _airborne_cycle(
        self, component: set[int], adjacency: dict[int, set[int]]
    ) -> tuple[int, int, int, int]:
        """Order a 4-vertex component as a simple cycle ``v0-v1-v2-v3-v0``."""
        if any(len(adjacency[v] & component) != 2 for v in component):
            raise ValueError(
                f"interaction component {sorted(component)} is not a simple "
                "4-cycle"
            )
        v0 = min(component)
        v1 = min(adjacency[v0] & component)
        (v2,) = (adjacency[v1] & component) - {v0}
        (v3,) = component - {v0, v1, v2}
        if v3 not in adjacency[v2] or v0 not in adjacency[v3]:
            raise ValueError(
                f"interaction component {sorted(component)} is not a simple "
                "4-cycle"
            )
        return (v0, v1, v2, v3)

    def _build_airborne_stages(
        self,
        num_qubits: int,
        rounds: int,
        pair_units: list[tuple[int, int]],
        cycle_units: list[tuple[int, int, int, int]],
    ) -> list[Stage]:
        """All-Rydberg stages of the airborne choreography.

        Every qubit keeps one (column, row) AOD index pair for the whole
        schedule (execution transitions freeze them); only the *positions*
        of the AOD lines move between beams.  Cycle units occupy AOD rows
        0/1, pair units rows 2/3 when both kinds coexist (their folds
        differ per round, so they cannot share row lines).
        """
        arch = self._arch
        num_columns = 2 * len(cycle_units) + len(pair_units)
        if num_columns > arch.num_aod_columns:
            raise ValueError(
                f"airborne grid needs {num_columns} AOD columns but the "
                f"architecture offers {arch.num_aod_columns}"
            )
        pair_rows = (2, 3) if (cycle_units and pair_units) else (0, 1)
        num_rows = 4 if (cycle_units and pair_units) else 2
        if num_rows > arch.num_aod_rows:
            raise ValueError(
                f"airborne grid needs {num_rows} AOD rows but the "
                f"architecture offers {arch.num_aod_rows}"
            )
        e_min, e_max = arch.entangling_rows
        stages: list[Stage] = []
        for round_index in range(rounds):
            vertical_cycle_fold = round_index == 0
            # Vertical positions of the AOD rows, bottom-up; each entry is a
            # (site row, v offset) pair.
            row_position: dict[int, tuple[int, int]] = {}
            next_y = e_min
            if cycle_units:
                if vertical_cycle_fold:
                    row_position[0] = (next_y, 0)
                    row_position[1] = (next_y, 1)
                    next_y += 1
                else:
                    row_position[0] = (next_y, 0)
                    row_position[1] = (next_y + 1, 0)
                    next_y += 2
            if pair_units:
                row_position[pair_rows[0]] = (next_y, 0)
                row_position[pair_rows[1]] = (next_y, 1)
                next_y += 1
            if next_y - 1 > e_max:
                raise ValueError(
                    "entangling zone too narrow for the airborne row layout"
                )
            placements: dict[int, QubitPlacement] = {}
            stage_gates: list[tuple[int, int]] = []
            next_x = 0
            for index, (v0, v1, v2, v3) in enumerate(cycle_units):
                left, right = 2 * index, 2 * index + 1
                if vertical_cycle_fold:
                    # Columns at separate sites; rows folded: beams (v0,v1)
                    # and (v2,v3).
                    grid = {
                        v0: (next_x, 0, left, 0),
                        v1: (next_x, 0, left, 1),
                        v3: (next_x + 1, 0, right, 0),
                        v2: (next_x + 1, 0, right, 1),
                    }
                    stage_gates += [(v0, v1), (v2, v3)]
                    next_x += 2
                else:
                    # Columns folded onto one site column; rows at separate
                    # sites: beams (v3,v0) and (v1,v2).
                    grid = {
                        v0: (next_x, 0, left, 0),
                        v3: (next_x, 1, right, 0),
                        v1: (next_x, 0, left, 1),
                        v2: (next_x, 1, right, 1),
                    }
                    stage_gates += [(v3, v0), (v1, v2)]
                    next_x += 1
                for qubit, (x, h, column, row) in grid.items():
                    y, v = row_position[row]
                    placements[qubit] = QubitPlacement(
                        x=x, y=y, h=h, v=v, in_aod=True, column=column, row=row
                    )
            for index, (a, b) in enumerate(pair_units):
                column = 2 * len(cycle_units) + index
                for qubit, row in ((a, pair_rows[0]), (b, pair_rows[1])):
                    y, v = row_position[row]
                    placements[qubit] = QubitPlacement(
                        x=next_x, y=y, h=0, v=v, in_aod=True, column=column, row=row
                    )
                stage_gates.append((a, b))
                next_x += 1
            if next_x - 1 > arch.x_max:
                raise ValueError(
                    f"airborne grid needs {next_x} site columns but the "
                    f"architecture offers {arch.x_max + 1}"
                )
            stages.append(
                Stage(
                    kind=StageKind.RYDBERG,
                    placements=placements,
                    gates=stage_gates,
                )
            )
        return stages

    def _park_placement(self) -> QubitPlacement:
        """Permanent AOD parking spot of the homeless qubit."""
        arch = self._arch
        rows = self._home_rows()
        return QubitPlacement(
            x=arch.x_max,
            y=rows[0],
            h=min(1, arch.h_max),
            v=-min(1, arch.v_max),
            in_aod=True,
            column=arch.c_max,
            row=0,
        )

    def _column_indices(
        self, active: list[int], homes: dict[int, _Home], homeless: int | None
    ) -> dict[int, int]:
        """AOD column index per active qubit: rank of its pick-up column."""
        indices: dict[int, int] = {}
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        distinct_x = sorted({homes[q].x for q in regular})
        for qubit in regular:
            indices[qubit] = distinct_x.index(homes[qubit].x)
        if homeless is not None and homeless in active:
            indices[homeless] = self._arch.c_max
        return indices

    def _row_indices(
        self, active: list[int], homes: dict[int, _Home], homeless: int | None
    ) -> dict[int, int]:
        """AOD row index per active qubit: rank of its home row."""
        indices: dict[int, int] = {}
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        groups = sorted({homes[q].group for q in regular})
        shift = 1 if homeless is not None else 0
        for qubit in regular:
            indices[qubit] = groups.index(homes[qubit].group) + shift
        if homeless is not None and homeless in active:
            indices[homeless] = 0
        return indices

    def _beam_layout(
        self,
        round_gates: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> dict[int, QubitPlacement]:
        """Positions of the round's qubits during its Rydberg beam."""
        arch = self._arch
        active = sorted({q for gate in round_gates for q in gate})
        xs = {q: self._virtual_x(q, homes, homeless) for q in active}
        columns = self._column_indices(active, homes, homeless)
        row_indices = self._row_indices(active, homes, homeless)
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        used_groups = sorted({homes[q].group for q in regular})
        rank = {group: i for i, group in enumerate(used_groups)}
        shift = 1 if homeless is not None else 0
        base = -min(arch.v_max, max(0, len(used_groups) - 1 + shift))
        ordered_gates = sorted(round_gates, key=lambda gate: min(xs[gate[0]], xs[gate[1]]))

        layout: dict[int, QubitPlacement] = {}
        for site_index, (a, b) in enumerate(ordered_gates):
            first, second = (a, b) if xs[a] <= xs[b] else (b, a)
            vertical_pair = xs[a] == xs[b]
            for position_index, qubit in enumerate((first, second)):
                if homeless is not None and qubit == homeless:
                    v_offset = base
                else:
                    v_offset = base + rank[homes[qubit].group] + shift
                h_offset = 0 if (vertical_pair or position_index == 0) else min(1, arch.h_max)
                layout[qubit] = QubitPlacement(
                    x=site_index,
                    y=self._beam_row,
                    h=h_offset,
                    v=v_offset,
                    in_aod=True,
                    column=columns[qubit],
                    row=row_indices[qubit],
                )
        return layout
