"""A constructive, zone-aware scheduler for full-size instances.

The SMT backend (:mod:`repro.core.scheduler`) reproduces the paper's exact
approach but — with a pure-Python SAT core — cannot solve the full-size
Table I instances in reasonable time (the paper itself reports up to 320 h of
Z3 time).  This module provides a *constructive* scheduler whose schedules
are feasible by construction and are certified by the same independent
validator.  It follows a fixed choreography:

* Every qubit is assigned a static **home**: an SLM trap in the storage zone
  (architectures with storage) or in a non-beam row of the entangling zone
  (the no-shielding layout).  If the storage zone is too small for all
  qubits, a single *homeless* qubit permanently lives in an AOD trap parked
  over the storage zone.
* CZ gates are grouped into **rounds**.  Each round becomes one Rydberg
  stage: the participating qubits are picked up from their homes by AOD
  columns, brought to a dedicated beam row of the entangling zone, entangled
  and returned to their homes, where the next transfer stage stores them and
  simultaneously loads the next round's qubits.
* Idle qubits never move: on zoned layouts they remain shielded in the
  storage zone during every beam (Eq. 14); on the no-shielding layout they
  sit at separate sites of the entangling zone and accumulate the Rydberg
  idling error, exactly like the baseline the paper compares against.

Within a round the AOD order-preservation rules (C2/C6) are satisfied by
construction: gates are admitted to a round only if the home columns of
their operands form pairwise disjoint x-intervals, so the pick-up order,
the beam order and the drop-off order all coincide.  Partners that share a
home column are paired vertically (they share an AOD column); partners from
different columns are paired horizontally.

The resulting schedules use one transfer stage per round boundary
(#T = #R - 1) and are therefore not always minimal in the number of
transfer stages; the optimality claims of the paper are reproduced with the
SMT backend on small instances, while this backend scales to all Table I
codes within seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.problem import SchedulingProblem
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind


@dataclass
class _Home:
    """A qubit's static SLM home site."""

    x: int
    y: int
    #: Rank of the home row among all home rows (defines the beam offset).
    group: int


class StructuredScheduler:
    """Constructive zone-aware scheduler (see module docstring).

    The scheduler is stateless between calls: each :meth:`schedule`
    invocation reads circuit and architecture from its
    :class:`~repro.core.problem.SchedulingProblem` argument, so one instance
    serves any number of problems (it is not safe to share across threads,
    as per-call geometry is cached on the instance while scheduling).
    """

    def __init__(self) -> None:
        self._arch = None
        self._beam_row = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        problem: SchedulingProblem,
        metadata: dict | None = None,
    ) -> Schedule:
        """Build a schedule for *problem* on its architecture."""
        if not isinstance(problem, SchedulingProblem):
            raise TypeError(
                "StructuredScheduler.schedule() takes a SchedulingProblem; "
                "build one with SchedulingProblem.from_gates(architecture, "
                "num_qubits, cz_gates) or SchedulingProblem.from_circuit(...)"
            )
        self._arch = problem.architecture
        self._beam_row = self._choose_beam_row()
        num_qubits = problem.num_qubits
        gates = list(problem.gates)
        homes, homeless = self._assign_homes(num_qubits, gates)
        rounds = self._build_rounds(gates, homes, homeless)
        stages = self._build_stages(num_qubits, rounds, homes, homeless)
        return Schedule(
            architecture=self._arch,
            num_qubits=num_qubits,
            stages=stages,
            target_gates=list(gates),
            metadata={"backend": "structured", **problem.metadata, **(metadata or {})},
        )

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def _choose_beam_row(self) -> int:
        """The entangling-zone row used for Rydberg beams."""
        e_min, e_max = self._arch.entangling_rows
        return (e_min + e_max) // 2

    def _home_rows(self) -> list[int]:
        """Rows that may carry SLM homes, ordered by increasing y."""
        arch = self._arch
        if arch.has_storage:
            return arch.storage_rows()
        e_min, e_max = arch.entangling_rows
        rows = [y for y in range(e_min, e_max + 1) if y != self._beam_row]
        return rows if rows else [e_min]

    def _assign_homes(
        self, num_qubits: int, gates: Sequence[tuple[int, int]] = ()
    ) -> tuple[dict[int, _Home], int | None]:
        """Assign each qubit a home site; return (homes, homeless qubit).

        Home columns are assigned along a bandwidth-reducing ordering of the
        interaction graph (reverse Cuthill–McKee) so that gate partners tend
        to live in nearby columns, which lets the round builder pack more
        gates per Rydberg stage.
        """
        arch = self._arch
        rows = self._home_rows()
        capacity = len(rows) * (arch.x_max + 1)
        # Use as few home rows as possible and prefer the rows closest to the
        # beam row: fewer row groups mean fewer group-adjacency conflicts per
        # round, and nearby rows mean shorter shuttles (this is where the
        # double-sided layout gains over the bottom-only layout).
        needed_rows = -(-num_qubits // (arch.x_max + 1))
        if 0 < needed_rows < len(rows):
            by_proximity = sorted(rows, key=lambda row: (abs(row - self._beam_row), row))
            rows = sorted(by_proximity[:needed_rows])
        order = self._qubit_order(num_qubits, gates)
        homeless: int | None = None
        if num_qubits > capacity:
            if num_qubits > capacity + 1:
                raise ValueError(
                    f"architecture offers {capacity} home sites but the circuit has "
                    f"{num_qubits} qubits"
                )
            homeless = order.pop()
        homes: dict[int, _Home] = {}
        for index, qubit in enumerate(order):
            # Fill column by column so that consecutive qubits in the
            # ordering share a home column (they can then be paired
            # vertically within one AOD column).
            x, row_index = divmod(index, len(rows))
            homes[qubit] = _Home(x=x, y=rows[row_index], group=row_index)
        return homes, homeless

    def _qubit_order(
        self, num_qubits: int, gates: Sequence[tuple[int, int]]
    ) -> list[int]:
        """Bandwidth-reducing qubit ordering for home assignment."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(num_qubits))
        graph.add_edges_from(gates)
        try:
            order = list(nx.utils.reverse_cuthill_mckee_ordering(graph))
        except Exception:  # pragma: no cover - networkx API fallback
            order = list(range(num_qubits))
        if len(order) != num_qubits:
            order = list(range(num_qubits))
        return order

    # ------------------------------------------------------------------ #
    # Round construction
    # ------------------------------------------------------------------ #
    def _max_gates_per_round(self, homeless_exists: bool) -> int:
        """Hard cap on gates per Rydberg stage (one beam site per gate)."""
        return self._arch.x_max + 1

    def _available_columns(self, homeless_exists: bool) -> int:
        """AOD columns usable for picked-up qubits."""
        return self._arch.num_aod_columns - (1 if homeless_exists else 0)

    def _build_rounds(
        self,
        gates: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> list[list[tuple[int, int]]]:
        """Greedy grouping of gates into rounds satisfying the choreography rules."""
        def right_endpoint(gate: tuple[int, int]) -> float:
            a, b = gate
            return max(
                self._virtual_x(a, homes, homeless), self._virtual_x(b, homes, homeless)
            )

        # Classic interval-scheduling greedy: processing gates by the right
        # endpoint of their home-column interval maximises the number of
        # disjoint intervals packed into each Rydberg stage.
        remaining = sorted(gates, key=right_endpoint)
        rounds: list[list[tuple[int, int]]] = []
        limit = self._max_gates_per_round(homeless is not None)
        while remaining:
            chosen: list[tuple[int, int]] = []
            for gate in list(remaining):
                if len(chosen) >= limit:
                    break
                if self._round_accepts(chosen + [gate], homes, homeless):
                    chosen.append(gate)
            if not chosen:
                # A singleton round is always feasible (vertical or horizontal
                # pairing of a single pair of qubits).
                chosen = [remaining[0]]
            for gate in chosen:
                remaining.remove(gate)
            rounds.append(chosen)
        return rounds

    def _virtual_x(self, qubit: int, homes: dict[int, _Home], homeless: int | None) -> float:
        """Pick-up column of a qubit (the homeless one sits right of all homes)."""
        if homeless is not None and qubit == homeless:
            return self._arch.x_max + 0.5
        return float(homes[qubit].x)

    def _round_accepts(
        self,
        candidate: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> bool:
        """Check the choreography rules for a tentative round."""
        qubits = [q for gate in candidate for q in gate]
        if len(set(qubits)) != len(qubits):
            return False  # gates must be qubit-disjoint
        xs = {q: self._virtual_x(q, homes, homeless) for q in qubits}
        # The pick-up needs one AOD column per distinct home column in use.
        if len(set(xs.values())) > self._available_columns(homeless is not None):
            return False
        # Two qubits of *different* gates must not share a pick-up column.
        for a, b in candidate:
            for other_a, other_b in candidate:
                if (a, b) == (other_a, other_b):
                    continue
                if xs[a] in (xs[other_a], xs[other_b]) or xs[b] in (xs[other_a], xs[other_b]):
                    return False
        # Pairwise disjoint home-x intervals keep pick-up and beam order equal.
        intervals = sorted(
            (min(xs[a], xs[b]), max(xs[a], xs[b])) for a, b in candidate
        )
        for (_, high1), (low2, _) in zip(intervals, intervals[1:]):
            if low2 <= high1:
                return False
        # Partner home rows must be adjacent in the set of used rows so that
        # the vertical beam offsets stay within the blockade radius.
        used_groups = sorted({homes[q].group for q in qubits if q in homes})
        if len(used_groups) > 2 * self._arch.v_max + 1:
            return False
        rank = {group: i for i, group in enumerate(used_groups)}
        for a, b in candidate:
            if homeless is not None and homeless in (a, b):
                partner = b if a == homeless else a
                # The homeless qubit flies at the lowest beam offset and the
                # right-most column; its partner must therefore belong to the
                # lowest used home row and be the right-most regular pick-up.
                if rank.get(homes[partner].group, 0) != 0:
                    return False
                others = [q for q in qubits if q not in (a, b)]
                if any(xs[q] > xs[partner] for q in others):
                    return False
                continue
            group_a, group_b = homes[a].group, homes[b].group
            if xs[a] == xs[b]:
                # Vertical pairing: the partners share an AOD column; their
                # home rows must be adjacent among the used rows.
                if abs(rank[group_a] - rank[group_b]) != 1:
                    return False
            elif abs(rank[group_a] - rank[group_b]) > 1:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Stage construction
    # ------------------------------------------------------------------ #
    def _build_stages(
        self,
        num_qubits: int,
        rounds: list[list[tuple[int, int]]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> list[Stage]:
        park = self._park_placement() if homeless is not None else None
        home_placement = {
            q: QubitPlacement(x=home.x, y=home.y, in_aod=False) for q, home in homes.items()
        }
        def hover_placements(active: list[int]) -> dict[int, QubitPlacement]:
            """All qubits at rest: actives hover in AOD above their homes."""
            columns = self._column_indices(active, homes, homeless)
            row_indices = self._row_indices(active, homes, homeless)
            placements: dict[int, QubitPlacement] = {}
            for qubit in range(num_qubits):
                if homeless is not None and qubit == homeless:
                    placement = park
                    if qubit in active:
                        placement = park.moved_to(
                            column=columns[qubit], row=row_indices[qubit]
                        )
                    placements[qubit] = placement
                elif qubit in active:
                    home = homes[qubit]
                    placements[qubit] = QubitPlacement(
                        x=home.x,
                        y=home.y,
                        in_aod=True,
                        column=columns[qubit],
                        row=row_indices[qubit],
                    )
                else:
                    placements[qubit] = home_placement[qubit]
            return placements

        stages: list[Stage] = []
        for index, round_gates in enumerate(rounds):
            active = sorted({q for gate in round_gates for q in gate})
            layout = self._beam_layout(round_gates, homes, homeless)
            placements = {}
            for qubit in range(num_qubits):
                if qubit in layout:
                    placements[qubit] = layout[qubit]
                elif homeless is not None and qubit == homeless:
                    placements[qubit] = park
                else:
                    placements[qubit] = home_placement[qubit]
            stages.append(
                Stage(kind=StageKind.RYDBERG, placements=placements, gates=list(round_gates))
            )
            if index == len(rounds) - 1:
                break
            next_active = sorted({q for gate in rounds[index + 1] for q in gate})
            regular_active = [q for q in active if q != homeless]
            regular_next = [q for q in next_active if q != homeless]
            shared = sorted(set(regular_active) & set(regular_next))
            if not shared:
                # Single transfer stage: store this round's qubits (hovering
                # above their homes) and load the next round's qubits.
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements(active),
                        stored_qubits=regular_active,
                        loaded_qubits=regular_next,
                    )
                )
            else:
                # Qubits shared between consecutive rounds cannot be stored
                # and re-loaded within one stage, and keeping them airborne
                # can block the storage of their AOD line.  Use two transfer
                # stages: first store everybody, then load the next round.
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements(active),
                        stored_qubits=regular_active,
                        loaded_qubits=[],
                    )
                )
                stages.append(
                    Stage(
                        kind=StageKind.TRANSFER,
                        placements=hover_placements([]),
                        stored_qubits=[],
                        loaded_qubits=regular_next,
                    )
                )
        return stages

    def _park_placement(self) -> QubitPlacement:
        """Permanent AOD parking spot of the homeless qubit."""
        arch = self._arch
        rows = self._home_rows()
        return QubitPlacement(
            x=arch.x_max,
            y=rows[0],
            h=min(1, arch.h_max),
            v=-min(1, arch.v_max),
            in_aod=True,
            column=arch.c_max,
            row=0,
        )

    def _column_indices(
        self, active: list[int], homes: dict[int, _Home], homeless: int | None
    ) -> dict[int, int]:
        """AOD column index per active qubit: rank of its pick-up column."""
        indices: dict[int, int] = {}
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        distinct_x = sorted({homes[q].x for q in regular})
        for qubit in regular:
            indices[qubit] = distinct_x.index(homes[qubit].x)
        if homeless is not None and homeless in active:
            indices[homeless] = self._arch.c_max
        return indices

    def _row_indices(
        self, active: list[int], homes: dict[int, _Home], homeless: int | None
    ) -> dict[int, int]:
        """AOD row index per active qubit: rank of its home row."""
        indices: dict[int, int] = {}
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        groups = sorted({homes[q].group for q in regular})
        shift = 1 if homeless is not None else 0
        for qubit in regular:
            indices[qubit] = groups.index(homes[qubit].group) + shift
        if homeless is not None and homeless in active:
            indices[homeless] = 0
        return indices

    def _beam_layout(
        self,
        round_gates: list[tuple[int, int]],
        homes: dict[int, _Home],
        homeless: int | None,
    ) -> dict[int, QubitPlacement]:
        """Positions of the round's qubits during its Rydberg beam."""
        arch = self._arch
        active = sorted({q for gate in round_gates for q in gate})
        xs = {q: self._virtual_x(q, homes, homeless) for q in active}
        columns = self._column_indices(active, homes, homeless)
        row_indices = self._row_indices(active, homes, homeless)
        regular = [q for q in active if not (homeless is not None and q == homeless)]
        used_groups = sorted({homes[q].group for q in regular})
        rank = {group: i for i, group in enumerate(used_groups)}
        shift = 1 if homeless is not None else 0
        base = -min(arch.v_max, max(0, len(used_groups) - 1 + shift))
        ordered_gates = sorted(round_gates, key=lambda gate: min(xs[gate[0]], xs[gate[1]]))

        layout: dict[int, QubitPlacement] = {}
        for site_index, (a, b) in enumerate(ordered_gates):
            first, second = (a, b) if xs[a] <= xs[b] else (b, a)
            vertical_pair = xs[a] == xs[b]
            for position_index, qubit in enumerate((first, second)):
                if homeless is not None and qubit == homeless:
                    v_offset = base
                else:
                    v_offset = base + rank[homes[qubit].group] + shift
                h_offset = 0 if (vertical_pair or position_index == 0) else min(1, arch.h_max)
                layout[qubit] = QubitPlacement(
                    x=site_index,
                    y=self._beam_row,
                    h=h_offset,
                    v=v_offset,
                    in_aod=True,
                    column=columns[qubit],
                    row=row_indices[qubit],
                )
        return layout
