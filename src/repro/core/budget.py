"""Deadline/budget governance for anytime solving.

A :class:`Deadline` is the single source of truth for "how much wall-clock
is left" across a whole minimum-stage search.  It is carried by
:class:`~repro.core.strategies.base.SearchLimits`, consulted cooperatively
at every level — the strategy loop between probes, the SMT facade before
and inside each check, and the SAT backends through their native per-call
``time_limit`` — and composed with the per-probe limits so no single probe
can overrun the remaining whole-search budget.

Design points:

* **Monotonic and absolute.**  The expiry is an absolute
  ``time.monotonic()`` instant, so remaining time shrinks as work happens
  instead of resetting at every layer boundary (the pre-existing
  ``time_limit`` knob was handed identically to every probe, letting a
  search burn ``probes x time_limit`` wall-clock).  ``CLOCK_MONOTONIC`` is
  system-wide on Linux, so a pickled deadline keeps meaning the same
  instant inside portfolio worker processes.
* **Cooperative.**  Nothing is killed: every enforcement point checks
  :meth:`Deadline.expired` / slices its own budget from
  :meth:`Deadline.remaining` and winds down along the graceful-degradation
  contract (see ``SchedulerReport.termination``).
* **Composable.**  :meth:`Deadline.slice` merges a per-probe cap with the
  remaining whole-search time; :meth:`Deadline.compose_conflicts` scales a
  per-probe conflict budget by the remaining-time fraction so late probes
  do not out-spend the clock on conflicts either.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class DeadlineExceeded(Exception):
    """Raised by cooperative preemption points when the deadline has passed.

    Only loops without a richer degradation path raise this (e.g. the
    table1/exploration evaluation loops, which have no partial result to
    return); the strategy layer never lets it escape — it degrades to a
    report with ``termination="deadline"`` instead.
    """


class Deadline:
    """Remaining-time accounting against an absolute monotonic expiry.

    ``Deadline(None)`` (or :meth:`unbounded`) never expires and reports
    ``remaining() is None`` — callers treat that as "no cap".  The *clock*
    is injectable for deterministic tests and defaults to
    :func:`time.monotonic`; pickling drops a custom clock and restores the
    monotonic default (the only clock that stays meaningful across
    processes).
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        expires_at: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._expires_at = expires_at
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def after(
        cls,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline *seconds* from now (``None`` means unbounded)."""
        if seconds is None:
            return cls(None, clock)
        return cls(clock() + seconds, clock)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def bounded(self) -> bool:
        """Whether this deadline can ever expire."""
        return self._expires_at is not None

    @property
    def expires_at(self) -> Optional[float]:
        """The absolute monotonic expiry instant (``None`` when unbounded)."""
        return self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left before expiry, floored at 0 (``None`` when unbounded)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(f"deadline expired before {what} completed")

    # ------------------------------------------------------------------ #
    # Budget composition
    # ------------------------------------------------------------------ #
    def slice(self, per_probe: Optional[float] = None) -> Optional[float]:
        """The per-probe time budget: min(per-probe cap, remaining time).

        Returns ``None`` only when both the per-probe cap and the deadline
        are unbounded.  An expired deadline yields ``0.0`` — callers should
        check :meth:`expired` first and degrade rather than launch a
        zero-budget probe.
        """
        remaining = self.remaining()
        if remaining is None:
            return per_probe
        if per_probe is None:
            return remaining
        return min(per_probe, remaining)

    def compose_conflicts(
        self,
        max_conflicts: Optional[int],
        per_probe: Optional[float] = None,
    ) -> Optional[int]:
        """Scale a per-probe conflict budget by the remaining-time fraction.

        When the remaining whole-search time undercuts the per-probe time
        cap, the conflict budget shrinks proportionally (floored at 1 so a
        probe still makes progress); without a per-probe time cap — nothing
        to scale against — the conflict budget passes through unchanged.
        """
        if max_conflicts is None:
            return None
        remaining = self.remaining()
        if remaining is None or per_probe is None or per_probe <= 0:
            return max_conflicts
        if remaining >= per_probe:
            return max_conflicts
        return max(1, int(max_conflicts * remaining / per_probe))

    # ------------------------------------------------------------------ #
    # Pickling (portfolio workers receive the deadline inside SearchLimits)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {"expires_at": self._expires_at}

    def __setstate__(self, state: dict) -> None:
        self._expires_at = state["expires_at"]
        self._clock = time.monotonic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline.unbounded()"
        return f"Deadline(remaining={self.remaining():.3f}s)"
