"""Constraints of the SMT formulation (Sec. IV-B, boxes C1-C6).

Every function takes the variable container and the gate list and asserts
one constraint group into the container's solver.  The equations of the
paper are referenced by number; the two constraints the paper omits "for
brevity" (the vertical AOD-row ordering counterpart of Eq. 11/21 and the
loading counterpart of Eq. 20) are spelled out explicitly.

Each stage-indexed group accepts an optional *stages* (intra-stage
constraints) or *transitions* (constraints linking stage ``t`` to ``t+1``)
argument selecting which stage indices to assert.  The default (``None``)
asserts the full instance, matching the original cold-start behaviour;
:func:`assert_stage` uses the ranged form to extend an instance by one stage
in place for the incremental scheduler.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.variables import StatePrepVariables
from repro.smt import And, Iff, Implies, Not, Or

Gate = tuple[int, int]


def _stage_range(
    variables: StatePrepVariables, stages: Iterable[int] | None
) -> Iterable[int]:
    return range(variables.num_stages) if stages is None else stages


def _transition_range(
    variables: StatePrepVariables, transitions: Iterable[int] | None
) -> Iterable[int]:
    return range(variables.num_stages - 1) if transitions is None else transitions


def assert_all(
    variables: StatePrepVariables,
    gates: Sequence[Gate],
    shielding: bool = True,
) -> None:
    """Assert the complete constraint system C1-C6.

    *shielding* selects between Eq. 14 (idle qubits must leave the
    entangling zone — layouts with a storage zone) and the footnote-2
    variant used for the no-shielding layout (idle qubits merely sit at
    separate interaction sites).
    """
    positioning_qubits(variables)
    ordering_aod_lines(variables)
    executing_gates(variables, gates)
    shielding_idling_qubits(variables, gates, shielding)
    no_unintended_interactions(variables, gates)
    shuttling_in_execution_stages(variables)
    storing_in_transfer_stages(variables)
    loading_and_shuttling_in_transfer_stages(variables)


def assert_stage(
    variables: StatePrepVariables,
    gates: Sequence[Gate],
    stage: int,
    shielding: bool = True,
) -> None:
    """Assert every constraint that mentions the freshly added *stage*.

    Complements :meth:`StatePrepVariables.add_stage`: the intra-stage groups
    are asserted for *stage* alone and the transition groups for the edge
    ``stage-1 -> stage``.  Asserting stages ``0..S-1`` one by one therefore
    yields exactly the constraint set of a cold-start ``S``-stage instance
    (modulo the wider ``gate_stage`` domains, which the incremental scheduler
    narrows with assumption-guarded horizon constraints).
    """
    stages = (stage,)
    positioning_qubits(variables, stages=stages)
    ordering_aod_lines(variables, stages=stages)
    gate_preconditions(variables, gates, stages=stages)
    shielding_idling_qubits(variables, gates, shielding, stages=stages)
    no_unintended_interactions(variables, gates, stages=stages)
    if stage > 0:
        transitions = (stage - 1,)
        shuttling_in_execution_stages(variables, transitions=transitions)
        storing_in_transfer_stages(variables, transitions=transitions)
        loading_and_shuttling_in_transfer_stages(variables, transitions=transitions)


# --------------------------------------------------------------------------- #
# C1 — positioning qubits (Eqs. 9, 10)
# --------------------------------------------------------------------------- #
def positioning_qubits(
    variables: StatePrepVariables, stages: Iterable[int] | None = None
) -> None:
    """A trap holds at most one qubit; SLM qubits sit at the site centre."""
    solver = variables.solver
    for t in _stage_range(variables, stages):
        for q in range(variables.num_qubits):
            for p in range(q + 1, variables.num_qubits):
                same_offsets = And(
                    variables.h[q][t] == variables.h[p][t],
                    variables.v[q][t] == variables.v[p][t],
                )
                different_site = Or(
                    Not(variables.x[q][t] == variables.x[p][t]),
                    Not(variables.y[q][t] == variables.y[p][t]),
                )
                solver.add(Implies(same_offsets, different_site))  # Eq. 9
        for q in range(variables.num_qubits):
            solver.add(
                Implies(
                    Not(variables.a[q][t]),
                    And(variables.h[q][t] == 0, variables.v[q][t] == 0),
                )
            )  # Eq. 10


# --------------------------------------------------------------------------- #
# C2 — ordering AOD lines (Eq. 11 and its vertical counterpart)
# --------------------------------------------------------------------------- #
def ordering_aod_lines(
    variables: StatePrepVariables, stages: Iterable[int] | None = None
) -> None:
    """AOD column/row indices reflect the geometric order of AOD qubits."""
    solver = variables.solver
    for t in _stage_range(variables, stages):
        for q in range(variables.num_qubits):
            for p in range(variables.num_qubits):
                if p == q:
                    continue
                both_aod = And(variables.a[q][t], variables.a[p][t])
                horizontally_before = Or(
                    variables.x[q][t] < variables.x[p][t],
                    And(
                        variables.x[q][t] == variables.x[p][t],
                        variables.h[q][t] < variables.h[p][t],
                    ),
                )
                solver.add(
                    Implies(
                        both_aod,
                        Iff(variables.c[q][t] < variables.c[p][t], horizontally_before),
                    )
                )  # Eq. 11
                vertically_before = Or(
                    variables.y[q][t] < variables.y[p][t],
                    And(
                        variables.y[q][t] == variables.y[p][t],
                        variables.v[q][t] < variables.v[p][t],
                    ),
                )
                solver.add(
                    Implies(
                        both_aod,
                        Iff(variables.r[q][t] < variables.r[p][t], vertically_before),
                    )
                )  # vertical counterpart (omitted in the paper for brevity)


# --------------------------------------------------------------------------- #
# C3 — executing gates (Eqs. 12, 13) and shielding (Eq. 14 / footnote 2)
# --------------------------------------------------------------------------- #
def executing_gates(variables: StatePrepVariables, gates: Sequence[Gate]) -> None:
    """Executed gates happen in execution stages with adjacent operands."""
    gate_preconditions(variables, gates)
    conflicting_gates_ordered(variables, gates)


def gate_preconditions(
    variables: StatePrepVariables,
    gates: Sequence[Gate],
    stages: Iterable[int] | None = None,
) -> None:
    """Eq. 12: a gate's stage is an execution stage with adjacent operands."""
    solver = variables.solver
    arch = variables.architecture
    radius = arch.interaction_radius
    e_min, e_max = arch.entangling_rows
    for i, (q, p) in enumerate(gates):
        for t in _stage_range(variables, stages):
            preconditions = And(
                variables.execution[t],
                variables.x[q][t] == variables.x[p][t],
                variables.y[q][t] == variables.y[p][t],
                abs(variables.h[p][t] - variables.h[q][t]) < radius,
                abs(variables.v[p][t] - variables.v[q][t]) < radius,
                variables.y[q][t] >= e_min,
                variables.y[q][t] <= e_max,
                variables.y[p][t] >= e_min,
                variables.y[p][t] <= e_max,
            )
            solver.add(Implies(variables.gate_stage[i] == t, preconditions))  # Eq. 12


def conflicting_gates_ordered(
    variables: StatePrepVariables, gates: Sequence[Gate]
) -> None:
    """Eq. 13: gates sharing a qubit run in different stages (stage-free)."""
    solver = variables.solver
    for i in range(len(gates)):
        for j in range(i + 1, len(gates)):
            if set(gates[i]) & set(gates[j]):
                solver.add(Not(variables.gate_stage[i] == variables.gate_stage[j]))  # Eq. 13


def shielding_idling_qubits(
    variables: StatePrepVariables,
    gates: Sequence[Gate],
    shielding: bool,
    stages: Iterable[int] | None = None,
) -> None:
    """Eq. 14 (shielded layouts) or the footnote-2 variant (no storage zone)."""
    solver = variables.solver
    arch = variables.architecture
    e_min, e_max = arch.entangling_rows
    for q in range(variables.num_qubits):
        gate_indices = [i for i, gate in enumerate(gates) if q in gate]
        for t in _stage_range(variables, stages):
            busy_here = Or(*[variables.gate_stage[i] == t for i in gate_indices])
            inside_entangling_zone = And(
                variables.y[q][t] >= e_min, variables.y[q][t] <= e_max
            )
            if shielding:
                solver.add(
                    Implies(
                        variables.execution[t],
                        Or(busy_here, Not(inside_entangling_zone)),
                    )
                )  # Eq. 14
            else:
                # Footnote 2: idle qubits cannot leave the entangling zone but
                # must sit at their own interaction site (separation is then
                # enforced by the no-unintended-interaction constraint below).
                solver.add(Implies(variables.execution[t], inside_entangling_zone))


def no_unintended_interactions(
    variables: StatePrepVariables,
    gates: Sequence[Gate],
    stages: Iterable[int] | None = None,
) -> None:
    """Two qubits within the blockade radius during a beam must be a gate.

    The paper keeps this implicit (idle qubits are either shielded or
    "sufficiently separated"); stating it explicitly makes the model safe on
    both layout variants.
    """
    solver = variables.solver
    arch = variables.architecture
    radius = arch.interaction_radius
    e_min, e_max = arch.entangling_rows
    # Duplicate gates matter: the pair is "intended" whenever ANY occurrence
    # executes at the stage, so the lookup keeps every index (a single-index
    # map would make any circuit with a repeated CZ gate unsatisfiable).
    gate_lookup: dict[frozenset, list[int]] = {}
    for i, gate in enumerate(gates):
        gate_lookup.setdefault(frozenset(gate), []).append(i)
    for t in _stage_range(variables, stages):
        for q in range(variables.num_qubits):
            for p in range(q + 1, variables.num_qubits):
                near = And(
                    variables.x[q][t] == variables.x[p][t],
                    variables.y[q][t] == variables.y[p][t],
                    abs(variables.h[p][t] - variables.h[q][t]) < radius,
                    abs(variables.v[p][t] - variables.v[q][t]) < radius,
                    variables.y[q][t] >= e_min,
                    variables.y[q][t] <= e_max,
                )
                gate_indices = gate_lookup.get(frozenset((q, p)), [])
                allowed = Or(
                    *[variables.gate_stage[i] == t for i in gate_indices]
                )
                solver.add(Implies(And(variables.execution[t], near), allowed))


# --------------------------------------------------------------------------- #
# C4 — shuttling in execution stages (Eqs. 15-17)
# --------------------------------------------------------------------------- #
def shuttling_in_execution_stages(
    variables: StatePrepVariables, transitions: Iterable[int] | None = None
) -> None:
    """During execution stages qubits keep their trap type, SLM qubits their
    site, and AOD qubits their column/row."""
    solver = variables.solver
    for t in _transition_range(variables, transitions):
        for q in range(variables.num_qubits):
            solver.add(
                Implies(
                    variables.execution[t],
                    Iff(variables.a[q][t], variables.a[q][t + 1]),
                )
            )  # Eq. 15
            solver.add(
                Implies(
                    variables.execution[t],
                    Or(
                        variables.a[q][t],
                        And(
                            variables.x[q][t] == variables.x[q][t + 1],
                            variables.y[q][t] == variables.y[q][t + 1],
                        ),
                    ),
                )
            )  # Eq. 16
            solver.add(
                Implies(
                    variables.execution[t],
                    Or(
                        Not(variables.a[q][t]),
                        And(
                            variables.c[q][t] == variables.c[q][t + 1],
                            variables.r[q][t] == variables.r[q][t + 1],
                        ),
                    ),
                )
            )  # Eq. 17


# --------------------------------------------------------------------------- #
# C5 — storing in transfer stages (Eqs. 18-20)
# --------------------------------------------------------------------------- #
def storing_in_transfer_stages(
    variables: StatePrepVariables, transitions: Iterable[int] | None = None
) -> None:
    """Stores happen at site centres, SLM-bound qubits stay put, and stores
    act on whole AOD lines."""
    solver = variables.solver
    for t in _transition_range(variables, transitions):
        transfer = Not(variables.execution[t])
        for q in range(variables.num_qubits):
            solver.add(
                Implies(
                    transfer,
                    Or(
                        variables.a[q][t + 1],
                        And(variables.h[q][t] == 0, variables.v[q][t] == 0),
                    ),
                )
            )  # Eq. 18
            solver.add(
                Implies(
                    transfer,
                    Or(
                        variables.a[q][t + 1],
                        And(
                            variables.x[q][t] == variables.x[q][t + 1],
                            variables.y[q][t] == variables.y[q][t + 1],
                        ),
                    ),
                )
            )  # Eq. 19
            # Eq. 20: a qubit in an AOD trap is stored exactly when its column
            # or its row performs a store operation.
            store_flag = Or(
                _select(variables.column_store, variables.c[q][t], t),
                _select(variables.row_store, variables.r[q][t], t),
            )
            solver.add(
                Implies(
                    transfer,
                    Or(
                        Not(variables.a[q][t]),
                        Iff(Not(variables.a[q][t + 1]), store_flag),
                    ),
                )
            )


# --------------------------------------------------------------------------- #
# C6 — loading and shuttling in transfer stages (Eq. 21 + counterparts)
# --------------------------------------------------------------------------- #
def loading_and_shuttling_in_transfer_stages(
    variables: StatePrepVariables, transitions: Iterable[int] | None = None
) -> None:
    """Loads are flagged on their AOD lines and the relative order of AOD
    qubits after a transfer stage matches their geometric order before it."""
    solver = variables.solver
    for t in _transition_range(variables, transitions):
        transfer = Not(variables.execution[t])
        for q in range(variables.num_qubits):
            # Loading counterpart of Eq. 20 (omitted in the paper for
            # brevity): a qubit that enters an AOD trap must sit on a column
            # or row that performs a load operation.
            load_flag = Or(
                _select(variables.column_load, variables.c[q][t + 1], t),
                _select(variables.row_load, variables.r[q][t + 1], t),
            )
            solver.add(
                Implies(
                    And(transfer, Not(variables.a[q][t]), variables.a[q][t + 1]),
                    load_flag,
                )
            )
        for q in range(variables.num_qubits):
            for p in range(variables.num_qubits):
                if p == q:
                    continue
                both_aod_next = And(
                    transfer, variables.a[q][t + 1], variables.a[p][t + 1]
                )
                horizontally_before_now = Or(
                    variables.x[q][t] < variables.x[p][t],
                    And(
                        variables.x[q][t] == variables.x[p][t],
                        variables.h[q][t] < variables.h[p][t],
                    ),
                )
                solver.add(
                    Implies(
                        both_aod_next,
                        Iff(
                            variables.c[q][t + 1] < variables.c[p][t + 1],
                            horizontally_before_now,
                        ),
                    )
                )  # Eq. 21
                vertically_before_now = Or(
                    variables.y[q][t] < variables.y[p][t],
                    And(
                        variables.y[q][t] == variables.y[p][t],
                        variables.v[q][t] < variables.v[p][t],
                    ),
                )
                solver.add(
                    Implies(
                        both_aod_next,
                        Iff(
                            variables.r[q][t + 1] < variables.r[p][t + 1],
                            vertically_before_now,
                        ),
                    )
                )  # vertical counterpart (omitted in the paper for brevity)


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _select(flags, index_expr, t):
    """``flags[index_expr][t]`` for a symbolic index (one-hot expansion)."""
    choices = [
        And(index_expr == k, flags[k][t]) for k in range(len(flags))
    ]
    return Or(*choices)
