"""The optimal SMT-based scheduler (the paper's proposed approach).

To satisfy the objective of Sec. IV-C — minimise the overall number of
stages — the scheduler decides fixed-``S`` instances with the SMT layer and
searches over ``S`` with a pluggable *strategy*
(:mod:`repro.core.strategies`):

* ``linear`` (default) — the paper's Sec. V-A procedure: increment ``S``
  from the analytic lower bound until the first satisfiable horizon.  With
  ``incremental=True`` one growable
  :class:`~repro.core.encoding.IncrementalInstance` persists across
  horizons (assumption-guarded activation literals, learned clauses
  survive); ``incremental=False`` selects the seed's cold-start reference
  path (fresh encoding and solver per horizon).
* ``bisection`` — binary search between the
  :class:`~repro.core.problem.SchedulingProblem` IR's analytic lower bound
  and the structured scheduler's certified upper bound; solves strictly
  fewer horizons than ``linear`` whenever the optimum sits more than a
  couple of steps above the lower bound.
* ``warmstart`` — bisection plus CDCL phase seeding from the structured
  schedule's gate-stage assignment.
* ``portfolio`` — races ``bisection``/``warmstart``/``linear`` and
  phase-seed variants across worker processes; the first certified optimum
  wins, losers are terminated, and the winning configuration is recorded on
  ``report.winner``.  Narrow analytic intervals are delegated inline to
  bisection instead of paying process fan-out.

``phase_seed`` seeds deterministic pseudo-random CDCL phase hints for the
strategies that do not install their own (a pure heuristic: answers never
change); the portfolio uses it to diversify its raced configurations.

All strategies return a :class:`SchedulerReport` recording the analytic
bounds *with their certificate provenance* (``lower_bound_source`` names
the winning certificate of
:meth:`~repro.core.problem.SchedulingProblem.bound_breakdown`;
``upper_bound_source`` the structured choreography behind the witness),
every horizon probed (in probe order), and the strategy name, and all
certify the same minimum stage count; per-instance resource limits
(conflicts / wall-clock) turn the solver into an anytime procedure that
reports when optimality could not be certified, mirroring the timeout
handling of the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.budget import Deadline
from repro.core.problem import SchedulingProblem
from repro.core.report import SchedulerReport, SchedulerResult
from repro.core.strategies import SearchLimits, get_strategy
from repro.core.validator import validate_schedule
from repro.sat.backend import backend_info

__all__ = ["SMTScheduler", "SchedulerReport", "SchedulerResult"]


class SMTScheduler:
    """Minimal-stage state-preparation scheduling via SMT solving.

    The scheduler holds solver configuration only; the workload — circuit,
    architecture, shielding policy — arrives as a
    :class:`~repro.core.problem.SchedulingProblem` per :meth:`schedule`
    call, so one scheduler instance serves any number of problems.
    """

    def __init__(
        self,
        max_stages: int = 32,
        max_conflicts_per_instance: Optional[int] = None,
        time_limit_per_instance: Optional[float] = None,
        incremental: bool = True,
        strategy: str = "linear",
        phase_seed: Optional[int] = None,
        sat_backend: Optional[str] = None,
        sat_chrono: Optional[bool] = None,
        sat_inprocessing: Optional[bool] = None,
        deadline: Optional[float] = None,
        backend_retries: Optional[int] = None,
    ) -> None:
        """*deadline* is the whole-search wall-clock budget in seconds:
        each :meth:`schedule` call starts a fresh
        :class:`~repro.core.budget.Deadline` and every layer below slices
        its per-probe budgets from the *remaining* time (unlike
        *time_limit_per_instance*, which caps each probe independently).
        On expiry the strategies degrade gracefully instead of raising —
        see ``SchedulerReport.termination``.  *backend_retries* bounds the
        per-check retries of transient SAT-backend failures (``None``
        keeps the solver default of
        :data:`repro.smt.solver.DEFAULT_BACKEND_RETRIES`).
        """
        # Resolve eagerly so unknown names and incompatible configurations
        # fail at construction time, not mid-batch.
        if get_strategy(strategy).requires_incremental and not incremental:
            raise ValueError(
                f"the {strategy!r} strategy requires an incremental scheduler"
            )
        info = backend_info(sat_backend)
        if not info.is_available():
            raise ValueError(
                f"SAT backend {info.name!r} is unavailable: "
                f"{info.description or 'runtime requirements not met'}"
            )
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline}")
        self._strategy = strategy
        self._backend_name = info.name
        self._deadline_seconds = deadline
        self._limits = SearchLimits(
            max_stages=max_stages,
            max_conflicts=max_conflicts_per_instance,
            time_limit=time_limit_per_instance,
            incremental=incremental,
            phase_seed=phase_seed,
            sat_backend=sat_backend,
            sat_chrono=sat_chrono,
            sat_inprocessing=sat_inprocessing,
            backend_retries=backend_retries,
        )

    @property
    def strategy(self) -> str:
        """Name of the configured search strategy."""
        return self._strategy

    @property
    def sat_backend(self) -> str:
        """Registry name of the SAT backend deciding every probe."""
        return self._backend_name

    @property
    def deadline_seconds(self) -> Optional[float]:
        """The configured whole-search budget (``None`` when unbounded)."""
        return self._deadline_seconds

    def schedule(
        self,
        problem: SchedulingProblem,
        metadata: dict | None = None,
        validate: bool = True,
        deadline: Optional[float | Deadline] = None,
    ) -> SchedulerReport:
        """Find a schedule of *problem* with the minimum number of stages.

        Returns a :class:`SchedulerReport`; ``report.optimal`` is False when
        a per-instance resource limit was hit before satisfiability could be
        decided for some stage count smaller than the one finally used (the
        schedule, if any, is then feasible but possibly not minimal);
        ``report.termination`` records how the search ended.

        *deadline* overrides the constructor's whole-search budget for this
        call only: seconds from now, or an already-ticking
        :class:`~repro.core.budget.Deadline` (how a service layer imposes
        one request-level budget across several solves).
        """
        if not isinstance(problem, SchedulingProblem):
            raise TypeError(
                "SMTScheduler.schedule() takes a SchedulingProblem; build one "
                "with SchedulingProblem.from_gates(architecture, num_qubits, "
                "cz_gates) or SchedulingProblem.from_circuit(...)"
            )
        limits = self._limits
        if deadline is None:
            deadline = self._deadline_seconds
        if deadline is not None:
            ticking = (
                deadline
                if isinstance(deadline, Deadline)
                else Deadline.after(deadline)
            )
            limits = replace(limits, deadline=ticking)
        report = get_strategy(self._strategy).run(problem, limits, metadata)
        report.sat_backend = self._backend_name
        if validate and report.schedule is not None:
            validate_schedule(report.schedule, require_shielding=problem.shielding)
        return report
