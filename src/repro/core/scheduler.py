"""The optimal SMT-based scheduler (the paper's proposed approach).

To satisfy the objective of Sec. IV-C — minimise the overall number of
stages — the scheduler gradually increases the stage count ``S`` and decides
each fixed-``S`` instance with the SMT layer, exactly as described in
Sec. V-A ("we gradually increment the number of stages S until we find a
satisfiable instance").  The first satisfiable instance therefore yields a
schedule with the minimum number of stages; per-instance resource limits
(conflicts / wall-clock) turn the solver into an anytime procedure that
reports when optimality could not be certified, mirroring the timeout
handling of the paper's evaluation.

Incremental vs. cold-start search
---------------------------------

Two search strategies are available, selected by the ``incremental``
constructor flag:

* ``incremental=True`` (default) — one growable
  :class:`~repro.core.encoding.IncrementalInstance` is built at the lower
  bound and extended in place from ``S`` to ``S+1`` stages.  Stage horizons
  are imposed through activation literals passed to the SAT core as
  *assumptions*, so nothing is ever retracted: the bit-blasted clauses of
  stages ``0..S-1``, all learned clauses, variable activities, and saved
  phases survive each UNSAT horizon and are reused by the next one.  The
  encoding cost per additional stage is the delta only, which makes the
  minimum-``S`` search substantially cheaper whenever more than one horizon
  has to be tried.  The trade-off: the ``gate_stage`` domains must be sized
  for ``max_stages`` up front, so each gate-stage comparison bit-blasts a
  slightly wider bit-vector than a cold-start instance of small ``S`` would
  use, and solver state is kept alive across the whole search (higher peak
  memory).
* ``incremental=False`` — the original cold-start behaviour: every horizon
  re-encodes a fresh :class:`~repro.core.encoding.EncodedInstance` from
  scratch and solves it with a brand-new SAT solver.  Slower on multi-horizon
  searches but with exact (tighter) variable domains per instance and no
  state carried between attempts; retained as a fallback and as the
  reference the incremental path is validated against.

Both paths explore the same horizons in the same order and produce
schedules with identical stage counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.arch.architecture import ZonedArchitecture
from repro.circuit.layers import minimum_layer_count
from repro.core.encoding import encode_incremental_instance, encode_instance
from repro.core.schedule import Schedule
from repro.core.validator import validate_schedule
from repro.smt import CheckResult

Gate = tuple[int, int]

#: Extra stage headroom reserved by a fresh incremental instance beyond the
#: first horizon it is asked to decide.  A small value keeps the up-front
#: ``gate_stage`` bit-vectors narrow (their domain covers the full capacity);
#: searches that outgrow the capacity rebuild the instance with double the
#: headroom, which costs one cold re-encode and is rare in practice.
_CAPACITY_HEADROOM = 7


@dataclass
class SchedulerResult:
    """Outcome of an :class:`SMTScheduler` run."""

    schedule: Optional[Schedule]
    optimal: bool
    stages_tried: list[int] = field(default_factory=list)
    solver_seconds: float = 0.0
    statistics: dict[str, float] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """True when a schedule was found (optimal or not)."""
        return self.schedule is not None


class SMTScheduler:
    """Minimal-stage state-preparation scheduling via SMT solving."""

    def __init__(
        self,
        architecture: ZonedArchitecture,
        shielding: bool | None = None,
        max_stages: int = 32,
        max_conflicts_per_instance: Optional[int] = None,
        time_limit_per_instance: Optional[float] = None,
        incremental: bool = True,
    ) -> None:
        self._arch = architecture
        self._shielding = shielding
        self._max_stages = max_stages
        self._max_conflicts = max_conflicts_per_instance
        self._time_limit = time_limit_per_instance
        self._incremental = incremental

    # ------------------------------------------------------------------ #
    def minimum_stage_bound(self, gates: Sequence[Gate]) -> int:
        """Lower bound on S: the chromatic-index bound on Rydberg stages."""
        return max(1, minimum_layer_count(list(gates)))

    def schedule(
        self,
        num_qubits: int,
        cz_gates: Sequence[Gate],
        metadata: dict | None = None,
        validate: bool = True,
    ) -> SchedulerResult:
        """Find a schedule with the minimum number of stages.

        Returns a :class:`SchedulerResult`; ``result.optimal`` is False when
        a per-instance resource limit was hit before satisfiability could be
        decided for some stage count smaller than the one finally used (the
        schedule, if any, is then feasible but possibly not minimal).
        """
        gates = [(min(a, b), max(a, b)) for a, b in cz_gates]
        if self._incremental:
            return self._schedule_incremental(num_qubits, gates, metadata, validate)
        return self._schedule_coldstart(num_qubits, gates, metadata, validate)

    # ------------------------------------------------------------------ #
    def _schedule_incremental(
        self,
        num_qubits: int,
        gates: list[Gate],
        metadata: dict | None,
        validate: bool,
    ) -> SchedulerResult:
        start = time.monotonic()
        stages_tried: list[int] = []
        optimal = True
        statistics: dict[str, float] = {}
        lower_bound = self.minimum_stage_bound(gates)
        if lower_bound > self._max_stages:
            return SchedulerResult(
                schedule=None,
                optimal=False,
                stages_tried=stages_tried,
                solver_seconds=time.monotonic() - start,
                statistics=statistics,
            )
        headroom = _CAPACITY_HEADROOM
        instance = encode_incremental_instance(
            self._arch,
            num_qubits,
            gates,
            num_stages=lower_bound,
            max_stages=min(self._max_stages, lower_bound + headroom),
            shielding=self._shielding,
        )
        for num_stages in range(lower_bound, self._max_stages + 1):
            stages_tried.append(num_stages)
            if num_stages > instance.max_stages:
                # Capacity exhausted: rebuild with more headroom (one cold
                # re-encode; learned clauses of the old instance are dropped).
                headroom *= 2
                instance = encode_incremental_instance(
                    self._arch,
                    num_qubits,
                    gates,
                    num_stages=num_stages,
                    max_stages=min(self._max_stages, num_stages + headroom),
                    shielding=self._shielding,
                )
            instance.extend_to(num_stages)
            result = instance.check(
                max_conflicts=self._max_conflicts, time_limit=self._time_limit
            )
            statistics = instance.statistics()
            if result is CheckResult.UNKNOWN:
                optimal = False
                continue
            if result is CheckResult.UNSAT:
                continue
            schedule = instance.extract_schedule(
                metadata={"optimal": optimal, **(metadata or {})}
            )
            if validate:
                validate_schedule(schedule, require_shielding=self._effective_shielding())
            return SchedulerResult(
                schedule=schedule,
                optimal=optimal,
                stages_tried=stages_tried,
                solver_seconds=time.monotonic() - start,
                statistics=statistics,
            )
        return SchedulerResult(
            schedule=None,
            optimal=False,
            stages_tried=stages_tried,
            solver_seconds=time.monotonic() - start,
            statistics=statistics,
        )

    # ------------------------------------------------------------------ #
    def _schedule_coldstart(
        self,
        num_qubits: int,
        gates: list[Gate],
        metadata: dict | None,
        validate: bool,
    ) -> SchedulerResult:
        start = time.monotonic()
        stages_tried: list[int] = []
        optimal = True
        statistics: dict[str, float] = {}
        for num_stages in range(self.minimum_stage_bound(gates), self._max_stages + 1):
            stages_tried.append(num_stages)
            instance = encode_instance(
                self._arch, num_qubits, gates, num_stages, shielding=self._shielding
            )
            result = instance.check(
                max_conflicts=self._max_conflicts, time_limit=self._time_limit
            )
            statistics = instance.statistics()
            if result is CheckResult.UNKNOWN:
                # Could not decide this stage count: any later answer is no
                # longer guaranteed to be minimal.
                optimal = False
                continue
            if result is CheckResult.UNSAT:
                continue
            schedule = instance.extract_schedule(
                metadata={"optimal": optimal, **(metadata or {})}
            )
            if validate:
                validate_schedule(schedule, require_shielding=self._effective_shielding())
            return SchedulerResult(
                schedule=schedule,
                optimal=optimal,
                stages_tried=stages_tried,
                solver_seconds=time.monotonic() - start,
                statistics=statistics,
            )
        return SchedulerResult(
            schedule=None,
            optimal=False,
            stages_tried=stages_tried,
            solver_seconds=time.monotonic() - start,
            statistics=statistics,
        )

    def _effective_shielding(self) -> bool:
        if self._shielding is None:
            return self._arch.has_storage
        return self._shielding
