"""The optimal SMT-based scheduler (the paper's proposed approach).

To satisfy the objective of Sec. IV-C — minimise the overall number of
stages — the scheduler gradually increases the stage count ``S`` and decides
each fixed-``S`` instance with the SMT layer, exactly as described in
Sec. V-A ("we gradually increment the number of stages S until we find a
satisfiable instance").  The first satisfiable instance therefore yields a
schedule with the minimum number of stages; per-instance resource limits
(conflicts / wall-clock) turn the solver into an anytime procedure that
reports when optimality could not be certified, mirroring the timeout
handling of the paper's evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.arch.architecture import ZonedArchitecture
from repro.circuit.layers import minimum_layer_count
from repro.core.encoding import encode_instance
from repro.core.schedule import Schedule
from repro.core.validator import validate_schedule
from repro.smt import CheckResult

Gate = tuple[int, int]


@dataclass
class SchedulerResult:
    """Outcome of an :class:`SMTScheduler` run."""

    schedule: Optional[Schedule]
    optimal: bool
    stages_tried: list[int] = field(default_factory=list)
    solver_seconds: float = 0.0
    statistics: dict[str, float] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """True when a schedule was found (optimal or not)."""
        return self.schedule is not None


class SMTScheduler:
    """Minimal-stage state-preparation scheduling via SMT solving."""

    def __init__(
        self,
        architecture: ZonedArchitecture,
        shielding: bool | None = None,
        max_stages: int = 32,
        max_conflicts_per_instance: Optional[int] = None,
        time_limit_per_instance: Optional[float] = None,
    ) -> None:
        self._arch = architecture
        self._shielding = shielding
        self._max_stages = max_stages
        self._max_conflicts = max_conflicts_per_instance
        self._time_limit = time_limit_per_instance

    # ------------------------------------------------------------------ #
    def minimum_stage_bound(self, gates: Sequence[Gate]) -> int:
        """Lower bound on S: the chromatic-index bound on Rydberg stages."""
        return max(1, minimum_layer_count(list(gates)))

    def schedule(
        self,
        num_qubits: int,
        cz_gates: Sequence[Gate],
        metadata: dict | None = None,
        validate: bool = True,
    ) -> SchedulerResult:
        """Find a schedule with the minimum number of stages.

        Returns a :class:`SchedulerResult`; ``result.optimal`` is False when
        a per-instance resource limit was hit before satisfiability could be
        decided for some stage count smaller than the one finally used (the
        schedule, if any, is then feasible but possibly not minimal).
        """
        gates = [(min(a, b), max(a, b)) for a, b in cz_gates]
        start = time.monotonic()
        stages_tried: list[int] = []
        optimal = True
        statistics: dict[str, float] = {}
        for num_stages in range(self.minimum_stage_bound(gates), self._max_stages + 1):
            stages_tried.append(num_stages)
            instance = encode_instance(
                self._arch, num_qubits, gates, num_stages, shielding=self._shielding
            )
            result = instance.check(
                max_conflicts=self._max_conflicts, time_limit=self._time_limit
            )
            statistics = instance.statistics()
            if result is CheckResult.UNKNOWN:
                # Could not decide this stage count: any later answer is no
                # longer guaranteed to be minimal.
                optimal = False
                continue
            if result is CheckResult.UNSAT:
                continue
            schedule = instance.extract_schedule(
                metadata={"optimal": optimal, **(metadata or {})}
            )
            if validate:
                validate_schedule(schedule, require_shielding=self._effective_shielding())
            return SchedulerResult(
                schedule=schedule,
                optimal=optimal,
                stages_tried=stages_tried,
                solver_seconds=time.monotonic() - start,
                statistics=statistics,
            )
        return SchedulerResult(
            schedule=None,
            optimal=False,
            stages_tried=stages_tried,
            solver_seconds=time.monotonic() - start,
            statistics=statistics,
        )

    def _effective_shielding(self) -> bool:
        if self._shielding is None:
            return self._arch.has_storage
        return self._shielding
