"""Symbolic variables of the SMT formulation (Sec. IV-A, boxes V1-V3).

For every qubit ``q`` and stage ``t`` the formulation uses

* ``x, y`` — interaction-site coordinates,
* ``h, v`` — offsets within the interaction site,
* ``a``    — whether the qubit sits in an AOD trap,
* ``c, r`` — AOD column and row indices,

for every gate ``i`` the stage ``g_i`` at which it is executed, for every
stage the execution flag ``e_t``, and for every AOD column/row and stage the
load/store flags (V3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.architecture import ZonedArchitecture
from repro.smt import Solver
from repro.smt.terms import BoolVar, IntVar


@dataclass
class StatePrepVariables:
    """All symbolic variables of one scheduling instance."""

    architecture: ZonedArchitecture
    num_qubits: int
    num_gates: int
    num_stages: int
    solver: Solver
    #: Upper bound on the stage count the ``gate_stage`` domains admit.  The
    #: cold-start encoding keeps this equal to ``num_stages``; the incremental
    #: encoding reserves headroom so stages can be appended without
    #: re-allocating the gate variables (whose domain is fixed at creation).
    gate_stage_capacity: int = 0

    x: list[list[IntVar]] = field(default_factory=list)
    y: list[list[IntVar]] = field(default_factory=list)
    h: list[list[IntVar]] = field(default_factory=list)
    v: list[list[IntVar]] = field(default_factory=list)
    a: list[list[BoolVar]] = field(default_factory=list)
    c: list[list[IntVar]] = field(default_factory=list)
    r: list[list[IntVar]] = field(default_factory=list)
    gate_stage: list[IntVar] = field(default_factory=list)
    execution: list[BoolVar] = field(default_factory=list)
    column_load: list[list[BoolVar]] = field(default_factory=list)
    column_store: list[list[BoolVar]] = field(default_factory=list)
    row_load: list[list[BoolVar]] = field(default_factory=list)
    row_store: list[list[BoolVar]] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        solver: Solver,
        architecture: ZonedArchitecture,
        num_qubits: int,
        num_gates: int,
        num_stages: int,
        gate_stage_capacity: int | None = None,
    ) -> "StatePrepVariables":
        """Allocate all variables with the domains of box V1-V3.

        *gate_stage_capacity* widens the ``g_i`` domains to ``[0, capacity-1]``
        so the instance can later grow to ``capacity`` stages via
        :meth:`add_stage`.  The default (``None``) keeps the exact
        ``num_stages`` domain of the cold-start encoding.
        """
        if num_stages <= 0:
            raise ValueError("a schedule needs at least one stage")
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        if gate_stage_capacity is None:
            gate_stage_capacity = num_stages
        if gate_stage_capacity < num_stages:
            raise ValueError(
                f"gate_stage_capacity {gate_stage_capacity} is smaller than "
                f"num_stages {num_stages}"
            )
        arch = architecture
        variables = cls(
            architecture=arch,
            num_qubits=num_qubits,
            num_gates=num_gates,
            num_stages=0,
            solver=solver,
            gate_stage_capacity=gate_stage_capacity,
        )
        for q in range(num_qubits):
            variables.x.append([])
            variables.y.append([])
            variables.h.append([])
            variables.v.append([])
            variables.a.append([])
            variables.c.append([])
            variables.r.append([])
        variables.gate_stage = [
            solver.int_var(f"g_{i}", 0, gate_stage_capacity - 1) for i in range(num_gates)
        ]
        variables.column_load = [[] for _ in range(arch.c_max + 1)]
        variables.column_store = [[] for _ in range(arch.c_max + 1)]
        variables.row_load = [[] for _ in range(arch.r_max + 1)]
        variables.row_store = [[] for _ in range(arch.r_max + 1)]
        for _ in range(num_stages):
            variables.add_stage()
        return variables

    def add_stage(self) -> int:
        """Append the variables of one more stage and return its index.

        Only the variables are created; the caller is responsible for
        asserting the constraints that mention the new stage (see
        :func:`repro.core.constraints.assert_stage`).
        """
        t = self.num_stages
        if t >= self.gate_stage_capacity:
            raise ValueError(
                f"cannot add stage {t}: gate_stage_capacity is {self.gate_stage_capacity}"
            )
        solver = self.solver
        arch = self.architecture
        for q in range(self.num_qubits):
            self.x[q].append(solver.int_var(f"x_q{q}_t{t}", 0, arch.x_max))
            self.y[q].append(solver.int_var(f"y_q{q}_t{t}", 0, arch.y_max))
            self.h[q].append(solver.int_var(f"h_q{q}_t{t}", -arch.h_max, arch.h_max))
            self.v[q].append(solver.int_var(f"v_q{q}_t{t}", -arch.v_max, arch.v_max))
            self.a[q].append(solver.bool_var(f"a_q{q}_t{t}"))
            self.c[q].append(solver.int_var(f"c_q{q}_t{t}", 0, arch.c_max))
            self.r[q].append(solver.int_var(f"r_q{q}_t{t}", 0, arch.r_max))
        self.execution.append(solver.bool_var(f"e_t{t}"))
        for k in range(arch.c_max + 1):
            self.column_load[k].append(solver.bool_var(f"cl_k{k}_t{t}"))
            self.column_store[k].append(solver.bool_var(f"cs_k{k}_t{t}"))
        for k in range(arch.r_max + 1):
            self.row_load[k].append(solver.bool_var(f"rl_k{k}_t{t}"))
            self.row_store[k].append(solver.bool_var(f"rs_k{k}_t{t}"))
        self.num_stages = t + 1
        return t
