"""Symbolic variables of the SMT formulation (Sec. IV-A, boxes V1-V3).

For every qubit ``q`` and stage ``t`` the formulation uses

* ``x, y`` — interaction-site coordinates,
* ``h, v`` — offsets within the interaction site,
* ``a``    — whether the qubit sits in an AOD trap,
* ``c, r`` — AOD column and row indices,

for every gate ``i`` the stage ``g_i`` at which it is executed, for every
stage the execution flag ``e_t``, and for every AOD column/row and stage the
load/store flags (V3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.architecture import ZonedArchitecture
from repro.smt import Solver
from repro.smt.terms import BoolVar, IntVar


@dataclass
class StatePrepVariables:
    """All symbolic variables of one scheduling instance."""

    architecture: ZonedArchitecture
    num_qubits: int
    num_gates: int
    num_stages: int
    solver: Solver

    x: list[list[IntVar]] = field(default_factory=list)
    y: list[list[IntVar]] = field(default_factory=list)
    h: list[list[IntVar]] = field(default_factory=list)
    v: list[list[IntVar]] = field(default_factory=list)
    a: list[list[BoolVar]] = field(default_factory=list)
    c: list[list[IntVar]] = field(default_factory=list)
    r: list[list[IntVar]] = field(default_factory=list)
    gate_stage: list[IntVar] = field(default_factory=list)
    execution: list[BoolVar] = field(default_factory=list)
    column_load: list[list[BoolVar]] = field(default_factory=list)
    column_store: list[list[BoolVar]] = field(default_factory=list)
    row_load: list[list[BoolVar]] = field(default_factory=list)
    row_store: list[list[BoolVar]] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        solver: Solver,
        architecture: ZonedArchitecture,
        num_qubits: int,
        num_gates: int,
        num_stages: int,
    ) -> "StatePrepVariables":
        """Allocate all variables with the domains of box V1-V3."""
        if num_stages <= 0:
            raise ValueError("a schedule needs at least one stage")
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        arch = architecture
        variables = cls(
            architecture=arch,
            num_qubits=num_qubits,
            num_gates=num_gates,
            num_stages=num_stages,
            solver=solver,
        )
        for q in range(num_qubits):
            variables.x.append(
                [solver.int_var(f"x_q{q}_t{t}", 0, arch.x_max) for t in range(num_stages)]
            )
            variables.y.append(
                [solver.int_var(f"y_q{q}_t{t}", 0, arch.y_max) for t in range(num_stages)]
            )
            variables.h.append(
                [
                    solver.int_var(f"h_q{q}_t{t}", -arch.h_max, arch.h_max)
                    for t in range(num_stages)
                ]
            )
            variables.v.append(
                [
                    solver.int_var(f"v_q{q}_t{t}", -arch.v_max, arch.v_max)
                    for t in range(num_stages)
                ]
            )
            variables.a.append(
                [solver.bool_var(f"a_q{q}_t{t}") for t in range(num_stages)]
            )
            variables.c.append(
                [solver.int_var(f"c_q{q}_t{t}", 0, arch.c_max) for t in range(num_stages)]
            )
            variables.r.append(
                [solver.int_var(f"r_q{q}_t{t}", 0, arch.r_max) for t in range(num_stages)]
            )
        variables.gate_stage = [
            solver.int_var(f"g_{i}", 0, num_stages - 1) for i in range(num_gates)
        ]
        variables.execution = [solver.bool_var(f"e_t{t}") for t in range(num_stages)]
        variables.column_load = [
            [solver.bool_var(f"cl_k{k}_t{t}") for t in range(num_stages)]
            for k in range(arch.c_max + 1)
        ]
        variables.column_store = [
            [solver.bool_var(f"cs_k{k}_t{t}") for t in range(num_stages)]
            for k in range(arch.c_max + 1)
        ]
        variables.row_load = [
            [solver.bool_var(f"rl_k{k}_t{t}") for t in range(num_stages)]
            for k in range(arch.r_max + 1)
        ]
        variables.row_store = [
            [solver.bool_var(f"rs_k{k}_t{t}") for t in range(num_stages)]
            for k in range(arch.r_max + 1)
        ]
        return variables
