"""ASCII rendering of schedules.

The renderer draws each stage as a grid of interaction sites (rows are
architecture rows, top row printed first), marking qubits by index, AOD
qubits with ``*`` and the zone of every row, in the spirit of the paper's
Figs. 1-3.  It is meant for debugging and for the examples/CLI — not for
publication-quality figures.
"""

from __future__ import annotations

from repro.arch.zones import ZoneKind
from repro.core.schedule import Schedule, Stage

_ZONE_GLYPHS = {
    ZoneKind.ENTANGLING: "E",
    ZoneKind.STORAGE: "S",
    ZoneKind.READOUT: "R",
}


def render_stage(schedule: Schedule, stage_index: int, cell_width: int = 6) -> str:
    """Render one stage as an ASCII site grid."""
    arch = schedule.architecture
    stage = schedule.stages[stage_index]
    occupants: dict[tuple[int, int], list[tuple[int, bool]]] = {}
    for qubit, placement in stage.placements.items():
        occupants.setdefault(placement.site, []).append((qubit, placement.in_aod))

    header = _stage_header(schedule, stage_index, stage)
    lines = [header]
    for y in range(arch.y_max, -1, -1):
        zone = arch.zone_of_row(y)
        cells = []
        for x in range(arch.x_max + 1):
            entries = sorted(occupants.get((x, y), []))
            text = ",".join(f"{q}{'*' if aod else ''}" for q, aod in entries)
            cells.append(text.center(cell_width)[:cell_width])
        lines.append(f"{_ZONE_GLYPHS[zone.kind]} y={y:<2}|" + "|".join(cells) + "|")
    lines.append("    (qubit indices; '*' marks AOD traps; E/S/R = zone kind)")
    return "\n".join(lines)


def render_schedule(schedule: Schedule, cell_width: int = 6) -> str:
    """Render every stage of a schedule."""
    parts = [render_stage(schedule, index, cell_width) for index in range(schedule.num_stages)]
    return ("\n" + "=" * 40 + "\n").join(parts)


def _stage_header(schedule: Schedule, stage_index: int, stage: Stage) -> str:
    if stage.is_execution:
        gates = ", ".join(f"({a},{b})" for a, b in stage.gates) or "none"
        return f"stage {stage_index} [Rydberg beam] gates: {gates}"
    operations = []
    if stage.stored_qubits:
        operations.append(f"store {stage.stored_qubits}")
    if stage.loaded_qubits:
        operations.append(f"load {stage.loaded_qubits}")
    description = "; ".join(operations) or "movement only"
    return f"stage {stage_index} [transfer] {description}"
