"""Complete SMT encoding of one scheduling instance plus model extraction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.architecture import ZonedArchitecture
from repro.core import constraints as C
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind
from repro.core.variables import StatePrepVariables
from repro.smt import CheckResult, Solver
from repro.smt.solver import Model

Gate = tuple[int, int]


@dataclass
class EncodedInstance:
    """A fully constrained instance for a fixed number of stages."""

    architecture: ZonedArchitecture
    num_qubits: int
    gates: list[Gate]
    num_stages: int
    shielding: bool
    solver: Solver
    variables: StatePrepVariables

    def check(
        self,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> CheckResult:
        """Decide the instance."""
        return self.solver.check(max_conflicts=max_conflicts, time_limit=time_limit)

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent check."""
        return self.solver.statistics()

    def extract_schedule(self, metadata: dict | None = None) -> Schedule:
        """Convert the satisfying assignment into a :class:`Schedule`."""
        model = self.solver.model()
        return extract_schedule(self, model, metadata)


def encode_instance(
    architecture: ZonedArchitecture,
    num_qubits: int,
    gates: Sequence[Gate],
    num_stages: int,
    shielding: bool | None = None,
) -> EncodedInstance:
    """Build the symbolic formulation for a fixed stage count.

    *shielding* defaults to "the architecture has a storage zone", matching
    the paper's handling of Layout 1 (footnote 2).
    """
    normalised = [(min(a, b), max(a, b)) for a, b in gates]
    for a, b in normalised:
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ValueError(f"invalid CZ gate ({a}, {b})")
    if shielding is None:
        shielding = architecture.has_storage
    solver = Solver()
    variables = StatePrepVariables.create(
        solver, architecture, num_qubits, len(normalised), num_stages
    )
    C.assert_all(variables, normalised, shielding=shielding)
    return EncodedInstance(
        architecture=architecture,
        num_qubits=num_qubits,
        gates=list(normalised),
        num_stages=num_stages,
        shielding=shielding,
        solver=solver,
        variables=variables,
    )


def extract_schedule(
    instance: EncodedInstance, model: Model, metadata: dict | None = None
) -> Schedule:
    """Read the variable assignment back into a concrete schedule."""
    variables = instance.variables
    num_stages = instance.num_stages
    stages: list[Stage] = []
    gate_stages = [model[g] for g in variables.gate_stage]
    for t in range(num_stages):
        placements: dict[int, QubitPlacement] = {}
        for q in range(instance.num_qubits):
            in_aod = bool(model[variables.a[q][t]])
            placements[q] = QubitPlacement(
                x=model[variables.x[q][t]],
                y=model[variables.y[q][t]],
                h=model[variables.h[q][t]],
                v=model[variables.v[q][t]],
                in_aod=in_aod,
                column=model[variables.c[q][t]] if in_aod else None,
                row=model[variables.r[q][t]] if in_aod else None,
            )
        is_execution = bool(model[variables.execution[t]])
        if is_execution:
            gates_here = [
                instance.gates[i] for i, stage in enumerate(gate_stages) if stage == t
            ]
            stages.append(
                Stage(kind=StageKind.RYDBERG, placements=placements, gates=gates_here)
            )
        else:
            stored: list[int] = []
            loaded: list[int] = []
            if t < num_stages - 1:
                for q in range(instance.num_qubits):
                    now = bool(model[variables.a[q][t]])
                    later = bool(model[variables.a[q][t + 1]])
                    if now and not later:
                        stored.append(q)
                    elif not now and later:
                        loaded.append(q)
            stages.append(
                Stage(
                    kind=StageKind.TRANSFER,
                    placements=placements,
                    stored_qubits=stored,
                    loaded_qubits=loaded,
                )
            )
    return Schedule(
        architecture=instance.architecture,
        num_qubits=instance.num_qubits,
        stages=stages,
        target_gates=list(instance.gates),
        metadata={"backend": "smt", "num_stages": num_stages, **(metadata or {})},
    )
