"""Complete SMT encoding of one scheduling instance plus model extraction.

Two instance flavours exist:

* :class:`EncodedInstance` — the cold-start encoding: a fixed stage count,
  one fresh solver per instance.
* :class:`IncrementalInstance` — a growable encoding: the instance starts at
  some stage count and is *extended in place* one stage at a time
  (:meth:`IncrementalInstance.extend_to`).  The stage horizon is imposed with
  fresh activation literals assumed per :meth:`IncrementalInstance.check`
  call, so the underlying CDCL solver keeps its learned clauses and variable
  activities across the whole minimum-stage search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.arch.architecture import ZonedArchitecture
from repro.core import constraints as C
from repro.core.budget import Deadline
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind
from repro.core.variables import StatePrepVariables
from repro.smt import CheckResult, Implies, Not, Solver
from repro.smt.solver import Model
from repro.smt.terms import BoolVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SchedulingProblem

Gate = tuple[int, int]


def _normalised_gates(num_qubits: int, gates: Sequence[Gate]) -> list[Gate]:
    """Validate and canonicalise (sort the endpoints of) every CZ gate."""
    normalised = [(min(a, b), max(a, b)) for a, b in gates]
    for a, b in normalised:
        if a == b or not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise ValueError(f"invalid CZ gate ({a}, {b})")
    return normalised


@dataclass
class EncodedInstance:
    """A fully constrained instance for a fixed number of stages."""

    architecture: ZonedArchitecture
    num_qubits: int
    gates: list[Gate]
    num_stages: int
    shielding: bool
    solver: Solver
    variables: StatePrepVariables

    def check(
        self,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> CheckResult:
        """Decide the instance."""
        return self.solver.check(
            max_conflicts=max_conflicts, time_limit=time_limit, deadline=deadline
        )

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent check."""
        return self.solver.statistics()

    def extract_schedule(self, metadata: dict | None = None) -> Schedule:
        """Convert the satisfying assignment into a :class:`Schedule`."""
        model = self.solver.model()
        return extract_schedule(self, model, metadata)


@dataclass
class IncrementalInstance:
    """A scheduling instance that can grow from S to S+1 stages in place.

    The ``gate_stage`` variables are allocated with domain
    ``[0, max_stages-1]`` up front; the *effective* horizon ``S`` is enforced
    by a per-horizon activation literal ``_horizon_S`` with the guarded
    constraints ``_horizon_S -> g_i <= S-1`` and passed to the solver as an
    assumption.  Because assumptions are not asserted, a later check with a
    larger horizon simply stops assuming the old literal — nothing has to be
    retracted, and every clause the SAT core learned while refuting the
    smaller horizon remains valid.

    Checks may also target a horizon *below* the current stage count
    (``check(horizon=h)`` with ``h <= num_stages``), which is what the
    bisection strategies use: a single instance grown to the largest probed
    horizon decides every smaller horizon through its activation literal.
    This is sound in both directions because any satisfying assignment of an
    ``h``-stage encoding extends to the larger instance by replaying the last
    placements through do-nothing transfer stages (every trailing constraint
    is an implication guarded by an execution flag or a load/store flag that
    the extension sets to false), and conversely the first ``h`` stages of a
    model with all gates inside the horizon satisfy exactly the ``h``-stage
    constraint set.  :meth:`extract_schedule` truncates accordingly.
    """

    architecture: ZonedArchitecture
    num_qubits: int
    gates: list[Gate]
    shielding: bool
    solver: Solver
    variables: StatePrepVariables
    _horizons: dict[int, BoolVar] = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        """The current stage horizon."""
        return self.variables.num_stages

    @property
    def max_stages(self) -> int:
        """The largest horizon this instance can grow to."""
        return self.variables.gate_stage_capacity

    def extend_to(self, num_stages: int) -> None:
        """Grow the instance to *num_stages* stages (no-op when already there).

        Each added stage allocates its variables and asserts exactly the
        constraints a cold-start encoding of the larger instance would
        contain for that stage (intra-stage groups plus the transition from
        the previously last stage).
        """
        if num_stages > self.max_stages:
            raise ValueError(
                f"cannot extend to {num_stages} stages: capacity is {self.max_stages}"
            )
        while self.variables.num_stages < num_stages:
            stage = self.variables.add_stage()
            C.assert_stage(self.variables, self.gates, stage, shielding=self.shielding)

    def check(
        self,
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
        horizon: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> CheckResult:
        """Decide the instance at *horizon* stages (default: all of them).

        *horizon* may be any value in ``[1, num_stages]``; smaller horizons
        are decided on the already-encoded larger instance through their
        activation literal (see the class docstring for why this is exact).
        A *deadline* caps the check's effective limits at the remaining
        whole-search budget (see :meth:`repro.smt.solver.Solver.check`).
        """
        if horizon is None:
            horizon = self.variables.num_stages
        elif not 1 <= horizon <= self.variables.num_stages:
            raise ValueError(
                f"horizon {horizon} outside the encoded range "
                f"[1, {self.variables.num_stages}]"
            )
        literal = self._horizon_literal(horizon)
        result = self.solver.check(
            assumptions=[literal],
            max_conflicts=max_conflicts,
            time_limit=time_limit,
            deadline=deadline,
        )
        if result is CheckResult.UNSAT:
            # UNSAT under the assumption proves the formula entails the
            # literal's negation; asserting it satisfies the horizon's guard
            # clauses outright and keeps the solver from ever revisiting the
            # refuted horizon.  (Not sound after UNKNOWN, hence the guard.)
            self.solver.add(Not(literal))
        return result

    def statistics(self) -> dict[str, float]:
        """Statistics of the most recent check."""
        return self.solver.statistics()

    def extract_schedule(
        self, metadata: dict | None = None, horizon: Optional[int] = None
    ) -> Schedule:
        """Convert the satisfying assignment into a :class:`Schedule`.

        With *horizon* the schedule is truncated to that many stages — valid
        after a satisfiable ``check(horizon=...)``, whose assumption confines
        every gate to the truncated prefix.
        """
        model = self.solver.model()
        return extract_schedule(self, model, metadata, horizon=horizon)

    def set_phase_hints(self, hints: dict) -> None:
        """Forward branching-phase hints to the underlying solver."""
        self.solver.set_phase_hints(hints)

    def _horizon_literal(self, horizon: int) -> BoolVar:
        """Activation literal restricting every gate to the first *horizon* stages."""
        literal = self._horizons.get(horizon)
        if literal is None:
            literal = self.solver.bool_var(f"_horizon_{horizon}")
            for gate_stage in self.variables.gate_stage:
                self.solver.add(Implies(literal, gate_stage <= horizon - 1))
            self._horizons[horizon] = literal
        return literal


def encode_instance(
    architecture: ZonedArchitecture,
    num_qubits: int,
    gates: Sequence[Gate],
    num_stages: int,
    shielding: bool | None = None,
    backend: str | None = None,
    backend_options: dict | None = None,
    backend_retries: int | None = None,
) -> EncodedInstance:
    """Build the symbolic formulation for a fixed stage count.

    *shielding* defaults to "the architecture has a storage zone", matching
    the paper's handling of Layout 1 (footnote 2).  *backend* selects the
    SAT backend by registry name (default: the in-process flat core);
    *backend_options* tunes it (e.g. ``chrono`` / ``inprocessing``);
    *backend_retries* bounds per-check transient-failure retries (``None``
    keeps the solver default).
    """
    normalised = _normalised_gates(num_qubits, gates)
    if shielding is None:
        shielding = architecture.has_storage
    solver = Solver(
        backend=backend,
        backend_options=backend_options,
        **({} if backend_retries is None else {"backend_retries": backend_retries}),
    )
    variables = StatePrepVariables.create(
        solver, architecture, num_qubits, len(normalised), num_stages
    )
    C.assert_all(variables, normalised, shielding=shielding)
    return EncodedInstance(
        architecture=architecture,
        num_qubits=num_qubits,
        gates=list(normalised),
        num_stages=num_stages,
        shielding=shielding,
        solver=solver,
        variables=variables,
    )


def encode_incremental_instance(
    architecture: ZonedArchitecture,
    num_qubits: int,
    gates: Sequence[Gate],
    num_stages: int,
    max_stages: int,
    shielding: bool | None = None,
    backend: str | None = None,
    backend_options: dict | None = None,
    backend_retries: int | None = None,
) -> IncrementalInstance:
    """Build a growable instance starting at *num_stages* stages.

    The instance can later be extended up to *max_stages* stages without
    re-encoding the stages that already exist.  *backend* selects the SAT
    backend by registry name (default: the in-process flat core);
    *backend_options* tunes it (e.g. ``chrono`` / ``inprocessing``);
    *backend_retries* bounds per-check transient-failure retries (``None``
    keeps the solver default).
    """
    normalised = _normalised_gates(num_qubits, gates)
    if shielding is None:
        shielding = architecture.has_storage
    solver = Solver(
        incremental=True,
        backend=backend,
        backend_options=backend_options,
        **({} if backend_retries is None else {"backend_retries": backend_retries}),
    )
    variables = StatePrepVariables.create(
        solver,
        architecture,
        num_qubits,
        len(normalised),
        num_stages,
        gate_stage_capacity=max_stages,
    )
    C.assert_all(variables, normalised, shielding=shielding)
    return IncrementalInstance(
        architecture=architecture,
        num_qubits=num_qubits,
        gates=list(normalised),
        shielding=shielding,
        solver=solver,
        variables=variables,
    )


def encode_problem(
    problem: "SchedulingProblem",
    num_stages: int,
    backend: str | None = None,
    backend_options: dict | None = None,
    backend_retries: int | None = None,
) -> EncodedInstance:
    """Cold-start encoding of a :class:`SchedulingProblem` at a fixed S."""
    return encode_instance(
        problem.architecture,
        problem.num_qubits,
        problem.gates,
        num_stages,
        shielding=problem.shielding,
        backend=backend,
        backend_options=backend_options,
        backend_retries=backend_retries,
    )


def encode_incremental_problem(
    problem: "SchedulingProblem",
    num_stages: int,
    max_stages: int,
    backend: str | None = None,
    backend_options: dict | None = None,
    backend_retries: int | None = None,
) -> IncrementalInstance:
    """Growable encoding of a :class:`SchedulingProblem`."""
    return encode_incremental_instance(
        problem.architecture,
        problem.num_qubits,
        problem.gates,
        num_stages=num_stages,
        max_stages=max_stages,
        shielding=problem.shielding,
        backend=backend,
        backend_options=backend_options,
        backend_retries=backend_retries,
    )


def extract_schedule(
    instance: EncodedInstance | IncrementalInstance,
    model: Model,
    metadata: dict | None = None,
    horizon: int | None = None,
) -> Schedule:
    """Read the variable assignment back into a concrete schedule.

    *horizon* truncates the schedule to its first stages; the caller must
    guarantee (e.g. through a horizon assumption) that every gate executes
    inside the truncated prefix.
    """
    variables = instance.variables
    num_stages = instance.num_stages if horizon is None else horizon
    if not 1 <= num_stages <= instance.num_stages:
        raise ValueError(
            f"horizon {num_stages} outside the encoded range [1, {instance.num_stages}]"
        )
    stages: list[Stage] = []
    gate_stages = [model[g] for g in variables.gate_stage]
    for t in range(num_stages):
        placements: dict[int, QubitPlacement] = {}
        for q in range(instance.num_qubits):
            in_aod = bool(model[variables.a[q][t]])
            placements[q] = QubitPlacement(
                x=model[variables.x[q][t]],
                y=model[variables.y[q][t]],
                h=model[variables.h[q][t]],
                v=model[variables.v[q][t]],
                in_aod=in_aod,
                column=model[variables.c[q][t]] if in_aod else None,
                row=model[variables.r[q][t]] if in_aod else None,
            )
        is_execution = bool(model[variables.execution[t]])
        if is_execution:
            gates_here = [
                instance.gates[i] for i, stage in enumerate(gate_stages) if stage == t
            ]
            stages.append(
                Stage(kind=StageKind.RYDBERG, placements=placements, gates=gates_here)
            )
        else:
            stored: list[int] = []
            loaded: list[int] = []
            if t < num_stages - 1:
                for q in range(instance.num_qubits):
                    now = bool(model[variables.a[q][t]])
                    later = bool(model[variables.a[q][t + 1]])
                    if now and not later:
                        stored.append(q)
                    elif not now and later:
                        loaded.append(q)
            stages.append(
                Stage(
                    kind=StageKind.TRANSFER,
                    placements=placements,
                    stored_qubits=stored,
                    loaded_qubits=loaded,
                )
            )
    return Schedule(
        architecture=instance.architecture,
        num_qubits=instance.num_qubits,
        stages=stages,
        target_gates=list(instance.gates),
        metadata={"backend": "smt", "num_stages": num_stages, **(metadata or {})},
    )
