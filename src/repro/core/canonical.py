"""Canonical form and content hashes for the :class:`SchedulingProblem` IR.

Two scheduling problems are *isomorphic* when a relabeling of their qubits
maps one gate multiset onto the other and they agree on everything the
solver actually consumes: the structural architecture (grid extents, AOD
limits, interaction radius, zone bands, operation parameters — but not
display names), the qubit count, and the shielding policy.  Isomorphic
problems have identical optimal schedules up to the same relabeling, so a
certified optimum for one is a certified optimum for all of them.

This module computes a **canonical form** — a normal-form relabeling under
which all isomorphic problems become literally equal — and a **canonical
key**, the SHA-256 of that normal form's JSON serialisation.  The key is
deliberately independent of Python's randomised ``hash()`` so it is stable
across processes, machines and runs: the service's certified-result cache
(:mod:`repro.service.cache`) persists it to disk, and the bench runner uses
it to deduplicate isomorphic cells.

The relabeling is exact graph canonicalisation, not a heuristic invariant:
individualisation-refinement on the gate multigraph.  Colour refinement
(1-WL with edge multiplicities) partitions the qubits; while a colour class
has more than one member, each member is individualised in turn and the
lexicographically smallest relabeled gate list over all branches wins.
The instances this repository schedules are tiny (tens of qubits, highly
irregular), so the search tree stays small; there is intentionally **no**
branch cap, because a cap would break canonicality on the instances it
triggered on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.arch.architecture import ZonedArchitecture
    from repro.core.problem import SchedulingProblem

#: Version of the canonical document layout.  Bump on any change to
#: :func:`canonical_document`'s shape — a bump invalidates every persisted
#: cache entry, which is exactly what a layout change must do.
CANONICAL_VERSION = 1


# --------------------------------------------------------------------------- #
# Architecture fingerprint
# --------------------------------------------------------------------------- #
def architecture_fingerprint(architecture: "ZonedArchitecture") -> dict:
    """Structural identity of an architecture, display names excluded.

    Two architectures with the same fingerprint admit exactly the same
    schedules: the fingerprint covers the grid extents, AOD limits, the
    interaction radius, the zone bands (kind + row range, sorted by row so
    declaration order cannot matter), and every operation parameter.  The
    ``name`` of the architecture and of its zones is presentation-only and
    deliberately omitted.
    """
    return {
        "x_max": architecture.x_max,
        "y_max": architecture.y_max,
        "h_max": architecture.h_max,
        "v_max": architecture.v_max,
        "c_max": architecture.c_max,
        "r_max": architecture.r_max,
        "interaction_radius": architecture.interaction_radius,
        "zones": sorted(
            (zone.y_min, zone.y_max, zone.kind.value) for zone in architecture.zones
        ),
        "parameters": {
            field.name: getattr(architecture.parameters, field.name)
            for field in dataclass_fields(architecture.parameters)
        },
    }


# --------------------------------------------------------------------------- #
# Exact multigraph canonicalisation (individualisation-refinement)
# --------------------------------------------------------------------------- #
def _adjacency(
    num_qubits: int, gates: Sequence[tuple[int, int]]
) -> list[dict[int, int]]:
    """Multigraph adjacency: ``adj[q][r]`` = number of gates between q and r."""
    adjacency: list[dict[int, int]] = [{} for _ in range(num_qubits)]
    for a, b in gates:
        adjacency[a][b] = adjacency[a].get(b, 0) + 1
        adjacency[b][a] = adjacency[b].get(a, 0) + 1
    return adjacency


def _refine(colours: list[int], adjacency: list[dict[int, int]]) -> list[int]:
    """Colour refinement (1-WL with edge multiplicities) to a fixed point.

    Each round recolours every qubit by its current colour plus the sorted
    multiset of ``(multiplicity, neighbour colour)`` pairs; colours are
    re-ranked into ``0..k-1`` by signature order, which keeps the result a
    function of the partition alone (not of the incoming colour values).
    """
    while True:
        signatures = [
            (
                colours[q],
                tuple(sorted((mult, colours[r]) for r, mult in adjacency[q].items())),
            )
            for q in range(len(colours))
        ]
        ranking = {sig: rank for rank, sig in enumerate(sorted(set(signatures)))}
        refined = [ranking[sig] for sig in signatures]
        if refined == colours:
            return refined
        colours = refined


def _relabeled_gates(
    gates: Sequence[tuple[int, int]], label: Sequence[int]
) -> tuple[tuple[int, int], ...]:
    """Apply a relabeling and normalise: endpoints sorted, gates sorted."""
    return tuple(
        sorted(
            (min(label[a], label[b]), max(label[a], label[b])) for a, b in gates
        )
    )


def canonical_relabeling(problem: "SchedulingProblem") -> tuple[int, ...]:
    """Return the canonical qubit relabeling ``old label -> new label``.

    The relabeling is a pure function of the isomorphism class: applying
    any permutation to the problem's qubits first changes nothing about the
    relabeled gate list it produces.  Qubits that participate in gates are
    ordered by the individualisation-refinement search below; isolated
    qubits are interchangeable (no gate can tell them apart) and receive
    the trailing labels in ascending original order.
    """
    num_qubits = problem.num_qubits
    adjacency = _adjacency(num_qubits, problem.gates)
    active = [q for q in range(num_qubits) if adjacency[q]]
    isolated = [q for q in range(num_qubits) if not adjacency[q]]
    gates = list(problem.gates)

    best: Optional[tuple[tuple[tuple[int, int], ...], list[int]]] = None

    def search(colours: list[int]) -> None:
        nonlocal best
        cells: dict[int, list[int]] = {}
        for q in active:
            cells.setdefault(colours[q], []).append(q)
        target: Optional[list[int]] = None
        for colour in sorted(cells):
            if len(cells[colour]) > 1:
                target = cells[colour]
                break
        if target is None:
            # Discrete partition on the active qubits.  Their colours are
            # pairwise distinct but not contiguous — isolated qubits (and
            # sentinels) consume ranks too — so re-rank onto
            # 0..len(active)-1 before relabeling.
            label = [0] * len(colours)
            for rank, q in enumerate(sorted(active, key=colours.__getitem__)):
                label[q] = rank
            relabeled = _relabeled_gates(gates, label)
            if best is None or relabeled < best[0]:
                best = (relabeled, label)
            return
        for q in target:
            branched = list(colours)
            branched[q] = -1  # individualise: strictly smallest colour
            search(_refine(branched, adjacency))

    if active:
        # Start monochromatic; the first refinement separates by degree
        # profile.  Isolated qubits are excluded from the search entirely.
        initial = [0] * num_qubits
        search(_refine(initial, adjacency))
        assert best is not None
        label = best[1]
    else:
        label = [0] * num_qubits

    relabeling = [0] * num_qubits
    for q in active:
        relabeling[q] = label[q]
    for offset, q in enumerate(isolated):
        relabeling[q] = len(active) + offset
    return tuple(relabeling)


# --------------------------------------------------------------------------- #
# Canonical documents, keys, and forms
# --------------------------------------------------------------------------- #
def canonical_document(problem: "SchedulingProblem") -> dict:
    """The JSON-serialisable normal form hashed by :func:`canonical_key`.

    Isomorphic problems produce byte-identical documents; any difference
    the solver can observe (gate structure, qubit count, shielding,
    structural architecture) produces a different document.  Problem
    ``metadata`` is provenance, not semantics, and is excluded.
    """
    relabeling = canonical_relabeling(problem)
    return {
        "version": CANONICAL_VERSION,
        "architecture": architecture_fingerprint(problem.architecture),
        "num_qubits": problem.num_qubits,
        "shielding": problem.shielding,
        "gates": [list(gate) for gate in _relabeled_gates(problem.gates, relabeling)],
    }


def canonical_key(problem: "SchedulingProblem") -> str:
    """SHA-256 hex digest of the problem's canonical document.

    Stable across processes and machines (no reliance on Python ``hash()``):
    the document is serialised with sorted keys and compact separators
    before hashing, so the key doubles as a persistent cache key.
    """
    document = canonical_document(problem)
    serialised = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialised.encode("utf-8")).hexdigest()


def canonical_form(
    problem: "SchedulingProblem",
) -> tuple["SchedulingProblem", tuple[int, ...]]:
    """Return ``(canonical problem, relabeling)`` for *problem*.

    The returned problem is the normal-form representative of the
    isomorphism class (isomorphic inputs yield equal gate lists); the
    relabeling maps each original qubit label to its canonical label, so a
    schedule solved on the canonical problem can be mapped back by
    inverting it.
    """
    from repro.core.problem import SchedulingProblem

    relabeling = canonical_relabeling(problem)
    relabeled = _relabeled_gates(problem.gates, relabeling)
    canonical = SchedulingProblem.from_gates(
        problem.architecture,
        problem.num_qubits,
        list(relabeled),
        shielding=problem.shielding,
        metadata=dict(problem.metadata),
    )
    return canonical, relabeling
