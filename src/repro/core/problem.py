"""The scheduling-problem intermediate representation.

:class:`SchedulingProblem` bundles everything a scheduling backend needs —
the CZ-gate list, the target architecture, and the effective shielding
policy — together with derived structure that every backend re-derived for
itself before this IR existed: per-qubit gate loads, the interaction graph,
and the architecture's zone capacities.  Both the exact
:class:`~repro.core.scheduler.SMTScheduler` and the constructive
:class:`~repro.core.structured.StructuredScheduler` consume a problem
instance instead of raw ``(circuit, architecture)`` pairs, and the search
strategies in :mod:`repro.core.strategies` read their analytic stage bounds
from it.

Analytic lower bound
--------------------

:meth:`SchedulingProblem.lower_bound` combines three certificates, each a
sound lower bound on the number of *Rydberg* stages (and therefore on the
total stage count):

* **per-qubit gate load** — gates sharing a qubit execute in distinct
  stages (Eq. 13), so a qubit touched by ``k`` gates forces ``k`` stages.
  Counting gate multiplicity makes this at least the chromatic-index bound
  (max degree of the simple interaction graph) used by the seed scheduler.
* **site capacity** — a beam executes at most one gate per entangling-zone
  interaction site (both operands sit at the same site, Eq. 12, and sites
  are exclusive, Eq. 9).
* **AOD capacity** — every executed gate holds at least one operand in an
  AOD trap (two qubits at one site cannot both sit at the SLM centre,
  Eqs. 9/10), and two AOD qubits can share neither their column nor their
  row pair (Eq. 11 ties indices to geometric order), so a beam executes at
  most ``(Cmax+1) * (Rmax+1)`` gates.

On top of the Rydberg-stage certificates, shielded single-sided
architectures can earn a **+T transfer-stage certificate** (one extra stage
for the transfer the shielding choreography cannot avoid); see
:meth:`SchedulingProblem.transfer_lower_bound` for the soundness argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.arch.architecture import ZonedArchitecture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.circuit.state_prep_circuit import StatePrepCircuit

Gate = tuple[int, int]


@dataclass(frozen=True)
class ZoneCapacities:
    """Site/trap capacities of an architecture, derived once per problem."""

    #: Interaction sites inside the entangling zone (max gates per beam).
    entangling_sites: int
    #: SLM sites inside storage zones (shielded parking spots).
    storage_sites: int
    #: Distinct (column, row) AOD index pairs (max airborne qubits).
    aod_traps: int
    #: AOD columns available for pick-ups.
    aod_columns: int
    #: AOD rows available for pick-ups.
    aod_rows: int

    @classmethod
    def of(cls, architecture: ZonedArchitecture) -> "ZoneCapacities":
        """Compute the capacities of *architecture*."""
        e_min, e_max = architecture.entangling_rows
        columns = architecture.x_max + 1
        return cls(
            entangling_sites=(e_max - e_min + 1) * columns,
            storage_sites=len(architecture.storage_rows()) * columns,
            aod_traps=architecture.num_aod_columns * architecture.num_aod_rows,
            aod_columns=architecture.num_aod_columns,
            aod_rows=architecture.num_aod_rows,
        )


@dataclass(frozen=True)
class SchedulingProblem:
    """One scheduling instance: circuit + architecture + derived structure.

    Construct through :meth:`from_gates` or :meth:`from_circuit`, which
    validate and canonicalise the gate list; the raw constructor performs no
    normalisation.
    """

    architecture: ZonedArchitecture
    num_qubits: int
    gates: tuple[Gate, ...]
    #: Whether idle qubits must leave the entangling zone during beams
    #: (Eq. 14).  Defaults to "the architecture has a storage zone".
    shielding: bool
    #: Free-form provenance (code name, circuit label, ...).
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_gates(
        cls,
        architecture: ZonedArchitecture,
        num_qubits: int,
        cz_gates: Sequence[Gate],
        shielding: bool | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> "SchedulingProblem":
        """Build a problem from a raw CZ-gate list.

        Gate endpoints are sorted; invalid gates (identical operands or
        out-of-range qubits) raise ``ValueError``.  Duplicate gates are
        preserved — each occurrence is scheduled separately, exactly as the
        backends treated them before this IR existed.
        """
        if num_qubits <= 0:
            raise ValueError("a problem needs at least one qubit")
        normalised = []
        for a, b in cz_gates:
            low, high = (a, b) if a <= b else (b, a)
            if low == high or low < 0 or high >= num_qubits:
                raise ValueError(f"invalid CZ gate ({a}, {b})")
            normalised.append((low, high))
        if shielding is None:
            shielding = architecture.has_storage
        return cls(
            architecture=architecture,
            num_qubits=num_qubits,
            gates=tuple(normalised),
            shielding=bool(shielding),
            metadata=dict(metadata or {}),
        )

    @classmethod
    def from_circuit(
        cls,
        architecture: ZonedArchitecture,
        circuit: "StatePrepCircuit",
        shielding: bool | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> "SchedulingProblem":
        """Build a problem from a state-preparation circuit."""
        merged = {"circuit": circuit.name, **(metadata or {})}
        return cls.from_gates(
            architecture,
            circuit.num_qubits,
            circuit.cz_gates,
            shielding=shielding,
            metadata=merged,
        )

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    @property
    def num_gates(self) -> int:
        """Number of CZ gates (counting duplicates)."""
        return len(self.gates)

    def gate_load(self) -> list[int]:
        """Per-qubit gate count (multiplicity included)."""
        load = [0] * self.num_qubits
        for a, b in self.gates:
            load[a] += 1
            load[b] += 1
        return load

    def max_gate_load(self) -> int:
        """The heaviest qubit's gate count — a stage lower bound (Eq. 13)."""
        return max(self.gate_load(), default=0)

    def interaction_graph(self) -> dict[int, set[int]]:
        """Adjacency sets of the (simple) interaction graph."""
        adjacency: dict[int, set[int]] = {q: set() for q in range(self.num_qubits)}
        for a, b in self.gates:
            adjacency[a].add(b)
            adjacency[b].add(a)
        return adjacency

    def interacting_qubits(self) -> list[int]:
        """Qubits that participate in at least one gate."""
        return [q for q, load in enumerate(self.gate_load()) if load > 0]

    def zone_capacities(self) -> ZoneCapacities:
        """Capacities of the target architecture."""
        return ZoneCapacities.of(self.architecture)

    # ------------------------------------------------------------------ #
    # Analytic stage bounds
    # ------------------------------------------------------------------ #
    def rydberg_lower_bound(self) -> int:
        """Sound analytic lower bound on the number of Rydberg stages.

        See the module docstring for why each certificate is sound against
        the SMT formulation.
        """
        capacities = self.zone_capacities()
        gates_per_beam = min(capacities.entangling_sites, capacities.aod_traps)
        bounds = [1, self.max_gate_load()]
        if self.num_gates and gates_per_beam:
            bounds.append(-(-self.num_gates // gates_per_beam))
        return max(bounds)

    def transfer_lower_bound(self) -> int:
        """Sound lower bound on the number of *transfer* stages (0 or 1).

        The ``+T`` certificate: on a shielded architecture whose rows
        outside the entangling band all lie on **one side** of it, some pair
        of qubits forces at least one transfer stage whenever their beam
        memberships cannot be nested.  The argument runs by refuting a
        transfer-free schedule:

        * With zero transfer stages every stage is a beam and every
          transition is an execution transition, so trap types are frozen
          (Eq. 15), SLM qubits never move (Eq. 16), and AOD qubits keep
          their column/row indices forever (Eq. 17).
        * A qubit with ``0 < load < R`` (``R`` = number of beams, at least
          :meth:`rydberg_lower_bound`) can then be neither an SLM qubit
          inside the band (shielding, Eq. 14, would force it busy in *every*
          beam) nor an SLM qubit outside (it could never execute, Eq. 12) —
          it sits in an AOD trap for the whole schedule.
        * Take two such qubits ``u``, ``v`` whose busy-sets are
          incomparable: some beam has ``u`` inside the band and ``v``
          shielded outside, another beam the converse.  With a single-sided
          outside region the geometric *vertical* order of ``u`` and ``v``
          flips between those beams, but Eq. 11's vertical counterpart ties
          the frozen AOD row indices to that order — contradiction.

        Busy-set incomparability is forced statically when, in **either**
        direction, the gates of one qubit cannot be injectively co-beamed
        with gates of the other (same gate, or vertex-disjoint — Eq. 13
        forbids sharing a beam otherwise): checked exactly with a tiny
        bipartite matching.
        """
        if not self.shielding:
            return 0
        e_min, e_max = self.architecture.entangling_rows
        below = e_min > 0
        above = e_max < self.architecture.y_max
        if below == above:
            # No outside region at all, or outside on both sides: a
            # transfer-free schedule cannot be refuted by the order argument.
            return 0
        rydberg = self.rydberg_lower_bound()
        load = self.gate_load()
        partial = [q for q in range(self.num_qubits) if 0 < load[q] < rydberg]
        gates_of = {q: [i for i, g in enumerate(self.gates) if q in g] for q in partial}
        for a_index, u in enumerate(partial):
            for v in partial[a_index + 1 :]:
                if not self._can_nest_busy_sets(
                    gates_of[u], gates_of[v]
                ) and not self._can_nest_busy_sets(gates_of[v], gates_of[u]):
                    return 1
        return 0

    def _can_nest_busy_sets(self, inner: list[int], outer: list[int]) -> bool:
        """Whether every beam of *inner*'s gates could also hold an *outer* gate.

        Exact feasibility of ``B(inner) ⊆ B(outer)``: each gate of *inner*
        needs its own distinct gate of *outer* sharing its beam — the same
        gate occurrence, or one with disjoint endpoints (gates sharing a
        qubit occupy different beams, Eq. 13).  Decided as a bipartite
        matching saturating *inner* (Kuhn's algorithm; the gate lists are
        tiny).
        """
        if len(inner) > len(outer):
            return False
        compatible: list[list[int]] = []
        for gi in inner:
            endpoints = set(self.gates[gi])
            compatible.append(
                [
                    slot
                    for slot, go in enumerate(outer)
                    if go == gi or not endpoints & set(self.gates[go])
                ]
            )
        matched_to: dict[int, int] = {}

        def assign(i: int, visited: set[int]) -> bool:
            for slot in compatible[i]:
                if slot in visited:
                    continue
                visited.add(slot)
                if slot not in matched_to or assign(matched_to[slot], visited):
                    matched_to[slot] = i
                    return True
            return False

        return all(assign(i, set()) for i in range(len(inner)))

    def lower_bound(self) -> int:
        """Sound analytic lower bound on the total stage count.

        The Rydberg-stage certificates (:meth:`rydberg_lower_bound`) always
        apply; shielded single-sided architectures may add the ``+T``
        transfer-stage certificate (:meth:`transfer_lower_bound`).  Both
        bound disjoint stage kinds of the same schedule, so their sum is a
        sound bound on the total stage count.
        """
        return self.rydberg_lower_bound() + self.transfer_lower_bound()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_qubits} qubits, {self.num_gates} CZ gates on "
            f"{self.architecture.name!r} "
            f"({'shielded' if self.shielding else 'unshielded'} idling), "
            f"stage lower bound {self.lower_bound()}"
        )
