"""The scheduling-problem intermediate representation.

:class:`SchedulingProblem` bundles everything a scheduling backend needs —
the CZ-gate list, the target architecture, and the effective shielding
policy — together with derived structure that every backend re-derived for
itself before this IR existed: per-qubit gate loads, the interaction graph,
and the architecture's zone capacities.  Both the exact
:class:`~repro.core.scheduler.SMTScheduler` and the constructive
:class:`~repro.core.structured.StructuredScheduler` consume a problem
instance instead of raw ``(circuit, architecture)`` pairs, and the search
strategies in :mod:`repro.core.strategies` read their analytic stage bounds
from it.

Analytic lower bound
--------------------

:meth:`SchedulingProblem.lower_bound` combines four certificates, each a
sound lower bound on the number of *Rydberg* stages (and therefore on the
total stage count):

* **per-qubit gate load** (``gate-load``) — gates sharing a qubit execute
  in distinct stages (Eq. 13), so a qubit touched by ``k`` gates forces
  ``k`` stages.  Counting gate multiplicity makes this at least the
  chromatic-index bound (max degree of the simple interaction graph) used
  by the seed scheduler.
* **site capacity** (``beam-capacity``) — a beam executes at most one gate
  per entangling-zone interaction site (both operands sit at the same
  site, Eq. 12, and sites are exclusive, Eq. 9).
* **AOD capacity** (also ``beam-capacity``) — every executed gate holds at
  least one operand in an AOD trap (two qubits at one site cannot both sit
  at the SLM centre, Eqs. 9/10), and two AOD qubits can share neither
  their column nor their row pair (Eq. 11 ties indices to geometric
  order), so a beam executes at most ``(Cmax+1) * (Rmax+1)`` gates.
* **clique certificate** (``clique``) — the gates within a clique ``Q`` of
  the interaction graph pairwise share vertices unless their endpoint
  pairs are disjoint *inside Q*, so the gates of one beam restricted to
  ``Q`` form a matching of at most ``⌊|Q|/2⌋`` gates (Eq. 13 again); with
  ``m`` gate occurrences inside ``Q`` that forces
  ``⌈m / ⌊|Q|/2⌋⌉`` beams.  On an odd clique with all edges present the
  certificate evaluates to ``|Q|`` — one more than the per-qubit load —
  because every beam must leave one clique member idle (this is the
  chromatic-index of odd complete graphs).  Cliques are enumerated
  exactly with pivoting Bron–Kerbosch; a greedy-colouring cutoff prunes
  branches that cannot beat the best certificate found so far.

On top of the Rydberg-stage certificates, shielded single-sided
architectures can earn a **+T transfer-stage certificate** (one extra stage
for the transfer the shielding choreography cannot avoid); see
:meth:`SchedulingProblem.transfer_lower_bound` for the soundness argument.

:meth:`SchedulingProblem.bound_breakdown` exposes every certificate with
its value and the winning *source* name, which the schedulers surface as
``SchedulerReport.lower_bound_source`` and the ``repro-nasp bounds`` CLI
prints as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.arch.architecture import ZonedArchitecture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.circuit.state_prep_circuit import StatePrepCircuit

Gate = tuple[int, int]


@dataclass(frozen=True)
class ZoneCapacities:
    """Site/trap capacities of an architecture, derived once per problem."""

    #: Interaction sites inside the entangling zone (max gates per beam).
    entangling_sites: int
    #: SLM sites inside storage zones (shielded parking spots).
    storage_sites: int
    #: Distinct (column, row) AOD index pairs (max airborne qubits).
    aod_traps: int
    #: AOD columns available for pick-ups.
    aod_columns: int
    #: AOD rows available for pick-ups.
    aod_rows: int

    @classmethod
    def of(cls, architecture: ZonedArchitecture) -> "ZoneCapacities":
        """Compute the capacities of *architecture*."""
        e_min, e_max = architecture.entangling_rows
        columns = architecture.x_max + 1
        return cls(
            entangling_sites=(e_max - e_min + 1) * columns,
            storage_sites=len(architecture.storage_rows()) * columns,
            aod_traps=architecture.num_aod_columns * architecture.num_aod_rows,
            aod_columns=architecture.num_aod_columns,
            aod_rows=architecture.num_aod_rows,
        )


@dataclass(frozen=True)
class BoundBreakdown:
    """Full provenance of the analytic stage lower bound.

    ``certificates`` lists every Rydberg-stage certificate with its value in
    a fixed order; ``rydberg_source`` names the first certificate attaining
    the maximum, and ``source`` appends ``"+transfer"`` when the ``+T``
    transfer certificate fires.  ``clique`` is the witness vertex set of the
    clique certificate (empty when the graph has no edge).
    """

    certificates: tuple[tuple[str, int], ...]
    rydberg: int
    rydberg_source: str
    transfer: int
    total: int
    source: str
    clique: tuple[int, ...]

    def certificate(self, name: str) -> int:
        """Value of the certificate registered under *name*."""
        return dict(self.certificates)[name]

    def to_dict(self) -> dict:
        """JSON-compatible representation (used by the ``bounds`` CLI)."""
        return {
            "certificates": dict(self.certificates),
            "rydberg": self.rydberg,
            "rydberg_source": self.rydberg_source,
            "transfer": self.transfer,
            "total": self.total,
            "source": self.source,
            "clique": list(self.clique),
        }


@dataclass(frozen=True)
class SchedulingProblem:
    """One scheduling instance: circuit + architecture + derived structure.

    Construct through :meth:`from_gates` or :meth:`from_circuit`, which
    validate and canonicalise the gate list; the raw constructor performs no
    normalisation.
    """

    architecture: ZonedArchitecture
    num_qubits: int
    gates: tuple[Gate, ...]
    #: Whether idle qubits must leave the entangling zone during beams
    #: (Eq. 14).  Defaults to "the architecture has a storage zone".
    shielding: bool
    #: Free-form provenance (code name, circuit label, ...).
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_gates(
        cls,
        architecture: ZonedArchitecture,
        num_qubits: int,
        cz_gates: Sequence[Gate],
        shielding: bool | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> "SchedulingProblem":
        """Build a problem from a raw CZ-gate list.

        Gate endpoints are sorted; invalid gates (identical operands or
        out-of-range qubits) raise ``ValueError``.  Duplicate gates are
        preserved — each occurrence is scheduled separately, exactly as the
        backends treated them before this IR existed.
        """
        if num_qubits <= 0:
            raise ValueError("a problem needs at least one qubit")
        normalised = []
        for a, b in cz_gates:
            low, high = (a, b) if a <= b else (b, a)
            if low == high or low < 0 or high >= num_qubits:
                raise ValueError(f"invalid CZ gate ({a}, {b})")
            normalised.append((low, high))
        if shielding is None:
            shielding = architecture.has_storage
        return cls(
            architecture=architecture,
            num_qubits=num_qubits,
            gates=tuple(normalised),
            shielding=bool(shielding),
            metadata=dict(metadata or {}),
        )

    @classmethod
    def from_circuit(
        cls,
        architecture: ZonedArchitecture,
        circuit: "StatePrepCircuit",
        shielding: bool | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> "SchedulingProblem":
        """Build a problem from a state-preparation circuit."""
        merged = {"circuit": circuit.name, **(metadata or {})}
        return cls.from_gates(
            architecture,
            circuit.num_qubits,
            circuit.cz_gates,
            shielding=shielding,
            metadata=merged,
        )

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    @property
    def num_gates(self) -> int:
        """Number of CZ gates (counting duplicates)."""
        return len(self.gates)

    def gate_load(self) -> list[int]:
        """Per-qubit gate count (multiplicity included)."""
        load = [0] * self.num_qubits
        for a, b in self.gates:
            load[a] += 1
            load[b] += 1
        return load

    def max_gate_load(self) -> int:
        """The heaviest qubit's gate count — a stage lower bound (Eq. 13)."""
        return max(self.gate_load(), default=0)

    def interaction_graph(self) -> dict[int, set[int]]:
        """Adjacency sets of the (simple) interaction graph."""
        adjacency: dict[int, set[int]] = {q: set() for q in range(self.num_qubits)}
        for a, b in self.gates:
            adjacency[a].add(b)
            adjacency[b].add(a)
        return adjacency

    def interacting_qubits(self) -> list[int]:
        """Qubits that participate in at least one gate."""
        return [q for q, load in enumerate(self.gate_load()) if load > 0]

    def zone_capacities(self) -> ZoneCapacities:
        """Capacities of the target architecture."""
        return ZoneCapacities.of(self.architecture)

    # ------------------------------------------------------------------ #
    # Analytic stage bounds
    # ------------------------------------------------------------------ #
    def rydberg_lower_bound(self) -> int:
        """Sound analytic lower bound on the number of Rydberg stages.

        See the module docstring for why each certificate is sound against
        the SMT formulation; :meth:`bound_breakdown` exposes the individual
        certificates with provenance.
        """
        return max(value for _, value in self._rydberg_certificates())

    def _rydberg_certificates(
        self, clique_bound: int | None = None
    ) -> tuple[tuple[str, int], ...]:
        """Every Rydberg-stage certificate as ``(name, value)`` pairs.

        The order doubles as the tie-break priority for the reported
        *source*: the simplest certificate attaining the maximum wins.
        *clique_bound* short-circuits the clique enumeration when the
        caller already computed it (:meth:`bound_breakdown`).
        """
        if clique_bound is None:
            clique_bound = self.clique_lower_bound()
        capacities = self.zone_capacities()
        gates_per_beam = min(capacities.entangling_sites, capacities.aod_traps)
        beam_capacity = 0
        if self.num_gates and gates_per_beam:
            beam_capacity = -(-self.num_gates // gates_per_beam)
        return (
            ("gate-load", self.max_gate_load()),
            ("beam-capacity", beam_capacity),
            ("clique", clique_bound),
            ("trivial", 1),
        )

    # ------------------------------------------------------------------ #
    # Clique certificate
    # ------------------------------------------------------------------ #
    def interaction_cliques(self) -> list[tuple[int, ...]]:
        """All maximal cliques of the interaction graph (sorted tuples).

        Enumerated with pivoting Bron–Kerbosch; the graphs are tiny (one
        vertex per interacting qubit), so exact enumeration is cheap.
        Isolated qubits are not reported.
        """
        adjacency = {
            q: neighbours
            for q, neighbours in self.interaction_graph().items()
            if neighbours
        }
        return sorted(tuple(sorted(c)) for c in _bron_kerbosch(adjacency))

    def clique_lower_bound(self) -> int:
        """Best clique-certificate bound on the number of Rydberg stages."""
        return self._clique_certificate()[0]

    def _clique_certificate(self) -> tuple[int, tuple[int, ...]]:
        """``(bound, witness)`` of the strongest clique certificate.

        For a clique ``Q`` with ``m`` gate occurrences inside it, the gates
        of one beam restricted to ``Q`` are vertex-disjoint (Eq. 13) and
        therefore a matching of at most ``⌊|Q|/2⌋`` gates, so at least
        ``⌈m / ⌊|Q|/2⌋⌉`` beams are needed.  Sub-cliques can beat their
        maximal superset (dropping a lightly-loaded vertex shrinks the
        matching capacity faster than the gate count), so every maximal
        clique is scored over its subsets.  A greedy-colouring cutoff
        prunes Bron–Kerbosch branches whose optimistic score — maximum
        edge multiplicity times the colouring bound on the reachable
        clique size — cannot beat the best certificate found so far.
        """
        multiplicity: dict[tuple[int, int], int] = {}
        for gate in self.gates:
            multiplicity[gate] = multiplicity.get(gate, 0) + 1
        if not multiplicity:
            return (0, ())
        adjacency = {
            q: neighbours
            for q, neighbours in self.interaction_graph().items()
            if neighbours
        }
        max_multiplicity = max(multiplicity.values())
        best_bound = 0
        best_witness: tuple[int, ...] = ()
        for clique in _bron_kerbosch(
            adjacency,
            cutoff=lambda reached, candidates: max_multiplicity
            * (reached + _greedy_colouring_count(candidates, adjacency))
            <= best_bound,
        ):
            bound, witness = _best_subclique(tuple(sorted(clique)), multiplicity)
            if bound > best_bound or (bound == best_bound and witness < best_witness):
                best_bound, best_witness = bound, witness
        return (best_bound, best_witness)

    # ------------------------------------------------------------------ #
    # Bound provenance
    # ------------------------------------------------------------------ #
    def bound_breakdown(self) -> BoundBreakdown:
        """Every analytic certificate with its value and the winning source.

        The total equals :meth:`lower_bound`; strategies surface the
        ``source`` string as ``SchedulerReport.lower_bound_source`` and the
        ``repro-nasp bounds`` CLI prints the full table.
        """
        clique_bound, clique_witness = self._clique_certificate()
        certificates = self._rydberg_certificates(clique_bound)
        rydberg = max(value for _, value in certificates)
        rydberg_source = next(
            name for name, value in certificates if value == rydberg
        )
        transfer = self.transfer_lower_bound(rydberg)
        source = rydberg_source + ("+transfer" if transfer else "")
        return BoundBreakdown(
            certificates=certificates,
            rydberg=rydberg,
            rydberg_source=rydberg_source,
            transfer=transfer,
            total=rydberg + transfer,
            source=source,
            clique=clique_witness,
        )

    def transfer_lower_bound(self, rydberg_bound: int | None = None) -> int:
        """Sound lower bound on the number of *transfer* stages (0 or 1).

        *rydberg_bound* short-circuits recomputing
        :meth:`rydberg_lower_bound` when the caller already holds it.

        The ``+T`` certificate: on a shielded architecture whose rows
        outside the entangling band all lie on **one side** of it, some pair
        of qubits forces at least one transfer stage whenever their beam
        memberships cannot be nested.  The argument runs by refuting a
        transfer-free schedule:

        * With zero transfer stages every stage is a beam and every
          transition is an execution transition, so trap types are frozen
          (Eq. 15), SLM qubits never move (Eq. 16), and AOD qubits keep
          their column/row indices forever (Eq. 17).
        * A qubit with ``0 < load < R`` (``R`` = number of beams, at least
          :meth:`rydberg_lower_bound`) can then be neither an SLM qubit
          inside the band (shielding, Eq. 14, would force it busy in *every*
          beam) nor an SLM qubit outside (it could never execute, Eq. 12) —
          it sits in an AOD trap for the whole schedule.
        * Take two such qubits ``u``, ``v`` whose busy-sets are
          incomparable: some beam has ``u`` inside the band and ``v``
          shielded outside, another beam the converse.  With a single-sided
          outside region the geometric *vertical* order of ``u`` and ``v``
          flips between those beams, but Eq. 11's vertical counterpart ties
          the frozen AOD row indices to that order — contradiction.

        Busy-set incomparability is forced statically when, in **either**
        direction, the gates of one qubit cannot be injectively co-beamed
        with gates of the other (same gate, or vertex-disjoint — Eq. 13
        forbids sharing a beam otherwise): checked exactly with a tiny
        bipartite matching.
        """
        if not self.shielding:
            return 0
        e_min, e_max = self.architecture.entangling_rows
        below = e_min > 0
        above = e_max < self.architecture.y_max
        if below == above:
            # No outside region at all, or outside on both sides: a
            # transfer-free schedule cannot be refuted by the order argument.
            return 0
        rydberg = (
            self.rydberg_lower_bound() if rydberg_bound is None else rydberg_bound
        )
        load = self.gate_load()
        partial = [q for q in range(self.num_qubits) if 0 < load[q] < rydberg]
        gates_of = {q: [i for i, g in enumerate(self.gates) if q in g] for q in partial}
        for a_index, u in enumerate(partial):
            for v in partial[a_index + 1 :]:
                if not self._can_nest_busy_sets(
                    gates_of[u], gates_of[v]
                ) and not self._can_nest_busy_sets(gates_of[v], gates_of[u]):
                    return 1
        return 0

    def _can_nest_busy_sets(self, inner: list[int], outer: list[int]) -> bool:
        """Whether every beam of *inner*'s gates could also hold an *outer* gate.

        Exact feasibility of ``B(inner) ⊆ B(outer)``: each gate of *inner*
        needs its own distinct gate of *outer* sharing its beam — the same
        gate occurrence, or one with disjoint endpoints (gates sharing a
        qubit occupy different beams, Eq. 13).  Decided as a bipartite
        matching saturating *inner* (Kuhn's algorithm; the gate lists are
        tiny).
        """
        if len(inner) > len(outer):
            return False
        compatible: list[list[int]] = []
        for gi in inner:
            endpoints = set(self.gates[gi])
            compatible.append(
                [
                    slot
                    for slot, go in enumerate(outer)
                    if go == gi or not endpoints & set(self.gates[go])
                ]
            )
        matched_to: dict[int, int] = {}

        def assign(i: int, visited: set[int]) -> bool:
            for slot in compatible[i]:
                if slot in visited:
                    continue
                visited.add(slot)
                if slot not in matched_to or assign(matched_to[slot], visited):
                    matched_to[slot] = i
                    return True
            return False

        return all(assign(i, set()) for i in range(len(inner)))

    def lower_bound(self) -> int:
        """Sound analytic lower bound on the total stage count.

        The Rydberg-stage certificates (:meth:`rydberg_lower_bound`) always
        apply; shielded single-sided architectures may add the ``+T``
        transfer-stage certificate (:meth:`transfer_lower_bound`).  Both
        bound disjoint stage kinds of the same schedule, so their sum is a
        sound bound on the total stage count.
        """
        rydberg = self.rydberg_lower_bound()
        return rydberg + self.transfer_lower_bound(rydberg)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_qubits} qubits, {self.num_gates} CZ gates on "
            f"{self.architecture.name!r} "
            f"({'shielded' if self.shielding else 'unshielded'} idling), "
            f"stage lower bound {self.lower_bound()}"
        )


# --------------------------------------------------------------------------- #
# Clique enumeration (module-level: pure graph algorithms, no problem state)
# --------------------------------------------------------------------------- #
def _bron_kerbosch(
    adjacency: Mapping[int, set[int]],
    cutoff=None,
) -> Iterator[tuple[int, ...]]:
    """Enumerate maximal cliques with pivoting Bron–Kerbosch.

    *cutoff* is an optional pruning predicate ``(reached, candidates) ->
    bool`` receiving the current clique size and the open candidate set;
    a True return abandons the branch (used by the clique certificate to
    skip branches that cannot beat the best bound found so far).
    """

    def expand(
        clique: list[int], candidates: set[int], excluded: set[int]
    ) -> Iterator[tuple[int, ...]]:
        if cutoff is not None and cutoff(len(clique), candidates):
            return
        if not candidates and not excluded:
            if clique:
                yield tuple(clique)
            return
        pivot = max(
            candidates | excluded, key=lambda v: len(adjacency[v] & candidates)
        )
        for vertex in sorted(candidates - adjacency[pivot]):
            yield from expand(
                clique + [vertex],
                candidates & adjacency[vertex],
                excluded & adjacency[vertex],
            )
            candidates = candidates - {vertex}
            excluded = excluded | {vertex}

    yield from expand([], set(adjacency), set())


def _greedy_colouring_count(
    vertices: set[int], adjacency: Mapping[int, set[int]]
) -> int:
    """Number of colours a greedy colouring uses on the induced subgraph.

    Any proper colouring bounds the clique number of the subgraph, so
    ``reached + colours(candidates)`` bounds the size of every clique still
    reachable from a Bron–Kerbosch branch.
    """
    colours: dict[int, int] = {}
    count = 0
    for vertex in sorted(vertices):
        used = {
            colours[u] for u in adjacency[vertex] & vertices if u in colours
        }
        colour = next(c for c in range(len(colours) + 1) if c not in used)
        colours[vertex] = colour
        count = max(count, colour + 1)
    return count


def _best_subclique(
    clique: tuple[int, ...], multiplicity: Mapping[tuple[int, int], int]
) -> tuple[int, tuple[int, ...]]:
    """Strongest matching bound over the sub-cliques of a maximal clique.

    A sub-clique can beat its maximal superset: dropping a vertex from an
    even clique shrinks the per-beam matching capacity ``⌊|Q|/2⌋`` while
    most gate occurrences remain (the odd-clique effect).  Sub-cliques are
    enumerated exhaustively for the tiny cliques of real instances; beyond
    12 vertices only the full clique and its even-to-odd trim are scored.
    """
    if len(clique) > 12:  # pragma: no cover - instances never get this big
        candidates = [clique]
        if len(clique) % 2 == 0:
            candidates.append(clique[:-1])
    else:
        candidates = [
            subset
            for size in range(2, len(clique) + 1)
            for subset in combinations(clique, size)
        ]
    best: tuple[int, tuple[int, ...]] = (0, ())
    for subset in candidates:
        gate_count = sum(
            multiplicity.get(pair, 0) for pair in combinations(subset, 2)
        )
        if not gate_count:
            continue
        bound = -(-gate_count // (len(subset) // 2))
        if bound > best[0]:
            best = (bound, tuple(subset))
    return best
