"""Independent schedule validation.

The validator re-checks every architectural rule of Sec. IV-B on a concrete
:class:`~repro.core.schedule.Schedule` without involving any solver.  It is
used (a) as a safety net behind the SMT model extraction, (b) to certify the
structured scheduler's output, and (c) in the test suite as the ground truth
for what "physically feasible" means.

Checks performed
----------------
* placements lie within the architecture bounds (V1),
* no two qubits share a trap position; SLM qubits sit at site centres (C1),
* AOD column/row indices are consistent with the geometric order (C2),
* every target CZ gate is executed exactly once, in the entangling zone,
  with its operands adjacent (C3 / Eq. 12-13),
* idle qubits are shielded during Rydberg beams on architectures with a
  storage zone, or sufficiently separated otherwise (Eq. 14 / footnote 2),
* no unintended pair of qubits is close enough to interact during a beam,
* execution stages preserve trap type, SLM positions and AOD indices (C4),
* transfer stages only store qubits that sit at a site centre, keep
  SLM-bound qubits in place, store along whole AOD lines, and preserve the
  relative AOD order of loaded/remaining qubits (C5, C6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import Schedule, Stage


class ValidationError(Exception):
    """Raised by :func:`validate_schedule` when a schedule is invalid."""


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.errors

    def add(self, message: str) -> None:
        """Record one violation."""
        self.errors.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` listing all violations."""
        if self.errors:
            summary = "\n  - ".join(self.errors[:20])
            more = "" if len(self.errors) <= 20 else f"\n  ... and {len(self.errors) - 20} more"
            raise ValidationError(f"invalid schedule:\n  - {summary}{more}")


def validate_schedule(
    schedule: Schedule,
    require_shielding: bool | None = None,
    raise_on_error: bool = True,
) -> ValidationReport:
    """Validate *schedule* against the architecture rules.

    Parameters
    ----------
    require_shielding:
        When True, idle qubits must be outside the entangling zone during
        every Rydberg beam (Eq. 14).  Defaults to "architecture has a
        storage zone", matching the paper's treatment of Layout 1.
    raise_on_error:
        Raise a :class:`ValidationError` (default) instead of returning a
        failing report.
    """
    report = ValidationReport()
    arch = schedule.architecture
    if require_shielding is None:
        require_shielding = arch.has_storage

    if not schedule.stages:
        report.add("schedule has no stages")
    for index, stage in enumerate(schedule.stages):
        _check_placement_bounds(schedule, index, report)
        _check_exclusive_positions(schedule, index, report)
        _check_aod_order(schedule, index, report)
        if stage.is_execution:
            _check_execution_stage(schedule, index, require_shielding, report)
        else:
            _check_transfer_stage_markers(schedule, index, report)
        if index < len(schedule.stages) - 1:
            _check_stage_transition(schedule, index, report)
    _check_gate_coverage(schedule, report)

    if raise_on_error:
        report.raise_if_failed()
    return report


# --------------------------------------------------------------------------- #
# Per-stage checks
# --------------------------------------------------------------------------- #
def _check_placement_bounds(schedule: Schedule, index: int, report: ValidationReport) -> None:
    arch = schedule.architecture
    stage = schedule.stages[index]
    missing = set(range(schedule.num_qubits)) - set(stage.placements)
    if missing:
        report.add(f"stage {index}: missing placements for qubits {sorted(missing)}")
    for qubit, placement in stage.placements.items():
        if not arch.contains(placement.position):
            report.add(
                f"stage {index}: qubit {qubit} at {placement.position} is outside the architecture"
            )
        if placement.in_aod:
            if placement.column is None or placement.row is None:
                report.add(f"stage {index}: AOD qubit {qubit} lacks column/row indices")
            else:
                if not 0 <= placement.column <= arch.c_max:
                    report.add(
                        f"stage {index}: qubit {qubit} uses AOD column {placement.column} > Cmax"
                    )
                if not 0 <= placement.row <= arch.r_max:
                    report.add(
                        f"stage {index}: qubit {qubit} uses AOD row {placement.row} > Rmax"
                    )
        else:
            if placement.h != 0 or placement.v != 0:
                report.add(
                    f"stage {index}: SLM qubit {qubit} has non-zero offset "
                    f"({placement.h}, {placement.v})"
                )


def _check_exclusive_positions(schedule: Schedule, index: int, report: ValidationReport) -> None:
    stage = schedule.stages[index]
    seen: dict[tuple[int, int, int, int], int] = {}
    for qubit, placement in stage.placements.items():
        key = (placement.x, placement.y, placement.h, placement.v)
        if key in seen:
            report.add(
                f"stage {index}: qubits {seen[key]} and {qubit} share position {key}"
            )
        seen[key] = qubit


def _check_aod_order(schedule: Schedule, index: int, report: ValidationReport) -> None:
    stage = schedule.stages[index]
    aod = [(q, p) for q, p in stage.placements.items() if p.in_aod]
    for i, (qa, pa) in enumerate(aod):
        for qb, pb in aod[i + 1 :]:
            if pa.column is None or pb.column is None:
                continue
            horizontal_a = (pa.x, pa.h)
            horizontal_b = (pb.x, pb.h)
            if (pa.column < pb.column) != (horizontal_a < horizontal_b) and (
                horizontal_a != horizontal_b
            ):
                report.add(
                    f"stage {index}: AOD column order of qubits {qa}/{qb} contradicts "
                    f"their horizontal positions"
                )
            if pa.column == pb.column and horizontal_a != horizontal_b:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} share AOD column {pa.column} but "
                    f"sit at different horizontal positions"
                )
            if horizontal_a == horizontal_b and pa.column != pb.column:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} share horizontal position but "
                    f"use different AOD columns"
                )
            vertical_a = (pa.y, pa.v)
            vertical_b = (pb.y, pb.v)
            if (pa.row < pb.row) != (vertical_a < vertical_b) and vertical_a != vertical_b:
                report.add(
                    f"stage {index}: AOD row order of qubits {qa}/{qb} contradicts "
                    f"their vertical positions"
                )
            if pa.row == pb.row and vertical_a != vertical_b:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} share AOD row {pa.row} but sit at "
                    f"different vertical positions"
                )
            if vertical_a == vertical_b and pa.row != pb.row:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} share vertical position but use "
                    f"different AOD rows"
                )


def _check_execution_stage(
    schedule: Schedule, index: int, require_shielding: bool, report: ValidationReport
) -> None:
    arch = schedule.architecture
    stage = schedule.stages[index]
    radius = arch.interaction_radius
    busy: set[int] = set()
    for a, b in stage.gates:
        if a in busy or b in busy:
            report.add(f"stage {index}: qubit appears in two gates of the same beam")
        busy.update((a, b))
        pa, pb = stage.placements[a], stage.placements[b]
        if pa.site != pb.site:
            report.add(f"stage {index}: gate ({a},{b}) operands are at different sites")
        if abs(pa.h - pb.h) >= radius or abs(pa.v - pb.v) >= radius:
            report.add(f"stage {index}: gate ({a},{b}) operands are not within the blockade radius")
        for qubit, placement in ((a, pa), (b, pb)):
            if not arch.in_entangling_zone(placement.y):
                report.add(
                    f"stage {index}: gate qubit {qubit} lies outside the entangling zone"
                )
    # Unintended interactions: any two qubits at the same site within the
    # blockade radius *inside the entangling zone* must be a scheduled gate
    # of this stage (the Rydberg beam does not reach the storage zones).
    scheduled = {tuple(sorted(gate)) for gate in stage.gates}
    qubits = sorted(stage.placements)
    for i, qa in enumerate(qubits):
        pa = stage.placements[qa]
        if not arch.in_entangling_zone(pa.y):
            continue
        for qb in qubits[i + 1 :]:
            pb = stage.placements[qb]
            if pa.site != pb.site:
                continue
            if abs(pa.h - pb.h) < radius and abs(pa.v - pb.v) < radius:
                if (qa, qb) not in scheduled:
                    report.add(
                        f"stage {index}: qubits {qa}/{qb} would interact but no gate is scheduled"
                    )
    # Shielding of idle qubits (Eq. 14) or separation (footnote 2).
    for qubit in schedule.idle_qubits(index):
        placement = stage.placements[qubit]
        if arch.in_entangling_zone(placement.y) and require_shielding:
            report.add(
                f"stage {index}: idle qubit {qubit} is unshielded inside the entangling zone"
            )


def _check_transfer_stage_markers(
    schedule: Schedule, index: int, report: ValidationReport
) -> None:
    stage = schedule.stages[index]
    if index >= len(schedule.stages) - 1:
        if stage.stored_qubits or stage.loaded_qubits:
            report.add(f"stage {index}: trailing transfer stage has no successor to transfer into")
        return
    following = schedule.stages[index + 1]
    actual_stored = sorted(
        q
        for q, placement in stage.placements.items()
        if placement.in_aod and not following.placements[q].in_aod
    )
    actual_loaded = sorted(
        q
        for q, placement in stage.placements.items()
        if not placement.in_aod and following.placements[q].in_aod
    )
    if sorted(stage.stored_qubits) != actual_stored:
        report.add(
            f"stage {index}: recorded stored qubits {sorted(stage.stored_qubits)} do not match "
            f"the trap-type changes {actual_stored}"
        )
    if sorted(stage.loaded_qubits) != actual_loaded:
        report.add(
            f"stage {index}: recorded loaded qubits {sorted(stage.loaded_qubits)} do not match "
            f"the trap-type changes {actual_loaded}"
        )


# --------------------------------------------------------------------------- #
# Transition checks (constraints relating stage t and t+1)
# --------------------------------------------------------------------------- #
def _check_stage_transition(schedule: Schedule, index: int, report: ValidationReport) -> None:
    stage = schedule.stages[index]
    following = schedule.stages[index + 1]
    if stage.is_execution:
        _check_execution_transition(schedule, index, stage, following, report)
    else:
        _check_transfer_transition(schedule, index, stage, following, report)


def _check_execution_transition(
    schedule: Schedule,
    index: int,
    stage: Stage,
    following: Stage,
    report: ValidationReport,
) -> None:
    for qubit, placement in stage.placements.items():
        next_placement = following.placements[qubit]
        if placement.in_aod != next_placement.in_aod:
            report.add(
                f"stage {index}: qubit {qubit} changes trap type during an execution stage"
            )
        if not placement.in_aod:
            if placement.site != next_placement.site:
                report.add(
                    f"stage {index}: SLM qubit {qubit} moves during an execution stage"
                )
        else:
            if placement.column != next_placement.column or placement.row != next_placement.row:
                report.add(
                    f"stage {index}: AOD qubit {qubit} changes column/row during an execution stage"
                )


def _check_transfer_transition(
    schedule: Schedule,
    index: int,
    stage: Stage,
    following: Stage,
    report: ValidationReport,
) -> None:
    # Eq. 18/19: qubits ending up in SLM were at a site centre and stay put.
    for qubit, placement in stage.placements.items():
        next_placement = following.placements[qubit]
        if not next_placement.in_aod:
            if placement.h != 0 or placement.v != 0:
                report.add(
                    f"stage {index}: qubit {qubit} is stored away from a site centre"
                )
            if placement.site != next_placement.site:
                report.add(
                    f"stage {index}: SLM-bound qubit {qubit} moves during a transfer stage"
                )
    # Eq. 20: stores happen along whole AOD lines.  There must exist a set of
    # flagged columns/rows covering exactly the stored qubits: a column (row)
    # may be flagged only if every AOD qubit on it is stored, and every stored
    # qubit must be covered by a flaggable column or row.
    stored = {
        q
        for q, placement in stage.placements.items()
        if placement.in_aod and not following.placements[q].in_aod
    }
    aod_now = {q: p for q, p in stage.placements.items() if p.in_aod}
    flaggable_columns = {
        column
        for column in {p.column for p in aod_now.values()}
        if all(q in stored for q, p in aod_now.items() if p.column == column)
    }
    flaggable_rows = {
        row
        for row in {p.row for p in aod_now.values()}
        if all(q in stored for q, p in aod_now.items() if p.row == row)
    }
    for qubit in stored:
        placement = stage.placements[qubit]
        if placement.column not in flaggable_columns and placement.row not in flaggable_rows:
            report.add(
                f"stage {index}: qubit {qubit} cannot be stored without also storing other "
                f"qubits on its AOD column and row"
            )
    # Eq. 21 (+ vertical counterpart): relative order of AOD qubits at t+1
    # must match their geometric order at t.
    aod_next = [
        (q, stage.placements[q], following.placements[q])
        for q in stage.placements
        if following.placements[q].in_aod
    ]
    for i, (qa, pa_now, pa_next) in enumerate(aod_next):
        for qb, pb_now, pb_next in aod_next[i + 1 :]:
            horizontal_a = (pa_now.x, pa_now.h)
            horizontal_b = (pb_now.x, pb_now.h)
            if horizontal_a != horizontal_b:
                if (horizontal_a < horizontal_b) != (pa_next.column < pb_next.column):
                    report.add(
                        f"stage {index}: loading/shuttling would swap the horizontal order of "
                        f"qubits {qa} and {qb}"
                    )
            elif pa_next.column != pb_next.column:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} start at the same horizontal position but "
                    f"are assigned different AOD columns"
                )
            vertical_a = (pa_now.y, pa_now.v)
            vertical_b = (pb_now.y, pb_now.v)
            if vertical_a != vertical_b:
                if (vertical_a < vertical_b) != (pa_next.row < pb_next.row):
                    report.add(
                        f"stage {index}: loading/shuttling would swap the vertical order of "
                        f"qubits {qa} and {qb}"
                    )
            elif pa_next.row != pb_next.row:
                report.add(
                    f"stage {index}: qubits {qa}/{qb} start at the same vertical position but "
                    f"are assigned different AOD rows"
                )


# --------------------------------------------------------------------------- #
# Whole-schedule checks
# --------------------------------------------------------------------------- #
def _check_gate_coverage(schedule: Schedule, report: ValidationReport) -> None:
    executed = [tuple(sorted(gate)) for gate in schedule.executed_gates]
    target = [tuple(sorted(gate)) for gate in schedule.target_gates]
    if sorted(executed) != sorted(target):
        missing = set(target) - set(executed)
        extra = set(executed) - set(target)
        duplicated = {gate for gate in executed if executed.count(gate) > 1}
        if missing:
            report.add(f"gates never executed: {sorted(missing)}")
        if extra:
            report.add(f"unexpected gates executed: {sorted(extra)}")
        if duplicated:
            report.add(f"gates executed more than once: {sorted(duplicated)}")
        under_executed = {
            gate for gate in set(target) if executed.count(gate) < target.count(gate)
        }
        if under_executed and not missing:
            report.add(
                f"gates executed fewer times than requested: {sorted(under_executed)}"
            )
