"""Schedule data model.

A schedule is a sequence of *stages* (Sec. IV-A of the paper).  Each stage
records the placement of every qubit at the *beginning* of the stage:

* an **execution stage** starts with a Rydberg beam executing the recorded
  CZ gates, followed by shuttling into the next stage's placement;
* a **transfer stage** starts with trap transfers (stores, then loads),
  followed by shuttling into the next stage's placement.

The placement of a qubit consists of its interaction site ``(x, y)``, the
offsets ``(h, v)`` within the site, whether it currently sits in an AOD trap
and — if so — its AOD column and row indices.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.arch.architecture import Position, ZonedArchitecture


class StageKind(enum.Enum):
    """The two stage kinds of the paper's model."""

    RYDBERG = "rydberg"
    TRANSFER = "transfer"


@dataclass(frozen=True)
class QubitPlacement:
    """Placement of one qubit at the beginning of a stage."""

    x: int
    y: int
    h: int = 0
    v: int = 0
    in_aod: bool = False
    column: int | None = None
    row: int | None = None

    def __post_init__(self) -> None:
        if self.in_aod and (self.column is None or self.row is None):
            raise ValueError("AOD qubits need a column and a row index")

    @property
    def position(self) -> Position:
        """The discrete position of the placement."""
        return Position(self.x, self.y, self.h, self.v)

    @property
    def site(self) -> tuple[int, int]:
        """The interaction-site coordinates."""
        return (self.x, self.y)

    def moved_to(self, **changes) -> "QubitPlacement":
        """Return a copy with the given fields replaced."""
        data = {
            "x": self.x,
            "y": self.y,
            "h": self.h,
            "v": self.v,
            "in_aod": self.in_aod,
            "column": self.column,
            "row": self.row,
        }
        data.update(changes)
        return QubitPlacement(**data)


@dataclass
class Stage:
    """One stage of a schedule."""

    kind: StageKind
    placements: dict[int, QubitPlacement]
    #: CZ gates executed by the Rydberg beam (execution stages only).
    gates: list[tuple[int, int]] = field(default_factory=list)
    #: Qubits transferred AOD -> SLM at the start of this stage.
    stored_qubits: list[int] = field(default_factory=list)
    #: Qubits transferred SLM -> AOD at the start of this stage.
    loaded_qubits: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind is StageKind.RYDBERG and (self.stored_qubits or self.loaded_qubits):
            raise ValueError("execution stages cannot perform trap transfers")
        if self.kind is StageKind.TRANSFER and self.gates:
            raise ValueError("transfer stages cannot execute gates")
        self.gates = [(min(a, b), max(a, b)) for a, b in self.gates]

    @property
    def is_execution(self) -> bool:
        """True for Rydberg (execution) stages."""
        return self.kind is StageKind.RYDBERG

    @property
    def num_transfer_operations(self) -> int:
        """Number of individual load/store operations in this stage."""
        return len(self.stored_qubits) + len(self.loaded_qubits)


@dataclass
class Schedule:
    """A complete schedule for one state-preparation circuit."""

    architecture: ZonedArchitecture
    num_qubits: int
    stages: list[Stage]
    #: The CZ gates the schedule is supposed to implement.
    target_gates: list[tuple[int, int]] = field(default_factory=list)
    #: Optional provenance (backend name, code name, ...).
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.target_gates = [(min(a, b), max(a, b)) for a, b in self.target_gates]

    # ------------------------------------------------------------------ #
    # Summary quantities (the columns of Table I)
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        """Total number of stages S."""
        return len(self.stages)

    @property
    def num_rydberg_stages(self) -> int:
        """#R: number of Rydberg (execution) stages."""
        return sum(1 for stage in self.stages if stage.is_execution)

    @property
    def num_transfer_stages(self) -> int:
        """#T: number of transfer stages."""
        return sum(1 for stage in self.stages if not stage.is_execution)

    @property
    def num_transfer_operations(self) -> int:
        """Total number of individual load/store operations."""
        return sum(stage.num_transfer_operations for stage in self.stages)

    @property
    def executed_gates(self) -> list[tuple[int, int]]:
        """All CZ gates executed, in schedule order."""
        gates: list[tuple[int, int]] = []
        for stage in self.stages:
            gates.extend(stage.gates)
        return gates

    # ------------------------------------------------------------------ #
    # Queries used by the metrics and the validator
    # ------------------------------------------------------------------ #
    def placement(self, stage_index: int, qubit: int) -> QubitPlacement:
        """Placement of *qubit* at the beginning of stage *stage_index*."""
        return self.stages[stage_index].placements[qubit]

    def shuttling_distance_um(self, stage_index: int) -> float:
        """Maximum distance moved by any qubit between this stage and the next.

        AOD moves happen in parallel, so the stage's shuttling time is
        governed by the longest single-qubit move.
        """
        if stage_index >= len(self.stages) - 1:
            return 0.0
        current = self.stages[stage_index]
        following = self.stages[stage_index + 1]
        longest = 0.0
        for qubit, placement in current.placements.items():
            next_placement = following.placements[qubit]
            distance = self.architecture.distance_um(
                placement.position, next_placement.position
            )
            longest = max(longest, distance)
        return longest

    def idle_qubits(self, stage_index: int) -> list[int]:
        """Qubits not participating in a gate at the given execution stage."""
        stage = self.stages[stage_index]
        busy = {q for gate in stage.gates for q in gate}
        return [q for q in range(self.num_qubits) if q not in busy]

    def unshielded_idle_count(self, stage_index: int) -> int:
        """Idle qubits sitting inside the entangling zone during a beam."""
        stage = self.stages[stage_index]
        if not stage.is_execution:
            return 0
        count = 0
        for qubit in self.idle_qubits(stage_index):
            if self.architecture.in_entangling_zone(stage.placements[qubit].y):
                count += 1
        return count

    def total_unshielded_idle(self) -> int:
        """Total idle-qubit exposures to Rydberg beams over the schedule."""
        return sum(
            self.unshielded_idle_count(i)
            for i, stage in enumerate(self.stages)
            if stage.is_execution
        )

    # ------------------------------------------------------------------ #
    # Serialisation (useful for inspecting and storing schedules)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "architecture": self.architecture.name,
            "num_qubits": self.num_qubits,
            "target_gates": [list(gate) for gate in self.target_gates],
            "metadata": dict(self.metadata),
            "stages": [
                {
                    "kind": stage.kind.value,
                    "gates": [list(gate) for gate in stage.gates],
                    "stored_qubits": list(stage.stored_qubits),
                    "loaded_qubits": list(stage.loaded_qubits),
                    "placements": {
                        str(qubit): {
                            "x": placement.x,
                            "y": placement.y,
                            "h": placement.h,
                            "v": placement.v,
                            "in_aod": placement.in_aod,
                            "column": placement.column,
                            "row": placement.row,
                        }
                        for qubit, placement in sorted(stage.placements.items())
                    },
                }
                for stage in self.stages
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """One-line summary in the spirit of a Table I row."""
        return (
            f"S={self.num_stages} #R={self.num_rydberg_stages} "
            f"#T={self.num_transfer_stages} "
            f"transfers={self.num_transfer_operations} "
            f"unshielded-idle={self.total_unshielded_idle()}"
        )
