"""The paper's contribution: optimal state preparation scheduling.

Given the CZ-gate list of a state-preparation circuit and a zoned
neutral-atom architecture, produce a schedule of Rydberg beams, trap
transfers and shuttling operations.

Every backend consumes a :class:`~repro.core.problem.SchedulingProblem` —
the shared IR bundling circuit, architecture, shielding policy, and derived
structure (gate loads, interaction graph, zone capacities, analytic stage
bounds).  Three backends produce the same
:class:`~repro.core.schedule.Schedule` type:

* :class:`repro.core.scheduler.SMTScheduler` — the faithful reproduction of
  the paper's approach: the symbolic formulation of Sec. IV (variables V1-V3,
  constraints C1-C6) solved with :mod:`repro.smt`, minimising the number of
  stages with a pluggable search strategy (``linear`` iterative deepening,
  ``bisection`` between the IR's analytic bounds, or ``warmstart`` bisection
  with structured phase seeding — see :mod:`repro.core.strategies`).
* :class:`repro.core.structured.StructuredScheduler` — a constructive
  zone-aware scheduler used for the larger Table I instances, where a pure
  Python SMT solve would take days.
* ``baseline`` — the no-zone behaviour of prior tools is obtained by running
  either backend on the no-shielding layout (Layout 1).

Every schedule can be checked independently with
:func:`repro.core.validator.validate_schedule`.
"""

from repro.core.budget import Deadline, DeadlineExceeded
from repro.core.canonical import (
    CANONICAL_VERSION,
    architecture_fingerprint,
    canonical_document,
    canonical_form,
    canonical_key,
    canonical_relabeling,
)
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind
from repro.core.problem import BoundBreakdown, SchedulingProblem, ZoneCapacities
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_CERTIFIED,
    TERMINATION_DEADLINE,
    TERMINATION_INFEASIBLE,
    TERMINATIONS,
    SchedulerReport,
    SchedulerResult,
)
from repro.core.validator import ValidationError, validate_schedule
from repro.core.structured import StructuredScheduler
from repro.core.scheduler import SMTScheduler
from repro.core.strategies import available_strategies, get_strategy, register_strategy
from repro.core.visualize import render_schedule, render_stage

__all__ = [
    "BoundBreakdown",
    "CANONICAL_VERSION",
    "architecture_fingerprint",
    "canonical_document",
    "canonical_form",
    "canonical_key",
    "canonical_relabeling",
    "Deadline",
    "DeadlineExceeded",
    "QubitPlacement",
    "SMTScheduler",
    "TERMINATIONS",
    "TERMINATION_BACKEND_ERROR",
    "TERMINATION_CERTIFIED",
    "TERMINATION_DEADLINE",
    "TERMINATION_INFEASIBLE",
    "Schedule",
    "SchedulerReport",
    "SchedulerResult",
    "SchedulingProblem",
    "Stage",
    "StageKind",
    "StructuredScheduler",
    "ValidationError",
    "ZoneCapacities",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "render_schedule",
    "render_stage",
    "validate_schedule",
]
