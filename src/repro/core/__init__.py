"""The paper's contribution: optimal state preparation scheduling.

Given the CZ-gate list of a state-preparation circuit and a zoned
neutral-atom architecture, produce a schedule of Rydberg beams, trap
transfers and shuttling operations.

Three backends produce the same :class:`~repro.core.schedule.Schedule` type:

* :class:`repro.core.scheduler.SMTScheduler` — the faithful reproduction of
  the paper's approach: the symbolic formulation of Sec. IV (variables V1-V3,
  constraints C1-C6) solved with :mod:`repro.smt`, minimising the number of
  stages by iterative deepening.
* :class:`repro.core.structured.StructuredScheduler` — a constructive
  zone-aware scheduler used for the larger Table I instances, where a pure
  Python SMT solve would take days.
* ``baseline`` — the no-zone behaviour of prior tools is obtained by running
  either backend on the no-shielding layout (Layout 1).

Every schedule can be checked independently with
:func:`repro.core.validator.validate_schedule`.
"""

from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind
from repro.core.validator import ValidationError, validate_schedule
from repro.core.structured import StructuredScheduler
from repro.core.scheduler import SMTScheduler, SchedulerResult
from repro.core.visualize import render_schedule, render_stage

__all__ = [
    "QubitPlacement",
    "SMTScheduler",
    "Schedule",
    "SchedulerResult",
    "Stage",
    "StageKind",
    "StructuredScheduler",
    "ValidationError",
    "render_schedule",
    "render_stage",
    "validate_schedule",
]
