"""Command-line interface.

Examples
--------
::

    repro-nasp codes                      # list the evaluation codes
    repro-nasp circuit steane             # show the prep circuit for a code
    repro-nasp schedule steane --layout bottom
    repro-nasp schedule steane --strategy bisection --timeout 60
    repro-nasp bounds steane --layout bottom      # certificates, no solving
    repro-nasp bounds triangle --layout bottom    # smoke instances work too
    repro-nasp table1                     # regenerate Table I
    repro-nasp figure4                    # regenerate Figure 4
    repro-nasp explore surface            # architecture design-space sweep
    repro-nasp bench --suite smt --jobs 4 --output results.json
    repro-nasp bench --suite smt --strategy linear bisection --output out.json
    repro-nasp bench --suite smt --strategy portfolio --output race.json
    repro-nasp bench --suite smt --sat-backend dimacs-subprocess --output ext.json
    repro-nasp bench --suite smt --journal run.jsonl --output run.json
    repro-nasp bench --suite smt --resume run.jsonl --output run.json
    repro-nasp bench --suite smt --shard 0/2 --output shard0.json
    repro-nasp bench-merge shard0.json shard1.json --output merged.json
    repro-nasp bench-trend baseline.json merged.json --json BENCH_TREND.json
    repro-nasp microbench --output microbench.json
    repro-nasp microbench --backend dimacs-subprocess flat
    repro-nasp microbench --chrono --output chrono.json
    repro-nasp schedule steane --strategy bisection --sat-chrono off
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro._version import __version__
from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    no_shielding_layout,
)
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.strategies import available_strategies
from repro.core.structured import StructuredScheduler
from repro.sat.backend import available_backends
from repro.core.validator import validate_schedule
from repro.evaluation import (
    build_suite,
    figure4_from_rows,
    format_batch,
    format_figure4,
    format_table1,
    run_architecture_exploration,
    run_batch,
    run_table1,
)
from repro.evaluation.exploration import format_exploration
from repro.evaluation.runner import (
    REDUCED_LAYOUT_KWARGS,
    SMT_INSTANCES,
    SMT_STRATEGIES,
)
from repro.metrics import approximate_success_probability
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit

_LAYOUTS = {
    "none": no_shielding_layout,
    "bottom": bottom_storage_layout,
    "double": double_sided_storage_layout,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-nasp",
        description="Optimal state preparation for logical arrays on zoned "
        "neutral atom quantum computers (DATE 2025 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("codes", help="list the available QEC codes")

    circuit = sub.add_parser("circuit", help="show a state-preparation circuit")
    circuit.add_argument("code", choices=available_codes())
    circuit.add_argument("--qasm", action="store_true", help="print OpenQASM 2 instead")

    schedule = sub.add_parser("schedule", help="schedule a preparation circuit")
    schedule.add_argument("code", choices=available_codes())
    schedule.add_argument("--layout", choices=sorted(_LAYOUTS), default="bottom")
    schedule.add_argument(
        "--strategy",
        choices=["structured", *available_strategies()],
        default="structured",
        help="scheduling backend: the constructive choreography (default) or "
        "an exact SMT search strategy (slow on full-size codes)",
    )
    schedule.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-horizon solver wall-clock budget for the SMT strategies",
    )
    schedule.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="whole-search wall-clock budget in seconds for the SMT "
        "strategies (unlike --timeout, which caps each horizon "
        "independently); on expiry the search degrades gracefully — "
        "best-known schedule, sound bound interval, and a termination "
        "verdict — instead of failing",
    )
    schedule.add_argument(
        "--sat-backend",
        metavar="BACKEND",
        default=None,
        help="SAT backend deciding the SMT probes (one of: "
        f"{', '.join(available_backends())}; default: the in-process "
        "flat-array core; 'chaos:BACKEND' wraps BACKEND in the "
        "fault-injection proxy)",
    )
    schedule.add_argument(
        "--sat-chrono",
        choices=["auto", "on", "off"],
        default="auto",
        help="chronological backtracking in the flat SAT core (auto: the "
        "backend default, currently on); a pure search heuristic — answers "
        "never change",
    )
    schedule.add_argument(
        "--sat-inprocessing",
        choices=["auto", "on", "off"],
        default="auto",
        help="inprocessing (clause vivification + subsumption) in the flat "
        "SAT core (auto: the backend default, currently on)",
    )
    schedule.add_argument("--json", action="store_true", help="dump the schedule as JSON")
    schedule.add_argument(
        "--render", action="store_true", help="draw every stage as an ASCII site grid"
    )

    bounds = sub.add_parser(
        "bounds",
        help="print the analytic bound certificates of an instance "
        "without running any solver",
    )
    bounds.add_argument(
        "instance",
        choices=[*available_codes(), *SMT_INSTANCES],
        help="a QEC code (scheduled on the evaluation layouts) or a smoke "
        "instance name (scheduled on the reduced bench layouts)",
    )
    bounds.add_argument("--layout", choices=sorted(_LAYOUTS), default="bottom")
    bounds.add_argument(
        "--shielding",
        choices=["auto", "on", "off"],
        default="auto",
        help="idle-qubit shielding policy (auto: shield iff the layout has "
        "a storage zone)",
    )
    bounds.add_argument(
        "--json", action="store_true", help="dump the certificate breakdown as JSON"
    )

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--codes", nargs="*", choices=available_codes(), default=None)

    figure4 = sub.add_parser("figure4", help="regenerate Figure 4")
    figure4.add_argument("--codes", nargs="*", choices=available_codes(), default=None)

    explore = sub.add_parser("explore", help="architecture design-space exploration")
    explore.add_argument("code", choices=available_codes())

    bench = sub.add_parser(
        "bench", help="run a benchmark suite, optionally across worker processes"
    )
    bench.add_argument(
        "--suite",
        choices=["smt", "table1", "exploration", "all"],
        default="smt",
        help="which instance family to run (default: smt)",
    )
    bench.add_argument(
        "--codes",
        nargs="*",
        choices=available_codes(),
        default=None,
        help="restrict the table1/exploration suites to these codes",
    )
    bench.add_argument(
        "--strategy",
        nargs="*",
        choices=list(SMT_STRATEGIES),
        default=None,
        dest="strategies",
        help="search strategies for the smt suite (default: all; "
        "'coldstart' is the non-incremental linear reference)",
    )
    bench.add_argument(
        "--sat-backend",
        metavar="BACKEND",
        default=None,
        help="SAT backend for the smt suite's SMT probes (one of: "
        f"{', '.join(available_backends())}; default: the in-process "
        "flat-array core; 'chaos:BACKEND' wraps BACKEND in the "
        "fault-injection proxy)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; <=1 runs serially in this process",
    )
    bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-instance wall-clock budget in seconds",
    )
    bench.add_argument(
        "--output", default=None, help="persist the results as JSON to this path"
    )
    bench.add_argument(
        "--schema-version",
        type=int,
        choices=[2, 3, 4, 5, 6, 7, 8],
        default=8,
        help="bench JSON schema (7 strips the v8-only service fields "
        "latency_p50_seconds/latency_p99_seconds/cache_hit_rate, 6 "
        "additionally the v7 robustness fields termination/"
        "backend_retries, 5 the fleet fields shard/attempts/"
        "journal_digest/throughput, 4 the bound-source fields, 3 the "
        "backend field, 2 the portfolio fields)",
    )
    bench.add_argument(
        "--dedupe",
        action="store_true",
        help="drop SMT cells whose problem is isomorphic to an earlier "
        "cell under the same strategy/backend/budget (canonical-hash "
        "dedup; the kept cell's certificate covers the dropped ones)",
    )
    bench.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only the I-th of N deterministic shards of the suite "
        "(stable hash of the cell name; the N shard outputs are disjoint, "
        "exhaustive, and mergeable via bench-merge)",
    )
    bench.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append a per-cell completion journal (JSONL) to PATH so a "
        "killed run can be resumed with --resume",
    )
    bench.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume from the journal at PATH: completed cells are carried "
        "over, crashed/timed-out cells re-queued (requires the same bench "
        "arguments as the original run; implies journalling to PATH)",
    )
    bench.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries after a worker crash before a cell is recorded as "
        "status 'failed' (default: 2; counts attempts from a resumed "
        "journal)",
    )

    bench_merge = sub.add_parser(
        "bench-merge",
        help="union the JSON outputs of a sharded bench run, validating "
        "that the shards are disjoint and exhaustive",
    )
    bench_merge.add_argument(
        "shards", nargs="+", help="the per-shard bench JSON files (schema v6+)"
    )
    bench_merge.add_argument(
        "--output", required=True, help="write the merged document to this path"
    )

    bench_trend = sub.add_parser(
        "bench-trend",
        help="compare two bench JSON documents cell-by-cell and fail on "
        "wall-clock/probe-count regressions",
    )
    bench_trend.add_argument("old", help="baseline bench JSON (schema v5+)")
    bench_trend.add_argument("new", help="candidate bench JSON (schema v5+)")
    bench_trend.add_argument(
        "--wall-clock-threshold",
        type=float,
        default=0.25,
        help="relative wall-clock growth that trips the gate on a certified "
        "cell (default: 0.25 = +25%%)",
    )
    bench_trend.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="ignore wall-clock growth on cells faster than this in both "
        "runs (timing noise floor, default: 0.05s)",
    )
    bench_trend.add_argument(
        "--allow-missing",
        action="store_true",
        help="do not fail when cells from the old run are absent from the "
        "new one",
    )
    bench_trend.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_output",
        help="write the machine-readable trend report (BENCH_TREND.json)",
    )
    bench_trend.add_argument(
        "--markdown",
        default=None,
        metavar="PATH",
        help="write a GitHub-flavoured Markdown summary (job summaries)",
    )
    bench_trend.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="truncate the per-cell table to this many clean cells "
        "(regressed cells always print)",
    )

    microbench = sub.add_parser(
        "microbench",
        help="race two registered SAT backends on the smoke scheduling "
        "formulas (default: the flat-array core vs the seed reference)",
    )
    microbench.add_argument(
        "--backend",
        nargs=2,
        choices=available_backends(),
        default=None,
        metavar=("CANDIDATE", "BASELINE"),
        dest="backends",
        help="registered backends to compare; the candidate must beat the "
        "baseline for a zero exit code (default: flat reference)",
    )
    microbench.add_argument(
        "--chrono",
        action="store_true",
        help="run the chronological-backtracking gate instead: the flat "
        "core with chrono + inprocessing (its defaults) vs the same core "
        "with both off, UNSAT cells gating on improvement and SAT cells on "
        "no-regression (--backend is ignored)",
    )
    microbench.add_argument(
        "--output", default=None, help="persist the comparison as JSON to this path"
    )

    serve = sub.add_parser(
        "serve",
        help="run the scheduling service: an HTTP/JSON server streaming "
        "anytime responses, backed by a warm worker pool and the "
        "certified-result cache",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8537, help="bind port")
    serve.add_argument(
        "--jobs", type=int, default=2, help="persistent solver workers"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="bounded request queue depth; further submissions get 503",
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persist the certified-result cache as JSONL at PATH "
        "(loaded on start, appended on every new certificate)",
    )
    serve.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append the request ledger (bench-journal JSONL) to PATH",
    )
    serve.add_argument(
        "--strategy",
        choices=list(SMT_STRATEGIES),
        default="bisection",
        help="default search strategy for requests that do not name one",
    )
    serve.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="default per-SMT-instance time limit in seconds",
    )
    serve.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        help="per-request wall-clock ceiling; an overrunning worker is "
        "terminated and restarted (termination: deadline)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="fire seeded isomorphically-relabeled traffic at an "
        "in-process service; report p50/p99 latency and cache hit-rate",
    )
    loadtest.add_argument(
        "--requests", type=int, default=24, help="total requests to send"
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=4, help="in-flight request cap"
    )
    loadtest.add_argument(
        "--jobs", type=int, default=2, help="service worker processes"
    )
    loadtest.add_argument(
        "--seed", type=int, default=0, help="relabeling/traffic seed"
    )
    loadtest.add_argument(
        "--instances",
        nargs="*",
        choices=sorted(SMT_INSTANCES),
        default=None,
        help="base instances to relabel (default: the fast-certifying mix)",
    )
    loadtest.add_argument(
        "--layout", choices=sorted(_LAYOUTS), default="bottom"
    )
    loadtest.add_argument(
        "--strategy",
        choices=list(SMT_STRATEGIES),
        default="bisection",
        help="search strategy for every request",
    )
    loadtest.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds (anytime degradation)",
    )
    loadtest.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail (exit 1) when the cache hit-rate falls below this",
    )
    loadtest.add_argument(
        "--output",
        default=None,
        help="persist the payload as bench JSON to this path",
    )
    loadtest.add_argument(
        "--schema-version",
        type=int,
        choices=[2, 3, 4, 5, 6, 7, 8],
        default=8,
        help="bench JSON schema for --output (v8 carries the latency "
        "percentiles and cache hit-rate; older versions strip them)",
    )
    return parser


def _tristate(value: str) -> bool | None:
    """Map an ``auto``/``on``/``off`` CLI choice to ``None``/``True``/``False``."""
    return None if value == "auto" else value == "on"


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "codes":
        for name in available_codes():
            code = get_code(name)
            prep = state_preparation_circuit(code)
            n, k, d = code.parameters()
            print(f"{name:<12} [[{n},{k},{d}]]  #CZ={prep.num_cz_gates}")
        return 0

    if args.command == "circuit":
        code = get_code(args.code)
        prep = state_preparation_circuit(code)
        if args.qasm:
            print(prep.to_circuit().to_qasm(), end="")
        else:
            print(f"{code.name}: {prep.num_qubits} qubits, {prep.num_cz_gates} CZ gates")
            for a, b in prep.cz_gates:
                print(f"  cz q{a} q{b}")
            for qubit in sorted(prep.local_corrections):
                gates = " ".join(kind.value for kind in prep.local_corrections[qubit])
                print(f"  correction on q{qubit}: {gates}")
        return 0

    if args.command == "schedule":
        code = get_code(args.code)
        prep = state_preparation_circuit(code)
        architecture = _LAYOUTS[args.layout]()
        problem = SchedulingProblem.from_circuit(
            architecture, prep, metadata={"code": code.name}
        )
        report = None
        if args.strategy == "structured":
            if (
                args.timeout is not None
                or args.deadline is not None
                or args.sat_backend is not None
            ):
                print(
                    "warning: --timeout/--deadline/--sat-backend only apply "
                    "to the SMT strategies; the structured backend runs "
                    "unbounded",
                    file=sys.stderr,
                )
            schedule = StructuredScheduler().schedule(problem)
        else:
            try:
                scheduler = SMTScheduler(
                    strategy=args.strategy,
                    time_limit_per_instance=args.timeout,
                    sat_backend=args.sat_backend,
                    sat_chrono=_tristate(args.sat_chrono),
                    sat_inprocessing=_tristate(args.sat_inprocessing),
                    deadline=args.deadline,
                )
            except ValueError as exc:
                # E.g. the requested SAT backend has no solver binary.
                print(f"error: {exc}", file=sys.stderr)
                return 1
            report = scheduler.schedule(problem)
            if not report.found:
                print(
                    f"no schedule within the stage/time budget "
                    f"(termination: {report.termination}, "
                    f"horizons tried: {report.stages_tried}, "
                    f"bounds: [{report.lower_bound}, "
                    f"{'-' if report.upper_bound is None else report.upper_bound}])",
                    file=sys.stderr,
                )
                return 1
            schedule = report.schedule
        validate_schedule(schedule, require_shielding=problem.shielding)
        breakdown = approximate_success_probability(schedule, prep)
        if args.json:
            print(json.dumps(schedule.to_dict(), indent=2))
        else:
            print(architecture.describe())
            print(f"problem: {problem.describe()}")
            print(f"schedule: {schedule.summary()}")
            if report is not None:
                upper = "-" if report.upper_bound is None else report.upper_bound
                upper_source = report.upper_bound_source or "-"
                print(
                    f"search: strategy={report.strategy} "
                    f"backend={report.sat_backend} optimal={report.optimal} "
                    f"termination={report.termination} "
                    f"bounds=[{report.lower_bound},{upper}] "
                    f"sources=[{report.lower_bound_source},{upper_source}] "
                    f"horizons={report.stages_tried}"
                )
            print(f"execution time: {breakdown.timing.total_ms:.3f} ms")
            print(f"ASP: {breakdown.asp:.4f}")
            if args.render:
                from repro.core.visualize import render_schedule

                print(render_schedule(schedule))
        return 0

    if args.command == "bounds":
        from repro.arch import reduced_layout
        from repro.core.strategies.bisection import (
            structured_upper_bound,
            witness_source,
        )

        shielding = None if args.shielding == "auto" else args.shielding == "on"
        if args.instance in SMT_INSTANCES:
            num_qubits, gates = SMT_INSTANCES[args.instance]
            architecture = reduced_layout(args.layout, **REDUCED_LAYOUT_KWARGS)
            problem = SchedulingProblem.from_gates(
                architecture,
                num_qubits,
                gates,
                shielding=shielding,
                metadata={"instance": args.instance},
            )
        else:
            code = get_code(args.instance)
            prep = state_preparation_circuit(code)
            architecture = _LAYOUTS[args.layout]()
            problem = SchedulingProblem.from_circuit(
                architecture, prep, shielding=shielding, metadata={"code": code.name}
            )
        breakdown = problem.bound_breakdown()
        witness = structured_upper_bound(problem)
        if args.json:
            document = {
                "instance": args.instance,
                "layout": args.layout,
                "shielding": problem.shielding,
                "lower_bound": breakdown.to_dict(),
                "upper_bound": None
                if witness is None
                else {
                    "stages": witness.num_stages,
                    "rydberg_stages": witness.num_rydberg_stages,
                    "transfer_stages": witness.num_transfer_stages,
                    "source": witness_source(witness),
                },
            }
            print(json.dumps(document, indent=2))
            return 0
        print(f"problem: {problem.describe()}")
        print("lower-bound certificates (Rydberg stages):")
        for name, value in breakdown.certificates:
            suffix = ""
            if name == "clique" and breakdown.clique:
                suffix = f"   witness qubits {breakdown.clique}"
            print(f"  {name:<14}{value}{suffix}")
        print(
            f"transfer certificate: +{breakdown.transfer}"
            + ("" if breakdown.transfer else " (does not fire)")
        )
        print(
            f"analytic lower bound: {breakdown.total}   "
            f"(source: {breakdown.source})"
        )
        if witness is None:
            print("structured upper bound: none (open search interval)")
        else:
            print(
                f"structured upper bound: {witness.num_stages} stages   "
                f"(source: {witness_source(witness)}, "
                f"#R={witness.num_rydberg_stages} "
                f"#T={witness.num_transfer_stages})"
            )
            print(
                f"certified interval: [{breakdown.total}, "
                f"{witness.num_stages}]   "
                f"width {witness.num_stages - breakdown.total}"
            )
        return 0

    if args.command == "table1":
        rows = run_table1(codes=args.codes)
        print(format_table1(rows))
        return 0

    if args.command == "figure4":
        rows = run_table1(codes=args.codes)
        print(format_figure4(figure4_from_rows(rows)))
        return 0

    if args.command == "explore":
        results = run_architecture_exploration(args.code)
        print(format_exploration(results))
        return 0

    if args.command == "bench":
        from repro.evaluation.runner import shard_info, shard_suite
        from repro.sat.backend import backend_info

        if args.sat_backend is not None:
            # Resolve eagerly (parameterised names like 'chaos:flat' are
            # derived, so argparse cannot enumerate them as choices): an
            # unknown or unavailable backend must fail before the suite
            # runs, not inside every worker.
            try:
                info = backend_info(args.sat_backend)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not info.is_available():
                print(
                    f"error: SAT backend {info.name!r} is unavailable: "
                    f"{info.description or 'runtime requirements not met'}",
                    file=sys.stderr,
                )
                return 2

        instances = build_suite(
            args.suite,
            codes=args.codes,
            strategies=args.strategies,
            time_limit=args.timeout if args.timeout is not None else 120.0,
            backends=[args.sat_backend] if args.sat_backend else None,
        )
        full_names = [instance.name for instance in instances]
        shard = None
        if args.shard is not None:
            try:
                index_text, _, count_text = args.shard.partition("/")
                index, count = int(index_text), int(count_text)
                shard = shard_info(full_names, index, count)
            except ValueError as exc:
                print(
                    f"error: --shard must be I/N with 0 <= I < N, got "
                    f"{args.shard!r} ({exc})",
                    file=sys.stderr,
                )
                return 2
            instances = shard_suite(instances, index, count)
        if args.dedupe:
            from repro.evaluation.runner import dedupe_instances

            instances, dropped = dedupe_instances(instances)
            if dropped:
                print(
                    f"dedupe: dropped {len(dropped)} isomorphic cell(s): "
                    + ", ".join(
                        f"{name} (duplicate of {kept_name})"
                        for name, kept_name in sorted(dropped.items())
                    ),
                    file=sys.stderr,
                )
        if args.resume is not None and args.journal is not None:
            if args.resume != args.journal:
                print(
                    "error: --resume already names the journal; do not pass "
                    "a different --journal",
                    file=sys.stderr,
                )
                return 2
        journal_path = args.resume if args.resume is not None else args.journal
        try:
            results = run_batch(
                instances,
                jobs=args.jobs,
                timeout=args.timeout,
                output_path=args.output,
                schema_version=args.schema_version,
                journal_path=journal_path,
                resume=args.resume is not None,
                max_retries=args.max_retries,
                shard=shard,
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            # E.g. resuming a journal that belongs to a different suite.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_batch(results))
        if args.output:
            print(f"results written to {args.output}")
        return (
            0
            if all(result.status not in ("error", "failed") for result in results)
            else 1
        )

    if args.command == "bench-merge":
        from repro.evaluation.runner import (
            load_document,
            merge_documents,
            save_document,
        )

        try:
            documents = [load_document(path) for path in args.shards]
            merged = merge_documents(documents)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            save_document(merged, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 1
        shard = merged["shard"]
        print(
            f"merged {shard['merged_from']} shard(s): "
            f"{merged['num_instances']} cells ({merged['num_ok']} ok), "
            f"suite digest {shard['suite_digest'][:12]}…"
        )
        print(f"merged document written to {args.output}")
        return 0

    if args.command == "bench-trend":
        from repro.evaluation.trend import (
            compare_paths,
            format_trend,
            format_trend_markdown,
            save_trend,
        )

        try:
            report = compare_paths(
                args.old,
                args.new,
                wall_clock_threshold=args.wall_clock_threshold,
                min_seconds=args.min_seconds,
                allow_missing=args.allow_missing,
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_trend(report, max_cells=args.max_cells))
        try:
            if args.json_output:
                save_trend(report, args.json_output)
                print(f"trend report written to {args.json_output}")
            if args.markdown:
                with open(args.markdown, "w", encoding="utf-8") as handle:
                    handle.write(format_trend_markdown(report))
                print(f"markdown summary written to {args.markdown}")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0 if report.ok else 1

    if args.command == "microbench":
        from repro.sat.bench import (
            format_chrono_microbench,
            format_microbench,
            run_chrono_microbench,
            run_microbench,
        )

        try:
            if args.chrono:
                document = run_chrono_microbench()
            else:
                document = run_microbench(
                    backends=tuple(args.backends) if args.backends else None
                )
        except (ValueError, RuntimeError) as exc:
            # E.g. a backend compared with itself, or one whose solver
            # binary is missing.
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(
            format_chrono_microbench(document)
            if args.chrono
            else format_microbench(document)
        )
        if args.output:
            try:
                with open(args.output, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            except OSError as exc:
                print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
                return 1
            print(f"comparison written to {args.output}")
        # Non-zero exit = the candidate did not beat the baseline (default
        # pairing: a propagation-throughput regression of the flat core;
        # --chrono: the chronological-backtracking gate failed).
        if args.chrono:
            return 0 if document["chrono_gate_passed"] else 1
        return 0 if document["candidate_faster_everywhere"] else 1

    if args.command == "serve":
        from repro.service import run_service

        print(
            f"serving on http://{args.host}:{args.port} "
            f"({args.jobs} worker(s), queue limit {args.queue_limit})",
            file=sys.stderr,
        )
        run_service(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            queue_limit=args.queue_limit,
            cache_path=args.cache,
            ledger_path=args.ledger,
            default_strategy=args.strategy,
            default_time_limit=args.time_limit,
            hard_timeout=args.hard_timeout,
        )
        return 0

    if args.command == "loadtest":
        from repro.service import format_loadtest, loadtest_result, run_loadtest
        from repro.service.loadtest import (
            DEFAULT_INSTANCES as DEFAULT_LOADTEST_INSTANCES,
        )

        try:
            payload = run_loadtest(
                requests=args.requests,
                concurrency=args.concurrency,
                jobs=args.jobs,
                seed=args.seed,
                instances=tuple(args.instances)
                if args.instances
                else DEFAULT_LOADTEST_INSTANCES,
                layout_kind=args.layout,
                strategy=args.strategy,
                deadline=args.deadline,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_loadtest(payload))
        if args.output:
            from repro.evaluation.runner import save_results

            try:
                save_results(
                    [loadtest_result(payload)],
                    args.output,
                    schema_version=args.schema_version,
                )
            except OSError as exc:
                print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
                return 1
            print(f"results written to {args.output}")
        if payload.get("errors", 0) or payload.get("transport_errors", 0):
            return 1
        if (
            args.min_hit_rate is not None
            and payload.get("cache_hit_rate", 0.0) < args.min_hit_rate
        ):
            print(
                f"error: cache hit-rate {payload.get('cache_hit_rate', 0.0):.2%} "
                f"below the --min-hit-rate floor {args.min_hit_rate:.2%}",
                file=sys.stderr,
            )
            return 1
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
