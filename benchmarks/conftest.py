"""Shared fixtures for the benchmark harness."""

import sys
from pathlib import Path

# The benchmarks are runnable straight from a source checkout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, str(_SRC))

import pytest

from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


@pytest.fixture(scope="session")
def prep_circuits():
    """State-preparation circuits for all evaluation codes (built once)."""
    circuits = {}
    for name in available_codes():
        code = get_code(name)
        circuits[name] = (code, state_preparation_circuit(code))
    return circuits
