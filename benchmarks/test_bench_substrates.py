"""Benchmarks of the substrates: circuit synthesis and the SAT/SMT core.

These do not correspond to a specific table of the paper but make the cost
of the building blocks visible (the paper's pipeline relies on both).
"""

import random

import pytest

from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit
from repro.qec.verification import prepares_logical_zero
from repro.sat import CDCLSolver, SolveResult
from repro.smt import Solver


@pytest.mark.parametrize("code_name", available_codes())
def test_bench_state_prep_synthesis(benchmark, code_name):
    """Graph-state reduction + circuit synthesis for each evaluation code."""
    code = get_code(code_name)
    prep = benchmark(state_preparation_circuit, code)
    assert prep.num_cz_gates > 0


@pytest.mark.parametrize("code_name", ["steane", "surface", "shor"])
def test_bench_state_prep_verification(benchmark, code_name):
    """Tableau-simulator verification of the synthesised circuits."""
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    assert benchmark(prepares_logical_zero, prep, code)


def test_bench_sat_solver_random_3sat(benchmark):
    """CDCL solver on a fixed satisfiable random 3-SAT instance."""
    rng = random.Random(42)
    num_vars, num_clauses = 60, 240
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])

    def solve():
        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    result = benchmark(solve)
    assert result in (SolveResult.SAT, SolveResult.UNSAT)


def test_bench_smt_bit_blasting(benchmark):
    """Encoding + solving a small arithmetic constraint system."""

    def solve():
        solver = Solver()
        xs = [solver.int_var(f"x{i}", 0, 7) for i in range(6)]
        for a, b in zip(xs, xs[1:]):
            solver.add(a < b)
        solver.add(xs[-1] - xs[0] >= 5)
        return solver.check()

    result = benchmark(solve)
    assert result.is_sat()
