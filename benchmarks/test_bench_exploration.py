"""Benchmark of the architecture design-space exploration (Sec. V-C)."""

import pytest

from repro.evaluation import run_architecture_exploration
from repro.evaluation.exploration import format_exploration


@pytest.mark.parametrize("code_name", ["steane", "surface", "shor"])
def test_bench_architecture_exploration(benchmark, code_name):
    """Sweep the three evaluation layouts for a small code."""
    results = benchmark.pedantic(
        run_architecture_exploration, args=(code_name,), rounds=1, iterations=1
    )
    print()
    print(format_exploration(results))
    by_name = {result.architecture: result for result in results}
    assert by_name["bottom storage"].asp > by_name["no shielding"].asp
    assert by_name["double-sided storage"].asp >= by_name["bottom storage"].asp - 1e-9
