"""Benchmarks of the exact SMT backend (the paper's ⌛ column).

The paper reports Z3 solving times ranging from sub-second (small codes) to
hundreds of hours (large codes).  With a pure-Python SAT core the same
encoding is exercised here on reduced-but-structurally-identical instances;
the benchmark also cross-checks the optimal stage counts against the
architecture's shielding behaviour (storage zone => extra transfer stage)
and pits the incremental minimum-stage search against the cold-start one.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule
from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES

INSTANCES = SMT_INSTANCES


def bench_layout(kind):
    return reduced_layout(kind, **REDUCED_LAYOUT_KWARGS)


@pytest.mark.parametrize("mode", ["incremental", "coldstart"])
@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(INSTANCES))
def test_bench_smt_optimal_scheduling(benchmark, mode, layout_kind, instance_name):
    """Time the full iterative-deepening optimal solve of a small instance."""
    num_qubits, gates = INSTANCES[instance_name]
    architecture = bench_layout(layout_kind)
    scheduler = SMTScheduler(
        architecture, time_limit_per_instance=120, incremental=mode == "incremental"
    )

    def solve():
        return scheduler.schedule(num_qubits, gates)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.found
    assert result.optimal
    validate_schedule(result.schedule, require_shielding=architecture.has_storage)


def test_bench_smt_shielding_costs_one_stage(benchmark):
    """The zoned architecture needs exactly one more stage on the chained
    instance (the Fig. 2 shielding behaviour)."""

    def compare():
        results = {}
        for kind in ("none", "bottom"):
            architecture = bench_layout(kind)
            scheduler = SMTScheduler(architecture, time_limit_per_instance=120)
            results[kind] = scheduler.schedule(3, [(0, 1), (1, 2)])
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    unshielded = results["none"].schedule
    shielded = results["bottom"].schedule
    assert unshielded.num_stages == 2
    assert shielded.num_stages == 3
    assert shielded.num_transfer_stages == unshielded.num_transfer_stages + 1


def test_bench_smt_incremental_beats_coldstart(benchmark):
    """The incremental search must win on total solve wall-clock while
    producing schedules with identical stage counts, all validator-clean."""

    def run(incremental):
        total_seconds = 0.0
        stage_counts = {}
        for layout_kind in ("none", "bottom"):
            architecture = bench_layout(layout_kind)
            scheduler = SMTScheduler(
                architecture, time_limit_per_instance=120, incremental=incremental
            )
            for name, (num_qubits, gates) in INSTANCES.items():
                result = scheduler.schedule(num_qubits, gates)
                assert result.found and result.optimal
                validate_schedule(
                    result.schedule, require_shielding=architecture.has_storage
                )
                total_seconds += result.solver_seconds
                stage_counts[(layout_kind, name)] = result.schedule.num_stages
        return total_seconds, stage_counts

    def compare():
        return {"incremental": run(True), "coldstart": run(False)}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    incremental_seconds, incremental_stages = results["incremental"]
    coldstart_seconds, coldstart_stages = results["coldstart"]
    assert incremental_stages == coldstart_stages
    assert incremental_seconds < coldstart_seconds, (
        f"incremental search took {incremental_seconds:.2f}s, "
        f"cold-start {coldstart_seconds:.2f}s"
    )
