"""Benchmarks of the exact SMT backend (the paper's ⌛ column).

The paper reports Z3 solving times ranging from sub-second (small codes) to
hundreds of hours (large codes).  With a pure-Python SAT core the same
encoding is exercised here on reduced-but-structurally-identical instances;
the benchmark also cross-checks the optimal stage counts against the
architecture's shielding behaviour (storage zone => extra transfer stage),
pits the incremental minimum-stage search against the cold-start one,
certifies that bound-driven bisection reaches the same optima while probing
strictly fewer stage horizons on multi-horizon instances, races the
flat-array CDCL core against the preserved seed implementation
(propagation-throughput microbench), and checks the portfolio strategy
against the single-strategy field.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule
from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES
from repro.sat.bench import DEFAULT_CELLS, run_microbench

INSTANCES = SMT_INSTANCES


def bench_layout(kind):
    return reduced_layout(kind, **REDUCED_LAYOUT_KWARGS)


def bench_problem(kind, instance_name):
    num_qubits, gates = INSTANCES[instance_name]
    return SchedulingProblem.from_gates(bench_layout(kind), num_qubits, gates)


@pytest.mark.parametrize("strategy", ["linear", "bisection", "warmstart", "portfolio"])
@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(INSTANCES))
def test_bench_smt_optimal_scheduling(benchmark, strategy, layout_kind, instance_name):
    """Time the full optimal solve of a small instance, per strategy."""
    problem = bench_problem(layout_kind, instance_name)
    scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)

    def solve():
        return scheduler.schedule(problem)

    report = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert report.found
    assert report.optimal
    assert report.strategy == strategy
    assert report.lower_bound <= report.schedule.num_stages
    validate_schedule(report.schedule, require_shielding=problem.shielding)


def test_bench_smt_shielding_costs_one_stage(benchmark):
    """The zoned architecture needs exactly one more stage on the chained
    instance (the Fig. 2 shielding behaviour)."""

    def compare():
        results = {}
        for kind in ("none", "bottom"):
            problem = SchedulingProblem.from_gates(
                bench_layout(kind), 3, [(0, 1), (1, 2)]
            )
            scheduler = SMTScheduler(time_limit_per_instance=120)
            results[kind] = scheduler.schedule(problem)
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    unshielded = results["none"].schedule
    shielded = results["bottom"].schedule
    assert unshielded.num_stages == 2
    assert shielded.num_stages == 3
    assert shielded.num_transfer_stages == unshielded.num_transfer_stages + 1


def test_bench_smt_incremental_beats_coldstart(benchmark):
    """The incremental engine must win on a multi-horizon walk while
    answering every horizon identically, with a validator-clean extraction.

    The v2 analytic bounds certify most suite cells within one or two
    horizons, where incrementality has nothing to amortise; the comparison
    therefore drives the seed-era walk (every horizon from 2 to the
    triangle's optimum of 5) explicitly through the shared context versus a
    fresh cold-start encoding per horizon.
    """
    import time

    from repro.core.encoding import encode_problem
    from repro.core.strategies import SearchLimits
    from repro.core.strategies.base import SearchContext
    from repro.smt import CheckResult

    problem = bench_problem("bottom", "triangle")
    horizons = [2, 3, 4, 5]

    def run(incremental):
        start = time.perf_counter()
        answers = []
        context = SearchContext(problem, SearchLimits(time_limit=120))
        for horizon in horizons:
            if incremental:
                answers.append(context.decide(horizon))
            else:
                instance = encode_problem(problem, horizon)
                answers.append(instance.check(time_limit=120))
        if incremental:
            schedule = context.extract(horizons[-1])
            validate_schedule(schedule, require_shielding=problem.shielding)
            assert schedule.num_stages == 5
        return time.perf_counter() - start, answers

    def compare():
        return {"incremental": run(True), "coldstart": run(False)}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    incremental_seconds, incremental_answers = results["incremental"]
    coldstart_seconds, coldstart_answers = results["coldstart"]
    assert incremental_answers == coldstart_answers
    assert incremental_answers[-1] is CheckResult.SAT
    assert incremental_seconds < coldstart_seconds, (
        f"incremental walk took {incremental_seconds:.2f}s, "
        f"cold-start {coldstart_seconds:.2f}s"
    )


def test_bench_smt_bisection_solves_fewer_horizons(benchmark):
    """Bound-driven search under the v2 analytic bounds: cells whose
    interval closes analytically (LB == UB) certify with ZERO probes, open
    cells stay within the binary-search budget ``ceil(log2(width + 1))``,
    and the whole suite costs bisection fewer probes than linear's walk."""

    def run(strategy):
        reports = {}
        scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)
        for layout_kind in ("none", "bottom"):
            for name in INSTANCES:
                problem = bench_problem(layout_kind, name)
                reports[(layout_kind, name)] = scheduler.schedule(problem)
        return reports

    def compare():
        return {"linear": run("linear"), "bisection": run("bisection")}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    closed_cells = 0
    for key, linear in results["linear"].items():
        bisection = results["bisection"][key]
        assert linear.found and linear.optimal
        assert bisection.found and bisection.optimal
        # Identical certified optima on every benchmark instance.
        assert linear.schedule.num_stages == bisection.schedule.num_stages, key
        assert bisection.lower_bound == linear.lower_bound
        assert bisection.upper_bound is not None
        assert bisection.upper_bound >= bisection.schedule.num_stages
        width = bisection.upper_bound - bisection.lower_bound
        if width == 0:
            closed_cells += 1
            assert bisection.num_horizons == 0, (
                f"{key}: closed interval still probed {bisection.stages_tried}"
            )
        else:
            budget = width.bit_length()  # ceil(log2(width + 1))
            assert bisection.num_horizons <= budget, (
                f"{key}: bisection probed {bisection.stages_tried} on a "
                f"width-{width} interval"
            )
    assert closed_cells > 0, "suite lost its analytically-closed instances"
    linear_total = sum(r.num_horizons for r in results["linear"].values())
    bisection_total = sum(r.num_horizons for r in results["bisection"].values())
    assert bisection_total < linear_total, (
        f"bisection probed {bisection_total} horizons across the suite vs "
        f"linear's {linear_total}"
    )


# --------------------------------------------------------------------------- #
# Flat-array CDCL core vs the preserved seed reference
# --------------------------------------------------------------------------- #
def test_bench_smt_propagation_throughput_microbench(benchmark):
    """The flat-array rewrite must beat the seed CDCL loop on every smoke
    formula (bottom/triangle and bottom/chain-2 probes): strictly faster
    wall-clock AND strictly higher propagation throughput, with identical
    SAT/UNSAT answers.

    Reading the output: each cell reports flat/reference seconds, the
    ``speedup`` (reference/flat wall-clock) and the ``throughput_ratio``
    (flat props/s over reference props/s); both must stay > 1.0 — the
    ``repro-nasp microbench`` CLI prints the same table and CI fails on the
    first cell at or below parity.
    """
    document = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    assert len(document["cells"]) == len(DEFAULT_CELLS)
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        assert cell["flat"]["result"] == cell["reference"]["result"], name
        assert cell["speedup"] > 1.0, (
            f"{name}: flat core no longer strictly faster "
            f"(flat {cell['flat']['seconds']:.3f}s vs "
            f"reference {cell['reference']['seconds']:.3f}s)"
        )
        assert cell["throughput_ratio"] > 1.0, (
            f"{name}: flat propagation throughput regressed "
            f"({cell['flat']['propagations_per_second']:,.0f} vs "
            f"{cell['reference']['propagations_per_second']:,.0f} props/s)"
        )
    assert document["flat_faster_everywhere"]


# --------------------------------------------------------------------------- #
# Portfolio racing
# --------------------------------------------------------------------------- #
#: Fixed allowance for the portfolio's orchestration overhead (process
#: fork + result pickling + the race loop's 0.5 s poll granularity) on
#: cells where every strategy finishes in milliseconds; on wide-interval
#: cells the race wins outright.  Sized for a loaded 2-core CI runner.
PORTFOLIO_OVERHEAD_SECONDS = 1.0


def test_bench_smt_portfolio_matches_bisection_and_never_trails_the_field(benchmark):
    """The portfolio certifies the same optimal S as bisection on every
    smoke instance and never loses to the slowest single strategy by more
    than the fixed orchestration allowance."""

    def run_all():
        reports = {}
        for strategy in ("linear", "bisection", "warmstart", "portfolio"):
            scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)
            for layout_kind in ("none", "bottom"):
                for name in INSTANCES:
                    problem = bench_problem(layout_kind, name)
                    reports[(strategy, layout_kind, name)] = scheduler.schedule(
                        problem
                    )
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for layout_kind in ("none", "bottom"):
        for name in INSTANCES:
            portfolio = reports[("portfolio", layout_kind, name)]
            bisection = reports[("bisection", layout_kind, name)]
            assert portfolio.found and portfolio.optimal, (layout_kind, name)
            assert (
                portfolio.schedule.num_stages == bisection.schedule.num_stages
            ), (layout_kind, name)
            assert portfolio.winner is not None, (layout_kind, name)
            slowest = max(
                reports[(strategy, layout_kind, name)].solver_seconds
                for strategy in ("linear", "bisection", "warmstart")
            )
            assert portfolio.solver_seconds <= slowest + PORTFOLIO_OVERHEAD_SECONDS, (
                f"{layout_kind}/{name}: portfolio took "
                f"{portfolio.solver_seconds:.2f}s vs slowest single "
                f"strategy {slowest:.2f}s"
            )
