"""Benchmarks of the exact SMT backend (the paper's ⌛ column).

The paper reports Z3 solving times ranging from sub-second (small codes) to
hundreds of hours (large codes).  With a pure-Python SAT core the same
encoding is exercised here on reduced-but-structurally-identical instances;
the benchmark also cross-checks the optimal stage counts against the
architecture's shielding behaviour (storage zone => extra transfer stage).
"""

import pytest

from repro.arch import reduced_layout
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule

INSTANCES = {
    "single-gate": (2, [(0, 1)]),
    "chain-2": (3, [(0, 1), (1, 2)]),
    "disjoint-pairs": (4, [(0, 1), (2, 3)]),
    "triangle": (3, [(0, 1), (1, 2), (0, 2)]),
}


@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(INSTANCES))
def test_bench_smt_optimal_scheduling(benchmark, layout_kind, instance_name):
    """Time the full iterative-deepening optimal solve of a small instance."""
    num_qubits, gates = INSTANCES[instance_name]
    architecture = reduced_layout(layout_kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)
    scheduler = SMTScheduler(architecture, time_limit_per_instance=120)

    def solve():
        return scheduler.schedule(num_qubits, gates)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.found
    assert result.optimal
    validate_schedule(result.schedule, require_shielding=architecture.has_storage)


def test_bench_smt_shielding_costs_one_stage(benchmark):
    """The zoned architecture needs exactly one more stage on the chained
    instance (the Fig. 2 shielding behaviour)."""

    def compare():
        results = {}
        for kind in ("none", "bottom"):
            architecture = reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)
            scheduler = SMTScheduler(architecture, time_limit_per_instance=120)
            results[kind] = scheduler.schedule(3, [(0, 1), (1, 2)])
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    unshielded = results["none"].schedule
    shielded = results["bottom"].schedule
    assert unshielded.num_stages == 2
    assert shielded.num_stages == 3
    assert shielded.num_transfer_stages == unshielded.num_transfer_stages + 1
