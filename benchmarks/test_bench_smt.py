"""Benchmarks of the exact SMT backend (the paper's ⌛ column).

The paper reports Z3 solving times ranging from sub-second (small codes) to
hundreds of hours (large codes).  With a pure-Python SAT core the same
encoding is exercised here on reduced-but-structurally-identical instances;
the benchmark also cross-checks the optimal stage counts against the
architecture's shielding behaviour (storage zone => extra transfer stage),
pits the incremental minimum-stage search against the cold-start one,
certifies that bound-driven bisection reaches the same optima while probing
strictly fewer stage horizons on multi-horizon instances, races the
flat-array CDCL core against the preserved seed implementation
(propagation-throughput microbench), and checks the portfolio strategy
against the single-strategy field.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule
from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES
from repro.sat.bench import DEFAULT_CELLS, run_microbench

INSTANCES = SMT_INSTANCES

#: Linear probes every horizon between the analytic lower bound and the
#: optimum; an instance is "multi-horizon" when that walk visits at least
#: this many horizons — the regime bisection is built for.
MULTI_HORIZON = 3


def bench_layout(kind):
    return reduced_layout(kind, **REDUCED_LAYOUT_KWARGS)


def bench_problem(kind, instance_name):
    num_qubits, gates = INSTANCES[instance_name]
    return SchedulingProblem.from_gates(bench_layout(kind), num_qubits, gates)


@pytest.mark.parametrize("strategy", ["linear", "bisection", "warmstart", "portfolio"])
@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(INSTANCES))
def test_bench_smt_optimal_scheduling(benchmark, strategy, layout_kind, instance_name):
    """Time the full optimal solve of a small instance, per strategy."""
    problem = bench_problem(layout_kind, instance_name)
    scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)

    def solve():
        return scheduler.schedule(problem)

    report = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert report.found
    assert report.optimal
    assert report.strategy == strategy
    assert report.lower_bound <= report.schedule.num_stages
    validate_schedule(report.schedule, require_shielding=problem.shielding)


def test_bench_smt_shielding_costs_one_stage(benchmark):
    """The zoned architecture needs exactly one more stage on the chained
    instance (the Fig. 2 shielding behaviour)."""

    def compare():
        results = {}
        for kind in ("none", "bottom"):
            problem = SchedulingProblem.from_gates(
                bench_layout(kind), 3, [(0, 1), (1, 2)]
            )
            scheduler = SMTScheduler(time_limit_per_instance=120)
            results[kind] = scheduler.schedule(problem)
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    unshielded = results["none"].schedule
    shielded = results["bottom"].schedule
    assert unshielded.num_stages == 2
    assert shielded.num_stages == 3
    assert shielded.num_transfer_stages == unshielded.num_transfer_stages + 1


def test_bench_smt_incremental_beats_coldstart(benchmark):
    """The incremental search must win on total solve wall-clock while
    producing schedules with identical stage counts, all validator-clean."""

    def run(incremental):
        total_seconds = 0.0
        stage_counts = {}
        for layout_kind in ("none", "bottom"):
            scheduler = SMTScheduler(
                time_limit_per_instance=120, incremental=incremental
            )
            for name in INSTANCES:
                problem = bench_problem(layout_kind, name)
                report = scheduler.schedule(problem)
                assert report.found and report.optimal
                validate_schedule(report.schedule, require_shielding=problem.shielding)
                total_seconds += report.solver_seconds
                stage_counts[(layout_kind, name)] = report.schedule.num_stages
        return total_seconds, stage_counts

    def compare():
        return {"incremental": run(True), "coldstart": run(False)}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    incremental_seconds, incremental_stages = results["incremental"]
    coldstart_seconds, coldstart_stages = results["coldstart"]
    assert incremental_stages == coldstart_stages
    assert incremental_seconds < coldstart_seconds, (
        f"incremental search took {incremental_seconds:.2f}s, "
        f"cold-start {coldstart_seconds:.2f}s"
    )


def test_bench_smt_bisection_solves_fewer_horizons(benchmark):
    """On multi-horizon instances, bisection certifies the same optimum as
    linear while asking the solver to decide strictly fewer stage horizons."""

    def run(strategy):
        reports = {}
        scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)
        for layout_kind in ("none", "bottom"):
            for name in INSTANCES:
                problem = bench_problem(layout_kind, name)
                reports[(layout_kind, name)] = scheduler.schedule(problem)
        return reports

    def compare():
        return {"linear": run("linear"), "bisection": run("bisection")}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    multi_horizon_cells = 0
    for key, linear in results["linear"].items():
        bisection = results["bisection"][key]
        assert linear.found and linear.optimal
        assert bisection.found and bisection.optimal
        # Identical certified optima on every benchmark instance.
        assert linear.schedule.num_stages == bisection.schedule.num_stages, key
        assert bisection.lower_bound == linear.lower_bound
        assert bisection.upper_bound is not None
        assert bisection.upper_bound >= bisection.schedule.num_stages
        if linear.num_horizons >= MULTI_HORIZON:
            multi_horizon_cells += 1
            assert bisection.num_horizons < linear.num_horizons, (
                f"{key}: bisection probed {bisection.stages_tried} vs "
                f"linear {linear.stages_tried}"
            )
    assert multi_horizon_cells > 0, "suite lost its multi-horizon instances"


# --------------------------------------------------------------------------- #
# Flat-array CDCL core vs the preserved seed reference
# --------------------------------------------------------------------------- #
def test_bench_smt_propagation_throughput_microbench(benchmark):
    """The flat-array rewrite must beat the seed CDCL loop on every smoke
    formula (bottom/triangle and bottom/chain-2 probes): strictly faster
    wall-clock AND strictly higher propagation throughput, with identical
    SAT/UNSAT answers.

    Reading the output: each cell reports flat/reference seconds, the
    ``speedup`` (reference/flat wall-clock) and the ``throughput_ratio``
    (flat props/s over reference props/s); both must stay > 1.0 — the
    ``repro-nasp microbench`` CLI prints the same table and CI fails on the
    first cell at or below parity.
    """
    document = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    assert len(document["cells"]) == len(DEFAULT_CELLS)
    for cell in document["cells"]:
        name = f"{cell['layout']}/{cell['instance']}@{cell['num_stages']}"
        assert cell["flat"]["result"] == cell["reference"]["result"], name
        assert cell["speedup"] > 1.0, (
            f"{name}: flat core no longer strictly faster "
            f"(flat {cell['flat']['seconds']:.3f}s vs "
            f"reference {cell['reference']['seconds']:.3f}s)"
        )
        assert cell["throughput_ratio"] > 1.0, (
            f"{name}: flat propagation throughput regressed "
            f"({cell['flat']['propagations_per_second']:,.0f} vs "
            f"{cell['reference']['propagations_per_second']:,.0f} props/s)"
        )
    assert document["flat_faster_everywhere"]


# --------------------------------------------------------------------------- #
# Portfolio racing
# --------------------------------------------------------------------------- #
#: Fixed allowance for the portfolio's orchestration overhead (process
#: fork + result pickling + the race loop's 0.5 s poll granularity) on
#: cells where every strategy finishes in milliseconds; on wide-interval
#: cells the race wins outright.  Sized for a loaded 2-core CI runner.
PORTFOLIO_OVERHEAD_SECONDS = 1.0


def test_bench_smt_portfolio_matches_bisection_and_never_trails_the_field(benchmark):
    """The portfolio certifies the same optimal S as bisection on every
    smoke instance and never loses to the slowest single strategy by more
    than the fixed orchestration allowance."""

    def run_all():
        reports = {}
        for strategy in ("linear", "bisection", "warmstart", "portfolio"):
            scheduler = SMTScheduler(time_limit_per_instance=120, strategy=strategy)
            for layout_kind in ("none", "bottom"):
                for name in INSTANCES:
                    problem = bench_problem(layout_kind, name)
                    reports[(strategy, layout_kind, name)] = scheduler.schedule(
                        problem
                    )
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for layout_kind in ("none", "bottom"):
        for name in INSTANCES:
            portfolio = reports[("portfolio", layout_kind, name)]
            bisection = reports[("bisection", layout_kind, name)]
            assert portfolio.found and portfolio.optimal, (layout_kind, name)
            assert (
                portfolio.schedule.num_stages == bisection.schedule.num_stages
            ), (layout_kind, name)
            assert portfolio.winner is not None, (layout_kind, name)
            slowest = max(
                reports[(strategy, layout_kind, name)].solver_seconds
                for strategy in ("linear", "bisection", "warmstart")
            )
            assert portfolio.solver_seconds <= slowest + PORTFOLIO_OVERHEAD_SECONDS, (
                f"{layout_kind}/{name}: portfolio took "
                f"{portfolio.solver_seconds:.2f}s vs slowest single "
                f"strategy {slowest:.2f}s"
            )
