"""Benchmark regenerating Figure 4 (ASP differences vs. the baseline)."""


from repro.evaluation import figure4_from_rows, format_figure4, run_table1


def test_bench_figure4(benchmark):
    """Regenerate the Figure 4 bars and check their qualitative shape."""

    def figure4():
        rows = run_table1()
        return rows, figure4_from_rows(rows)

    rows, bars = benchmark.pedantic(figure4, rounds=1, iterations=1)
    print()
    print(format_figure4(bars))

    # Every bar is positive: the shielded layouts always win (paper Fig. 4).
    assert all(bar.delta_asp > 0 for bar in bars)

    # The improvement grows with the code size: the largest code (honeycomb)
    # gains more than the smallest (Steane), as in the paper.
    by_code = {}
    for bar in bars:
        by_code.setdefault(bar.code, []).append(bar.delta_asp)
    assert max(by_code["honeycomb"]) > max(by_code["steane"])
    assert max(by_code["hamming"]) > max(by_code["steane"])
