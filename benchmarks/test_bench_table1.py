"""Benchmark regenerating Table I (layout comparison).

Each benchmark schedules one code on one layout (the unit of work behind a
Table I cell); the session-scoped report prints the full table — the same
rows the paper reports — at the end of the run.
"""

import pytest

from repro.arch import evaluation_layouts
from repro.core.problem import SchedulingProblem
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.evaluation import format_table1, run_table1
from repro.metrics import approximate_success_probability
from repro.qec import available_codes

LAYOUTS = evaluation_layouts()


@pytest.mark.parametrize("code_name", available_codes())
@pytest.mark.parametrize("layout_name", list(LAYOUTS))
def test_bench_table1_cell(benchmark, prep_circuits, code_name, layout_name):
    """Schedule + validate + score one (code, layout) cell of Table I."""
    code, prep = prep_circuits[code_name]
    architecture = LAYOUTS[layout_name]

    def cell():
        problem = SchedulingProblem.from_circuit(architecture, prep)
        schedule = StructuredScheduler().schedule(problem)
        validate_schedule(schedule, require_shielding=problem.shielding)
        return approximate_success_probability(schedule, prep)

    breakdown = benchmark(cell)
    assert 0.0 < breakdown.asp <= 1.0


def test_bench_table1_full_report(benchmark):
    """Regenerate the whole of Table I and check the paper's main claims."""
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    for row in rows:
        baseline = row.layouts["(1) No Shielding"]
        bottom = row.layouts["(2) Bottom Storage"]
        double = row.layouts["(3) Double-Sided Storage"]
        # Paper, Sec. V-C: shielding consistently improves the ASP ...
        assert bottom.asp > baseline.asp
        assert double.asp > baseline.asp
        # ... and the double-sided layout is at least as good as bottom-only.
        assert double.asp >= bottom.asp - 1e-9
