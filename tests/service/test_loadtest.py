"""Tests for the load-test harness and its bench-schema-v8 payload."""

import json

import pytest

from repro.evaluation.runner import load_document, save_results
from repro.service.loadtest import (
    DEFAULT_INSTANCES,
    _build_requests,
    format_loadtest,
    loadtest_result,
    percentile,
    run_loadtest,
)


# --------------------------------------------------------------------------- #
# Nearest-rank percentiles
# --------------------------------------------------------------------------- #
def test_percentile_nearest_rank():
    sample = [4.0, 1.0, 3.0, 2.0]
    assert percentile(sample, 0.50) == 2.0
    assert percentile(sample, 0.25) == 1.0
    assert percentile(sample, 0.99) == 4.0
    assert percentile(sample, 1.00) == 4.0
    assert percentile([7.0], 0.50) == 7.0


def test_percentile_reports_an_observed_value():
    # Nearest-rank never interpolates: the reported latency is one a
    # request actually experienced.
    sample = [0.010, 0.011, 0.012, 1.500]
    assert percentile(sample, 0.99) in sample
    assert percentile(sample, 0.50) in sample


def test_percentile_rejects_bad_inputs():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# --------------------------------------------------------------------------- #
# Traffic generation
# --------------------------------------------------------------------------- #
def test_build_requests_is_seeded_and_isomorphic():
    from repro.core.canonical import canonical_key
    from repro.service.server import problem_from_document

    first = _build_requests(8, DEFAULT_INSTANCES, 3, "bottom", "bisection", None)
    again = _build_requests(8, DEFAULT_INSTANCES, 3, "bottom", "bisection", None)
    other = _build_requests(8, DEFAULT_INSTANCES, 4, "bottom", "bisection", None)
    assert first == again  # same seed -> byte-identical traffic
    assert first != other  # different seed -> different relabelings

    # Requests for the same base instance are relabeled copies: canonical
    # keys collide within a base instance even when the gate bytes differ.
    keys = [canonical_key(problem_from_document(doc)) for doc in first]
    assert keys[0] == keys[4] and keys[1] == keys[5]
    assert len(set(keys)) == len(DEFAULT_INSTANCES)


def test_build_requests_round_robins_the_mix():
    docs = _build_requests(6, ("triangle", "ring-4"), 0, "bottom", "linear", 2.5)
    assert [len(doc["gates"]) for doc in docs] == [3, 4, 3, 4, 3, 4]
    assert all(doc["strategy"] == "linear" for doc in docs)
    assert all(doc["deadline"] == 2.5 for doc in docs)


def test_run_loadtest_validates_inputs():
    with pytest.raises(ValueError, match="unknown instances"):
        run_loadtest(requests=2, instances=("no-such-instance",))
    with pytest.raises(ValueError, match="at least one request"):
        run_loadtest(requests=0)


# --------------------------------------------------------------------------- #
# End to end: the harness must demonstrate a warm cache
# --------------------------------------------------------------------------- #
def test_loadtest_end_to_end_reports_latency_and_cache_hits(tmp_path):
    payload = run_loadtest(
        requests=8, concurrency=2, jobs=2, seed=11, instances=("triangle",)
    )
    assert payload["ok"] == 8
    assert payload["errors"] == 0
    assert payload["rejected"] == 0
    assert payload["transport_errors"] == 0
    # Eight relabeled copies of one instance: everything after the first
    # solve (modulo concurrent misses racing the first certificate) is a
    # canonical-cache hit.
    assert payload["cache_hits"] >= 1
    assert payload["cache_hit_rate"] > 0
    assert payload["cache_hits"] + payload["cache_misses"] == 8
    assert payload["terminations"] == {"certified": 8}
    assert payload["latency_p50_seconds"] <= payload["latency_p99_seconds"]
    assert payload["latency_p99_seconds"] <= payload["latency_max_seconds"]

    # The payload round-trips through the bench schema: v8 carries the
    # latency/cache keys, v7 strips them.
    result = loadtest_result(payload)
    assert result.status == "ok"
    v8_path = tmp_path / "v8.json"
    v7_path = tmp_path / "v7.json"
    save_results([result], v8_path, schema_version=8)
    save_results([result], v7_path, schema_version=7)
    v8_doc = load_document(v8_path)
    v7_doc = json.loads(v7_path.read_text(encoding="utf-8"))
    assert v8_doc["version"] == 8
    assert v8_doc["results"][0]["payload"]["cache_hit_rate"] > 0
    v7_payload = v7_doc["results"][0]["payload"]
    for key in ("latency_p50_seconds", "latency_p99_seconds", "cache_hit_rate"):
        assert key in v8_doc["results"][0]["payload"]
        assert key not in v7_payload

    text = format_loadtest(payload)
    assert "cache hit-rate" in text
    assert "latency p50" in text


def test_loadtest_result_flags_failed_requests():
    payload = {
        "requests": 2,
        "ok": 1,
        "errors": 1,
        "rejected": 0,
        "seconds_total": 1.0,
    }
    result = loadtest_result(payload)
    assert result.status == "error"
    assert "1 request(s) failed" in result.error
