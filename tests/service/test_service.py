"""End-to-end and concurrency tests of the scheduling service.

Every test runs a real service on an ephemeral localhost port — real
worker processes, real HTTP over a real socket, the real chunked-ndjson
stream — because the service's contract is precisely its wire behaviour:
event order, termination stamps, cache semantics, 503 backpressure, and
crash containment.
"""

import asyncio

from repro.core.report import TERMINATION_CERTIFIED
from repro.evaluation.runner import SMT_INSTANCES
from repro.service import get_json, load_ledger, start_service, stream_schedule
from repro.service.server import TERMINATION_PENDING

#: Triangle under the relabeling 0->2, 1->0, 2->1 with shuffled gate and
#: endpoint order: byte-distinct from SMT_INSTANCES["triangle"] but
#: isomorphic to it.
RELABELED_TRIANGLE = [[1, 0], [2, 1], [0, 2]]


def _doc(name="triangle", gates=None, **extra):
    num_qubits, instance_gates = SMT_INSTANCES[name]
    return {
        "num_qubits": num_qubits,
        "gates": [list(gate) for gate in (gates or instance_gates)],
        "layout": "bottom",
        **extra,
    }


def _run(coro_fn, **config):
    """Start a service, run *coro_fn(running)*, always tear down."""

    async def _main():
        running = await start_service(**config)
        try:
            return await coro_fn(running)
        finally:
            await running.aclose()

    return asyncio.run(_main())


async def _wait_for(predicate, running, deadline=30.0):
    """Poll /v1/stats until *predicate(stats)* holds."""
    for _ in range(int(deadline / 0.05)):
        _status, stats = await get_json(running.host, running.port, "/v1/stats")
        if predicate(stats):
            return stats
        await asyncio.sleep(0.05)
    raise AssertionError("condition not reached before the deadline")


# --------------------------------------------------------------------------- #
# The anytime stream
# --------------------------------------------------------------------------- #
def test_stream_delivers_witness_before_certified_result():
    async def scenario(running):
        status, events = await stream_schedule(
            running.host, running.port, _doc("ring-4", deadline=60.0)
        )
        assert status == 200
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "witness", "result"]

        accepted, witness, result = events
        assert accepted["termination"] == TERMINATION_PENDING
        assert accepted["cache"] == "miss"
        assert accepted["request_id"].startswith("req-")
        assert len(accepted["canonical_key"]) == 64

        # The witness is a *validated* schedule delivered strictly before
        # the certified result: an anytime upper-bound certificate with
        # full bound provenance.
        assert witness["termination"] == TERMINATION_PENDING
        assert witness["validated"] is True
        assert witness["found"] is True
        assert witness["lower_bound"] >= 1
        assert witness["lower_bound_source"]
        assert witness["upper_bound_source"].startswith("structured-")
        assert witness["num_stages"] >= witness["lower_bound"]

        assert result["termination"] == TERMINATION_CERTIFIED
        assert result["optimal"] is True
        assert result["cached"] is False
        assert result["validated"] is True
        # The exact optimum can only confirm or improve the witness.
        assert result["num_stages"] <= witness["num_stages"]
        assert result["lower_bound"] == result["num_stages"]

    _run(scenario, jobs=1, default_time_limit=60.0)


def test_tight_deadline_still_delivers_validated_witness_first():
    async def scenario(running):
        # A deadline far too small to finish any SMT probe: the witness
        # (validated, termination "pending") must still stream, and the
        # result degrades to termination "deadline" instead of erroring —
        # the client always ends the exchange holding a usable schedule.
        status, events = await stream_schedule(
            running.host,
            running.port,
            _doc("triangle", strategy="linear", deadline=0.001),
        )
        assert status == 200
        kinds = [event["event"] for event in events]
        assert kinds == ["accepted", "witness", "result"]
        witness, result = events[1], events[2]
        assert witness["termination"] == TERMINATION_PENDING
        assert witness["validated"] is True
        assert result["termination"] == "deadline"
        assert result["optimal"] is False
        assert result["cached"] is False
        # Uncertified results must never poison the cache: a relabeled
        # resubmission with a generous budget certifies via the solver.
        status, events = await stream_schedule(
            running.host,
            running.port,
            _doc("triangle", gates=RELABELED_TRIANGLE, strategy="linear"),
        )
        assert status == 200
        assert events[0]["cache"] == "miss"
        assert events[-1]["termination"] == TERMINATION_CERTIFIED

    _run(scenario, jobs=1, default_time_limit=60.0)


def test_isomorphic_resubmission_is_served_from_cache():
    async def scenario(running):
        # First submission certifies via the solver.  The linear strategy
        # on the triangle always spends SMT probes (bisection can certify
        # witness-only with zero probes, which would be indistinguishable
        # from a cache hit by probe count).
        status, first = await stream_schedule(
            running.host,
            running.port,
            _doc("triangle", strategy="linear"),
        )
        assert status == 200
        first_result = first[-1]
        assert first_result["event"] == "result"
        assert first_result["termination"] == TERMINATION_CERTIFIED
        assert first_result["cached"] is False
        assert first_result["solver_probes"] >= 1

        # Second submission: isomorphic but byte-distinct (relabeled
        # qubits, shuffled gates).  Served from cache: zero solver probes,
        # the identical certified optimum, no witness event needed.
        status, second = await stream_schedule(
            running.host,
            running.port,
            _doc("triangle", gates=RELABELED_TRIANGLE, strategy="linear"),
        )
        assert status == 200
        assert [event["event"] for event in second] == ["accepted", "result"]
        assert second[0]["cache"] == "hit"
        assert second[0]["canonical_key"] == first[0]["canonical_key"]
        second_result = second[-1]
        assert second_result["cached"] is True
        assert second_result["solver_probes"] == 0
        assert second_result["termination"] == TERMINATION_CERTIFIED
        assert second_result["num_stages"] == first_result["num_stages"]
        assert second_result["lower_bound"] == first_result["lower_bound"]

        _status, stats = await get_json(running.host, running.port, "/v1/stats")
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        # The cache hit consumed no pool work: exactly one task ran.
        assert stats["pool"]["tasks_completed"] == 1

    _run(scenario, jobs=1, default_time_limit=60.0)


def test_concurrent_isomorphic_burst_all_succeed():
    async def scenario(running):
        docs = [
            _doc("triangle"),
            _doc("triangle", gates=RELABELED_TRIANGLE),
            _doc("triangle", gates=[[2, 0], [0, 1], [1, 2]]),
            _doc("single-gate"),
        ]
        outcomes = await asyncio.gather(
            *(
                stream_schedule(running.host, running.port, doc)
                for doc in docs
            )
        )
        for status, events in outcomes:
            assert status == 200
            result = events[-1]
            assert result["event"] == "result"
            assert result["termination"] == TERMINATION_CERTIFIED
        _status, stats = await get_json(running.host, running.port, "/v1/stats")
        assert stats["counters"]["requests_total"] == 4
        assert stats["counters"]["rejected_queue_full"] == 0

    _run(scenario, jobs=2, queue_limit=8, default_time_limit=60.0)


# --------------------------------------------------------------------------- #
# Backpressure: the bounded queue answers 503, it does not buffer
# --------------------------------------------------------------------------- #
def test_queue_full_is_rejected_with_503():
    async def scenario(running):
        # Occupy the single worker with a sleeping request, fill the
        # one-slot queue with a second, then a third must bounce with 503
        # before any work starts.
        blocker = asyncio.ensure_future(
            stream_schedule(
                running.host,
                running.port,
                _doc("single-gate", selftest={"op": "sleep", "seconds": 1.5}),
            )
        )
        await _wait_for(lambda s: s["pool"]["busy"] == 1, running)
        queued = asyncio.ensure_future(
            stream_schedule(
                running.host,
                running.port,
                _doc("single-gate", selftest={"op": "sleep", "seconds": 0.1}),
            )
        )
        await _wait_for(lambda s: s["queue"]["depth"] == 1, running)

        status, body = await stream_schedule(
            running.host, running.port, _doc("triangle")
        )
        assert status == 503
        assert body[0]["error"] == "request queue is full"
        assert body[0]["queue_limit"] == 1

        # The rejected request harmed nobody: both accepted requests
        # complete normally once the worker frees up.
        for task in (blocker, queued):
            task_status, events = await task
            assert task_status == 200
            assert events[-1]["termination"] == TERMINATION_CERTIFIED
        _status, stats = await get_json(running.host, running.port, "/v1/stats")
        assert stats["counters"]["rejected_queue_full"] == 1

    _run(
        scenario,
        jobs=1,
        queue_limit=1,
        allow_selftest=True,
        default_time_limit=60.0,
    )


# --------------------------------------------------------------------------- #
# Crash containment: one request degrades, the pool survives
# --------------------------------------------------------------------------- #
def test_worker_crash_degrades_request_but_not_the_pool():
    async def scenario(running):
        status, events = await stream_schedule(
            running.host,
            running.port,
            _doc("single-gate", selftest={"op": "crash", "exit_code": 41}),
        )
        assert status == 200
        result = events[-1]
        assert result["event"] == "result"
        assert result["termination"] == "backend-error"
        assert result["found"] is False
        assert "crashed" in result["error"]

        # The pool replaced the dead worker underneath: the next request
        # on the same service certifies normally.
        status, events = await stream_schedule(
            running.host, running.port, _doc("triangle")
        )
        assert status == 200
        assert events[-1]["termination"] == TERMINATION_CERTIFIED

        _status, health = await get_json(
            running.host, running.port, "/v1/healthz"
        )
        assert health["status"] == "ok"
        assert health["pool"]["worker_restarts"] == 1
        assert health["counters"]["worker_crashes"] == 1
        assert all(worker["alive"] for worker in health["workers"])

    _run(scenario, jobs=1, allow_selftest=True, default_time_limit=60.0)


def test_selftest_ops_are_rejected_unless_enabled():
    async def scenario(running):
        status, body = await stream_schedule(
            running.host,
            running.port,
            _doc("single-gate", selftest={"op": "crash"}),
        )
        assert status == 400
        assert "selftest" in body[0]["error"]

    _run(scenario, jobs=1)


# --------------------------------------------------------------------------- #
# Validation and routing
# --------------------------------------------------------------------------- #
def test_invalid_documents_get_400():
    async def scenario(running):
        bad_docs = [
            {},  # missing everything
            {"num_qubits": 2},  # missing gates
            {"num_qubits": 2, "gates": [[0, 0]]},  # self-gate
            {"num_qubits": 2, "gates": [[0, 5]]},  # out of range
            {"num_qubits": 3, "gates": [[0, 1]], "layout": 7},  # bad layout
            {"num_qubits": 3, "gates": [[0, 1]], "layout": "full:nope"},
        ]
        for doc in bad_docs:
            status, body = await stream_schedule(
                running.host, running.port, doc
            )
            assert status == 400, doc
            assert "error" in body[0]
        _status, stats = await get_json(running.host, running.port, "/v1/stats")
        assert stats["counters"]["invalid_requests"] == len(bad_docs)
        assert stats["counters"]["requests_total"] == 0

    _run(scenario, jobs=1)


def test_unknown_routes_and_methods():
    async def scenario(running):
        status, _body = await get_json(running.host, running.port, "/v1/nope")
        assert status == 404
        status, _body = await get_json(
            running.host, running.port, "/v1/schedule"
        )
        assert status == 405

    _run(scenario, jobs=1)


# --------------------------------------------------------------------------- #
# Persistence: the cache and the ledger survive a service restart
# --------------------------------------------------------------------------- #
def test_cache_and_ledger_survive_restart(tmp_path):
    cache_path = tmp_path / "cache.jsonl"
    ledger_path = tmp_path / "ledger.jsonl"

    async def first_life(running):
        status, events = await stream_schedule(
            running.host, running.port, _doc("triangle")
        )
        assert status == 200
        assert events[-1]["termination"] == TERMINATION_CERTIFIED
        return events[-1]["num_stages"]

    async def second_life(running):
        # The relabeled resubmission hits the *reloaded* cache: a new
        # process, zero solver probes, the same certified optimum.
        status, events = await stream_schedule(
            running.host, running.port, _doc("triangle", gates=RELABELED_TRIANGLE)
        )
        assert status == 200
        assert events[0]["cache"] == "hit"
        assert events[-1]["cached"] is True
        assert events[-1]["solver_probes"] == 0
        return events[-1]["num_stages"]

    first_stages = _run(
        first_life,
        jobs=1,
        cache_path=cache_path,
        ledger_path=ledger_path,
        default_time_limit=60.0,
    )
    second_stages = _run(
        second_life, jobs=1, cache_path=cache_path, ledger_path=ledger_path
    )
    assert first_stages == second_stages

    state = load_ledger(ledger_path)
    assert len(state.completed) == 2
    verdicts = sorted(
        (entry["cached"], entry["termination"])
        for entry in state.completed.values()
    )
    assert verdicts == [(False, "certified"), (True, "certified")]
    assert state.crashed_cells() == []
