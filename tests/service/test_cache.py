"""Unit tests for the certified-result cache and the request ledger."""

import json

import pytest

from repro.core.report import TERMINATION_CERTIFIED
from repro.service.cache import CertifiedResultCache
from repro.service.ledger import RequestLedger, load_ledger

KEY_A = "a" * 64
KEY_B = "b" * 64


def _certified(num_stages=3, **extra):
    return {
        "found": True,
        "optimal": True,
        "termination": TERMINATION_CERTIFIED,
        "num_stages": num_stages,
        **extra,
    }


# --------------------------------------------------------------------------- #
# Admission policy
# --------------------------------------------------------------------------- #
def test_cache_admits_only_certified_entries():
    cache = CertifiedResultCache()
    assert cache.put(KEY_A, _certified()) is True
    for termination in ("deadline", "backend-error", "pending", None):
        with pytest.raises(ValueError):
            cache.put(KEY_B, {"found": True, "termination": termination})
    assert KEY_B not in cache


def test_cache_first_certificate_wins():
    cache = CertifiedResultCache()
    assert cache.put(KEY_A, _certified(num_stages=3)) is True
    # A second certificate for the same key is a no-op, not an overwrite:
    # certified optima for one canonical key must agree, so the first one
    # is as good as any later one.
    assert cache.put(KEY_A, _certified(num_stages=99)) is False
    assert cache.get(KEY_A)["num_stages"] == 3


def test_cache_get_returns_a_copy():
    cache = CertifiedResultCache()
    cache.put(KEY_A, _certified())
    entry = cache.get(KEY_A)
    entry["num_stages"] = 1234
    assert cache.get(KEY_A)["num_stages"] == 3


def test_cache_stats_track_hits_and_misses():
    cache = CertifiedResultCache()
    cache.put(KEY_A, _certified())
    assert cache.get(KEY_A) is not None
    assert cache.get(KEY_B) is None
    assert cache.get(KEY_A) is not None
    stats = cache.stats()
    assert stats == {
        "entries": 1,
        "hits": 2,
        "misses": 1,
        "hit_rate": pytest.approx(2 / 3),
    }
    assert len(cache) == 1


# --------------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------------- #
def test_cache_persists_and_reloads(tmp_path):
    path = tmp_path / "cache.jsonl"
    first = CertifiedResultCache(path=path)
    first.put(KEY_A, _certified(num_stages=4))
    first.close()

    second = CertifiedResultCache(path=path)
    assert second.get(KEY_A)["num_stages"] == 4
    assert len(second) == 1
    second.close()


def test_cache_reload_tolerates_torn_tail(tmp_path):
    # Flush-per-line means a crash can leave at most one torn final line;
    # reload must keep every complete entry and drop the torn one.
    path = tmp_path / "cache.jsonl"
    cache = CertifiedResultCache(path=path)
    cache.put(KEY_A, _certified())
    cache.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "' + KEY_B + '", "entry": {"fo')

    reloaded = CertifiedResultCache(path=path)
    assert KEY_A in reloaded
    assert KEY_B not in reloaded
    reloaded.close()


def test_cache_file_lines_are_valid_json(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = CertifiedResultCache(path=path)
    cache.put(KEY_A, _certified())
    cache.put(KEY_B, _certified(num_stages=5))
    cache.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    records = [json.loads(line) for line in lines if line.strip()]
    assert {record["key"] for record in records} == {KEY_A, KEY_B}
    assert all("entry" in record for record in records)


# --------------------------------------------------------------------------- #
# Request ledger
# --------------------------------------------------------------------------- #
def test_ledger_round_trip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with RequestLedger(path) as ledger:
        ledger.record_request("req-000001")
        ledger.record_verdict(
            "req-000001",
            {"termination": "certified", "cached": False, "status": "ok"},
        )
        ledger.record_request("req-000002")  # accepted, never finished

    state = load_ledger(path)
    assert state.completed["req-000001"]["termination"] == "certified"
    assert state.crashed_cells() == ["req-000002"]
