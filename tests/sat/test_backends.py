"""Tests for the pluggable SAT backend subsystem.

Covers the registry, the capability flags, differential fuzzing of every
registered backend against a brute-force oracle, and the external
``dimacs-subprocess`` backend — driven through the *fake* solver binaries
of ``tests/conftest.py`` (both the competition ``v``-line convention and
the minisat result-file convention), so the real subprocess machinery is
exercised deterministically with no system solver installed.
"""

import random

import pytest

from test_sat_solver import brute_force_satisfiable

from repro.sat import CNF, CDCLSolver, ReferenceCDCLSolver, SolveResult
from repro.sat.backend import (
    DEFAULT_BACKEND,
    SOLVER_BINARY_ENV,
    DimacsSubprocessBackend,
    SatBackend,
    available_backends,
    backend_info,
    create_backend,
    find_solver_binary,
    usable_backends,
)

@pytest.fixture
def fake_solver(monkeypatch, write_fake_solver):
    """A competition-style fake binary installed as the external solver."""
    script = write_fake_solver("fakesat")
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    return script


@pytest.fixture
def fake_minisat(monkeypatch, write_fake_solver):
    """A result-file-style fake binary (the name triggers the convention)."""
    script = write_fake_solver("minisat-fake", style="result-file")
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    return script


@pytest.fixture
def no_solver(monkeypatch):
    """Deterministically hide every external solver binary."""
    monkeypatch.setenv(SOLVER_BINARY_ENV, "/nonexistent/solver-binary")


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_builtin_backends_are_registered():
    names = available_backends()
    assert "flat" in names
    assert "flat-nochrono" in names
    assert "reference" in names
    assert "dimacs-subprocess" in names
    assert "ipasir" in names
    assert DEFAULT_BACKEND == "flat"


def test_flat_nochrono_is_the_flat_core_with_both_knobs_off():
    solver = create_backend("flat-nochrono")
    assert isinstance(solver, CDCLSolver)
    assert solver._chrono is False
    assert solver._inprocessing is False
    # Not raced by the portfolio: it exists for differential measurement.
    assert backend_info("flat-nochrono").race_variant is False


def test_create_backend_filters_options_by_declaration():
    # Declared options reach the factory; undeclared ones and Nones are
    # dropped (options are heuristics — never a reason to fail a solve).
    solver = create_backend(
        "flat", chrono=False, inprocessing=None, bogus_option=3
    )
    assert solver._chrono is False
    assert solver._inprocessing is True  # None fell back to the default
    reference = create_backend("reference", chrono=False)
    assert isinstance(reference, ReferenceCDCLSolver)  # silently dropped


def test_create_backend_instantiates_the_registered_classes():
    assert isinstance(create_backend("flat"), CDCLSolver)
    assert isinstance(create_backend("reference"), ReferenceCDCLSolver)
    assert isinstance(create_backend(None), CDCLSolver)  # default


def test_in_process_backends_satisfy_the_protocol():
    for name in ("flat", "reference"):
        solver = create_backend(name)
        assert isinstance(solver, SatBackend)
        assert solver.backend_name == name
        assert solver.supports_assumptions
        assert solver.supports_phase_hints


def test_unknown_backend_name_raises_with_listing():
    with pytest.raises(ValueError, match="dimacs-subprocess"):
        create_backend("no-such-backend")
    with pytest.raises(ValueError, match="unknown SAT backend"):
        backend_info("no-such-backend")


def test_unavailable_backend_is_registered_but_not_usable(no_solver):
    assert "dimacs-subprocess" in available_backends()
    assert "dimacs-subprocess" not in usable_backends()
    assert find_solver_binary() is None
    with pytest.raises(RuntimeError, match="unavailable"):
        create_backend("dimacs-subprocess")


def test_fake_solver_makes_the_subprocess_backend_usable(fake_solver):
    assert "dimacs-subprocess" in usable_backends()
    backend = create_backend("dimacs-subprocess")
    assert isinstance(backend, DimacsSubprocessBackend)
    assert backend.binary == str(fake_solver)
    assert isinstance(backend, SatBackend)
    assert not backend.supports_phase_hints


# --------------------------------------------------------------------------- #
# Differential fuzzing across the whole registry
# --------------------------------------------------------------------------- #
def _random_cnf(rng: random.Random) -> CNF:
    n_vars = rng.randint(3, 8)
    cnf = CNF(num_vars=n_vars)
    for _ in range(rng.randint(2, int(4.4 * n_vars))):
        size = rng.randint(1, 3)
        chosen = rng.sample(range(1, n_vars + 1), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


@pytest.mark.parametrize("name", available_backends())
@pytest.mark.parametrize("seed", range(8))
def test_every_available_backend_agrees_with_brute_force(name, seed):
    """Registry-wide differential fuzz: identical SAT/UNSAT answers and
    genuinely satisfying models from every backend that is usable right now
    (the subprocess backend skips when no solver binary is installed)."""
    if name not in usable_backends():
        pytest.skip(f"backend {name!r} is not usable in this environment")
    cnf = _random_cnf(random.Random(7000 + seed))
    expected = brute_force_satisfiable(cnf)
    solver = create_backend(name)
    solver.add_cnf(cnf)
    result = solver.solve()
    assert result is not SolveResult.UNKNOWN
    assert (result is SolveResult.SAT) == expected, name
    if result is SolveResult.SAT:
        assert cnf.evaluate(solver.model()), name


def _unsat_heavy_cnf(rng: random.Random) -> CNF:
    """Dense random 3-CNF at ~5.2 clauses per variable: mostly UNSAT, with
    real refutation work (conflict analysis, not single-clause
    contradictions) — the regime chronological backtracking and
    inprocessing actually exercise."""
    n_vars = rng.randint(5, 9)
    cnf = CNF(num_vars=n_vars)
    for _ in range(int(5.2 * n_vars)):
        chosen = rng.sample(range(1, n_vars + 1), 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


@pytest.mark.parametrize("seed", range(10))
def test_chrono_reference_and_ipasir_agree_on_unsat_heavy_formulas(seed):
    """Differential fuzz on UNSAT-heavy formulas: the flat core with
    *aggressive* chrono + inprocessing (threshold/interval 1), the plain
    chrono-off core, the seed reference, and — when a library is loadable —
    the IPASIR backend must return identical verdicts, with every SAT model
    genuinely satisfying the formula."""
    cnf = _unsat_heavy_cnf(random.Random(31000 + seed))
    expected = brute_force_satisfiable(cnf)
    solvers = [
        create_backend("flat", chrono_threshold=1, inprocess_interval=1),
        create_backend("flat-nochrono"),
        create_backend("reference"),
    ]
    if "ipasir" in usable_backends():
        solvers.append(create_backend("ipasir"))
    for solver in solvers:
        solver.add_cnf(cnf)
        result = solver.solve()
        assert result is not SolveResult.UNKNOWN
        assert (result is SolveResult.SAT) == expected, solver.backend_name
        if result is SolveResult.SAT:
            assert cnf.evaluate(solver.model()), solver.backend_name


@pytest.mark.parametrize("seed", range(6))
def test_backends_agree_under_assumptions_on_unsat_heavy_formulas(seed):
    """Same differential net under assumption literals (the incremental
    surface the SMT layer drives): identical verdicts, and every model
    honours both the formula and the assumptions."""
    rng = random.Random(32000 + seed)
    cnf = _unsat_heavy_cnf(rng)
    assumptions = [
        v if rng.random() < 0.5 else -v
        for v in rng.sample(range(1, cnf.num_vars + 1), 2)
    ]
    solvers = [
        create_backend("flat", chrono_threshold=1, inprocess_interval=1),
        create_backend("reference"),
    ]
    if "ipasir" in usable_backends():
        solvers.append(create_backend("ipasir"))
    verdicts = set()
    for solver in solvers:
        solver.add_cnf(cnf)
        result = solver.solve(assumptions=assumptions)
        if result is SolveResult.SAT:
            model = solver.model()
            assert cnf.evaluate(model), solver.backend_name
            for lit in assumptions:
                assert model[abs(lit)] is (lit > 0), solver.backend_name
        verdicts.add(result)
    assert len(verdicts) == 1, verdicts


@pytest.mark.parametrize("style", ["competition", "result-file"])
@pytest.mark.parametrize("seed", range(6))
def test_subprocess_backend_agrees_with_flat_core(
    monkeypatch, write_fake_solver, style, seed
):
    """The DIMACS pipe, exit codes, and both model conventions round-trip."""
    name = "fakesat" if style == "competition" else "minisat-fake"
    script = write_fake_solver(name, style=style)
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    cnf = _random_cnf(random.Random(9000 + seed))
    flat = CDCLSolver()
    flat.add_cnf(cnf)
    expected = flat.solve()
    backend = create_backend("dimacs-subprocess")
    backend.add_cnf(cnf)
    result = backend.solve()
    assert result is expected
    if result is SolveResult.SAT:
        assert cnf.evaluate(backend.model())


# --------------------------------------------------------------------------- #
# Subprocess backend behaviour
# --------------------------------------------------------------------------- #
def test_subprocess_backend_emulates_assumptions(fake_solver):
    backend = create_backend("dimacs-subprocess")
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    assert backend.solve(assumptions=[-a]) is SolveResult.SAT
    assert backend.model()[b] is True
    assert backend.solve(assumptions=[-a, -b]) is SolveResult.UNSAT
    # The base formula is untouched by the unit-clause emulation.
    assert backend.solve() is SolveResult.SAT
    assert backend.num_clauses == 1


def test_subprocess_backend_incremental_clause_addition(fake_minisat):
    backend = create_backend("dimacs-subprocess")
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    assert backend.solve() is SolveResult.SAT
    backend.add_clause([-a])
    assert backend.solve() is SolveResult.SAT
    assert backend.model()[b] is True
    backend.add_clause([-b])
    assert backend.solve() is SolveResult.UNSAT


def test_subprocess_backend_empty_clause_short_circuits(fake_solver):
    backend = create_backend("dimacs-subprocess")
    backend.new_var()
    assert backend.add_clause([]) is False
    assert backend.solve() is SolveResult.UNSAT
    assert backend.statistics()["subprocess_solves"] == 0  # no subprocess run


def test_subprocess_backend_phase_hints_are_a_silent_noop(fake_solver):
    backend = create_backend("dimacs-subprocess")
    v = backend.new_var()
    backend.add_clause([v, -v])
    backend.set_phase_hints({v: True})  # must not raise
    assert backend.solve() is SolveResult.SAT


def test_subprocess_backend_statistics_count_solves(fake_solver):
    backend = create_backend("dimacs-subprocess")
    v = backend.new_var()
    backend.add_clause([v])
    assert backend.solve() is SolveResult.SAT
    assert backend.solve(assumptions=[v]) is SolveResult.SAT
    counters = backend.statistics()
    assert counters["subprocess_solves"] == 2
    assert counters["solve_seconds"] > 0
    assert "propagations" not in counters  # not observable through a pipe


def test_subprocess_backend_caches_the_dimacs_dump_between_probes(fake_solver):
    """Repeated probes on an unchanged clause DB reuse the memoised DIMACS
    body (assumption units only touch the header clause count); adding a
    clause invalidates the cache."""
    backend = create_backend("dimacs-subprocess")
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    assert backend.solve() is SolveResult.SAT  # cold dump
    assert backend.statistics()["dimacs_dump_cache_hits"] == 0
    assert backend.solve(assumptions=[-a]) is SolveResult.SAT
    assert backend.solve(assumptions=[-b]) is SolveResult.SAT
    assert backend.statistics()["dimacs_dump_cache_hits"] == 2
    backend.add_clause([-a])  # clause DB changed: dump must be rebuilt
    assert backend.solve(assumptions=[-b]) is SolveResult.UNSAT
    assert backend.statistics()["dimacs_dump_cache_hits"] == 2
    assert backend.solve() is SolveResult.SAT
    assert backend.statistics()["dimacs_dump_cache_hits"] == 3


def test_subprocess_backend_model_before_solve_raises(fake_solver):
    backend = create_backend("dimacs-subprocess")
    v = backend.new_var()
    backend.add_clause([v])
    with pytest.raises(RuntimeError):
        backend.model()


# --------------------------------------------------------------------------- #
# Microbench over arbitrary backend pairs
# --------------------------------------------------------------------------- #
def test_microbench_compares_any_registered_backend_pair():
    from repro.sat.bench import compare_cores, run_microbench, scheduling_cnf

    cell = {"layout": "none", "instance": "single-gate", "num_stages": 1}
    document = run_microbench(
        cells=[cell], repeats=1, backends=("reference", "flat")
    )
    assert document["backends"] == ["reference", "flat"]
    [result] = document["cells"]
    assert result["reference"]["result"] == result["flat"]["result"]
    assert "candidate_faster_everywhere" in document
    # The legacy alias only exists for the historical default pairing.
    assert "flat_faster_everywhere" not in document
    with pytest.raises(ValueError, match="itself"):
        compare_cores(scheduling_cnf(**cell), repeats=1, backends=("flat", "flat"))


def test_microbench_handles_backends_without_propagation_counters(fake_solver):
    from repro.sat.bench import run_microbench

    document = run_microbench(
        cells=[{"layout": "none", "instance": "single-gate", "num_stages": 1}],
        repeats=1,
        backends=("flat", "dimacs-subprocess"),
    )
    [result] = document["cells"]
    # No propagation telemetry through a pipe: the ratio is None (excluded
    # from the gate), never a spurious zero or infinity.
    assert result["throughput_ratio"] is None
    assert result["dimacs-subprocess"]["propagations_per_second"] is None
    assert document["min_throughput_ratio"] is None


@pytest.mark.parametrize(
    ("basename", "result_file_style"),
    [
        ("minisat", True),
        ("minisat_static", True),
        ("glucose-simp", True),
        ("cryptominisat5", False),  # contains "minisat" but speaks v-lines
        ("kissat", False),
        ("picosat", False),
    ],
)
def test_result_file_convention_is_detected_by_basename_prefix(
    write_fake_solver, basename, result_file_style
):
    backend = DimacsSubprocessBackend(binary=str(write_fake_solver(basename)))
    assert backend._result_file_style is result_file_style


def test_subprocess_backend_crash_reports_the_binary(tmp_path, monkeypatch):
    script = tmp_path / "crashsat"
    script.write_text("#!/bin/sh\necho boom >&2\nexit 3\n")
    script.chmod(0o755)
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    backend = create_backend("dimacs-subprocess")
    v = backend.new_var()
    backend.add_clause([v])
    with pytest.raises(RuntimeError, match="neither SAT nor UNSAT"):
        backend.solve()


def test_subprocess_backend_rejects_sat_answers_without_a_model(
    tmp_path, monkeypatch
):
    """A solver that exits 10 but prints no model must fail loudly, not
    fabricate an all-False assignment (an unsupported output convention
    would otherwise surface as garbage schedules far from the cause)."""
    script = tmp_path / "modelless-sat"
    script.write_text("#!/bin/sh\necho 's SATISFIABLE'\nexit 10\n")
    script.chmod(0o755)
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    backend = create_backend("dimacs-subprocess")
    v = backend.new_var()
    backend.add_clause([v])
    with pytest.raises(RuntimeError, match="no parseable model literals"):
        backend.solve()
