"""Tests for the CDCL SAT solver, including randomised cross-checks against
a brute-force model enumerator and against the preserved seed reference
implementation."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, CDCLSolver, ReferenceCDCLSolver, SolveResult


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Check satisfiability by enumerating all assignments (small formulas)."""
    n = cnf.num_vars
    for bits in itertools.product([False, True], repeat=n):
        assignment = {i + 1: bits[i] for i in range(n)}
        if cnf.evaluate(assignment):
            return True
    return False


def solve_cnf(cnf: CNF) -> tuple[SolveResult, dict]:
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    result = solver.solve()
    model = solver.model() if result is SolveResult.SAT else {}
    return result, model


def test_empty_formula_is_sat():
    solver = CDCLSolver()
    assert solver.solve() is SolveResult.SAT


def test_single_unit_clause():
    solver = CDCLSolver()
    v = solver.new_var()
    solver.add_clause([v])
    assert solver.solve() is SolveResult.SAT
    assert solver.model()[v] is True


def test_conflicting_units_unsat():
    solver = CDCLSolver()
    v = solver.new_var()
    solver.add_clause([v])
    solver.add_clause([-v])
    assert solver.solve() is SolveResult.UNSAT


def test_simple_implication_chain():
    solver = CDCLSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    solver.add_clause([a])
    assert solver.solve() is SolveResult.SAT
    model = solver.model()
    assert model[a] and model[b] and model[c]


def test_pigeonhole_3_into_2_is_unsat():
    # 3 pigeons, 2 holes: variables p[i][j] = pigeon i in hole j.
    solver = CDCLSolver()
    var = {}
    for i in range(3):
        for j in range(2):
            var[i, j] = solver.new_var()
    for i in range(3):
        solver.add_clause([var[i, 0], var[i, 1]])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                solver.add_clause([-var[i1, j], -var[i2, j]])
    assert solver.solve() is SolveResult.UNSAT


def test_pigeonhole_4_into_3_is_unsat():
    solver = CDCLSolver()
    var = {}
    pigeons, holes = 4, 3
    for i in range(pigeons):
        for j in range(holes):
            var[i, j] = solver.new_var()
    for i in range(pigeons):
        solver.add_clause([var[i, j] for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-var[i1, j], -var[i2, j]])
    assert solver.solve() is SolveResult.UNSAT


def test_graph_coloring_sat():
    # A 4-cycle is 2-colourable.
    solver = CDCLSolver()
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    color = {}
    for node in range(4):
        for c in range(2):
            color[node, c] = solver.new_var()
        solver.add_clause([color[node, 0], color[node, 1]])
        solver.add_clause([-color[node, 0], -color[node, 1]])
    for u, v in edges:
        for c in range(2):
            solver.add_clause([-color[u, c], -color[v, c]])
    assert solver.solve() is SolveResult.SAT


def test_odd_cycle_not_two_colorable():
    solver = CDCLSolver()
    edges = [(0, 1), (1, 2), (2, 0)]
    color = {}
    for node in range(3):
        for c in range(2):
            color[node, c] = solver.new_var()
        solver.add_clause([color[node, 0], color[node, 1]])
        solver.add_clause([-color[node, 0], -color[node, 1]])
    for u, v in edges:
        for c in range(2):
            solver.add_clause([-color[u, c], -color[v, c]])
    assert solver.solve() is SolveResult.UNSAT


def test_model_satisfies_formula():
    random.seed(7)
    cnf = CNF()
    n_vars = 12
    for _ in range(40):
        clause = random.sample(range(1, n_vars + 1), 3)
        cnf.add_clause([lit if random.random() < 0.5 else -lit for lit in clause])
    result, model = solve_cnf(cnf)
    if result is SolveResult.SAT:
        assert cnf.evaluate(model)


@pytest.mark.parametrize("seed", range(20))
def test_random_3sat_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    n_vars = rng.randint(4, 9)
    n_clauses = rng.randint(2, int(4.5 * n_vars))
    cnf = CNF(num_vars=n_vars)
    for _ in range(n_clauses):
        size = rng.randint(1, 3)
        variables = rng.sample(range(1, n_vars + 1), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in variables])
    expected = brute_force_satisfiable(cnf)
    result, model = solve_cnf(cnf)
    assert result is not SolveResult.UNKNOWN
    assert (result is SolveResult.SAT) == expected
    if result is SolveResult.SAT:
        assert cnf.evaluate(model)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_property_random_formulas(data):
    n_vars = data.draw(st.integers(min_value=2, max_value=7))
    n_clauses = data.draw(st.integers(min_value=1, max_value=20))
    clauses = []
    for _ in range(n_clauses):
        size = data.draw(st.integers(min_value=1, max_value=3))
        clause = []
        for _ in range(size):
            var = data.draw(st.integers(min_value=1, max_value=n_vars))
            sign = data.draw(st.booleans())
            clause.append(var if sign else -var)
        clauses.append(clause)
    cnf = CNF(clauses, num_vars=n_vars)
    expected = brute_force_satisfiable(cnf)
    result, model = solve_cnf(cnf)
    assert (result is SolveResult.SAT) == expected
    if result is SolveResult.SAT:
        assert cnf.evaluate(model)


def test_solve_under_assumptions():
    solver = CDCLSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve(assumptions=[-a]) is SolveResult.SAT
    assert solver.model()[b] is True
    assert solver.solve(assumptions=[-a, -b]) is SolveResult.UNSAT
    # The formula itself stays satisfiable after an UNSAT assumption query.
    assert solver.solve() is SolveResult.SAT


def test_incremental_clause_addition():
    solver = CDCLSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    assert solver.solve() is SolveResult.SAT
    solver.add_clause([-a])
    assert solver.solve() is SolveResult.SAT
    assert solver.model()[b] is True
    solver.add_clause([-b])
    assert solver.solve() is SolveResult.UNSAT


def test_conflict_limit_returns_unknown():
    # A hard instance with a conflict budget of 1 should give up.
    solver = CDCLSolver()
    var = {}
    pigeons, holes = 6, 5
    for i in range(pigeons):
        for j in range(holes):
            var[i, j] = solver.new_var()
    for i in range(pigeons):
        solver.add_clause([var[i, j] for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-var[i1, j], -var[i2, j]])
    result = solver.solve(max_conflicts=1)
    assert result in (SolveResult.UNKNOWN, SolveResult.UNSAT)


def test_statistics_are_collected():
    solver = CDCLSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b, c])
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    solver.add_clause([-c, -a])
    solver.solve()
    stats = solver.stats.as_dict()
    assert stats["propagations"] >= 0
    assert "conflicts" in stats


def test_statistics_include_timing_and_rates():
    solver = CDCLSolver()
    variables = [solver.new_var() for _ in range(8)]
    for left, right in zip(variables, variables[1:]):
        solver.add_clause([-left, right])
    solver.add_clause([variables[0]])
    solver.solve()
    counters = solver.stats.as_dict()
    assert counters["solve_seconds"] >= 0.0
    assert "propagations_per_second" not in counters  # rates are opt-in
    with_rates = solver.stats.as_dict(rates=True)
    assert with_rates["propagations_per_second"] >= 0.0
    assert with_rates["conflicts_per_second"] >= 0.0
    # The rates are consistent with their defining counters.
    if with_rates["solve_seconds"] > 0:
        expected = with_rates["propagations"] / with_rates["solve_seconds"]
        assert with_rates["propagations_per_second"] == pytest.approx(expected)


def test_model_before_solve_raises():
    solver = CDCLSolver()
    solver.new_var()
    with pytest.raises(RuntimeError):
        solver.model()


def test_add_cnf_bulk():
    cnf = CNF([[1, 2], [-1, 2], [1, -2], [-1, -2]])
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assert solver.solve() is SolveResult.UNSAT


# --------------------------------------------------------------------------- #
# Regression tests: assumption solving reused across calls (the incremental
# scheduler keeps one solver alive for the whole minimum-stage search).
# --------------------------------------------------------------------------- #
def test_assumption_reuse_interleaved_with_clause_addition():
    solver = CDCLSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b])
    assert solver.solve(assumptions=[-a]) is SolveResult.SAT
    assert solver.model()[b] is True
    # Add clauses between assumption queries, as extend_to() does.
    solver.add_clause([-b, c])
    assert solver.solve(assumptions=[-a]) is SolveResult.SAT
    assert solver.model()[c] is True
    assert solver.solve(assumptions=[-a, -c]) is SolveResult.UNSAT
    # Neither the UNSAT query nor the added clauses poisoned the formula.
    assert solver.solve() is SolveResult.SAT
    assert solver.solve(assumptions=[a]) is SolveResult.SAT


def test_assumption_unsat_does_not_block_weaker_assumptions():
    """Mirrors the horizon search: refute S, then succeed at S+1."""
    solver = CDCLSolver()
    horizon2, horizon3 = solver.new_var(), solver.new_var()
    g1, g2, g3 = (solver.new_var() for _ in range(3))
    # horizon2 forbids g3; horizon3 allows everything.
    solver.add_clause([-horizon2, -g3])
    # The instance needs g3.
    solver.add_clause([g3])
    assert solver.solve(assumptions=[horizon2]) is SolveResult.UNSAT
    assert solver.solve(assumptions=[horizon3]) is SolveResult.SAT
    assert solver.model()[g3] is True
    # The refuted horizon literal is now entailed negative.
    assert solver.solve(assumptions=[horizon2]) is SolveResult.UNSAT
    assert solver.solve(assumptions=[g1, g2]) is SolveResult.SAT


def test_learned_state_survives_assumption_queries():
    """Conflicts in one query must not corrupt later models."""
    solver = CDCLSolver()
    n = 8
    variables = [solver.new_var() for _ in range(n)]
    # Chain of implications v0 -> v1 -> ... -> v7.
    for left, right in zip(variables, variables[1:]):
        solver.add_clause([-left, right])
    assert solver.solve(assumptions=[variables[0], -variables[-1]]) is SolveResult.UNSAT
    assert solver.solve(assumptions=[variables[0]]) is SolveResult.SAT
    model = solver.model()
    assert all(model[v] for v in variables)
    assert solver.solve(assumptions=[-variables[-1]]) is SolveResult.SAT
    model = solver.model()
    assert not model[variables[0]]


# --------------------------------------------------------------------------- #
# Learned-clause database reduction under pressure
# --------------------------------------------------------------------------- #
def test_learned_database_reduction_keeps_answers_sound():
    """A conflict-heavy instance must stay correct across DB reductions and
    restarts (the LBD-aware reducer rebuilds the clause arena in place)."""
    solver = CDCLSolver()
    var = {}
    pigeons, holes = 7, 6
    for i in range(pigeons):
        for j in range(holes):
            var[i, j] = solver.new_var()
    for i in range(pigeons):
        solver.add_clause([var[i, j] for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-var[i1, j], -var[i2, j]])
    assert solver.solve() is SolveResult.UNSAT
    assert solver.stats.learned_clauses > 0
    assert solver.stats.conflicts > 0


# --------------------------------------------------------------------------- #
# DIMACS debug export (ground work for the external-backend adapter)
# --------------------------------------------------------------------------- #
def test_dump_dimacs_round_trips_to_equisatisfiable_formula():
    solver = CDCLSolver()
    a, b, c = (solver.new_var() for _ in range(3))
    solver.add_clause([a, b, c])
    solver.add_clause([-a, b])
    solver.add_clause([-b, c])
    solver.add_clause([c])  # becomes a level-0 unit, exported as such
    text = solver.dump_dimacs()
    reloaded = CNF.from_dimacs(text)
    assert reloaded.num_vars == 3
    fresh = CDCLSolver()
    fresh.add_cnf(reloaded)
    assert fresh.solve() is SolveResult.SAT
    assert fresh.model()[c] is True
    assert solver.solve() is SolveResult.SAT  # exporting must not disturb state


@pytest.mark.parametrize("include_learned", [False, True])
def test_dump_dimacs_preserves_satisfiability_after_solving(include_learned):
    """Exports taken mid-life (learned clauses, level-0 facts) round-trip to
    a formula with the same satisfiability, with and without the implied
    learned clauses."""
    rng = random.Random(11)
    cnf = CNF(num_vars=9)
    for _ in range(38):
        size = rng.randint(1, 3)
        chosen = rng.sample(range(1, 10), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    original = solver.solve()
    reloaded = CNF.from_dimacs(solver.dump_dimacs(include_learned=include_learned))
    fresh = CDCLSolver()
    fresh.add_cnf(reloaded)
    assert fresh.solve() is original


def test_dump_dimacs_of_trivially_unsat_formula():
    solver = CDCLSolver()
    v = solver.new_var()
    solver.add_clause([v])
    solver.add_clause([-v])
    reloaded = CNF.from_dimacs(solver.dump_dimacs())
    fresh = CDCLSolver()
    fresh.add_cnf(reloaded)
    assert fresh.solve() is SolveResult.UNSAT


# --------------------------------------------------------------------------- #
# Differential testing: flat-array core vs the preserved seed reference
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(15))
def test_flat_core_agrees_with_reference(seed):
    rng = random.Random(1000 + seed)
    n_vars = rng.randint(4, 10)
    cnf = CNF(num_vars=n_vars)
    for _ in range(rng.randint(3, int(4.4 * n_vars))):
        size = rng.randint(1, 3)
        chosen = rng.sample(range(1, n_vars + 1), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    flat, reference = CDCLSolver(), ReferenceCDCLSolver()
    flat.add_cnf(cnf)
    reference.add_cnf(cnf)
    flat_result = flat.solve()
    assert flat_result is reference.solve()
    if flat_result is SolveResult.SAT:
        assert cnf.evaluate(flat.model())
        assert cnf.evaluate(reference.model())


@pytest.mark.parametrize("seed", range(10))
def test_binary_heavy_formulas_agree_with_brute_force(seed):
    """Targeted coverage of the binary-clause watch specialisation: pure
    2-SAT formulas exercise only the inline binary propagation path (plus
    binary conflicts feeding first-UIP analysis with arena reasons)."""
    rng = random.Random(4000 + seed)
    n_vars = rng.randint(4, 9)
    cnf = CNF(num_vars=n_vars)
    for _ in range(rng.randint(4, 4 * n_vars)):
        a, b = rng.sample(range(1, n_vars + 1), 2)
        cnf.add_clause(
            [a if rng.random() < 0.5 else -a, b if rng.random() < 0.5 else -b]
        )
    expected = brute_force_satisfiable(cnf)
    result, model = solve_cnf(cnf)
    assert (result is SolveResult.SAT) == expected
    if result is SolveResult.SAT:
        assert cnf.evaluate(model)


def test_binary_clauses_as_assumption_conflict_reasons():
    """A binary implication chain refuted under assumptions must leave the
    solver in a clean state (binary clauses serve as trail reasons)."""
    solver = CDCLSolver()
    n = 12
    variables = [solver.new_var() for _ in range(n)]
    for left, right in zip(variables, variables[1:]):
        solver.add_clause([-left, right])
    assert (
        solver.solve(assumptions=[variables[0], -variables[-1]])
        is SolveResult.UNSAT
    )
    assert solver.solve(assumptions=[variables[0]]) is SolveResult.SAT
    assert all(solver.model()[v] for v in variables)


def test_flat_core_agrees_with_reference_under_assumptions():
    clauses = [[1, 2], [-1, 3], [-3, -2, 4], [-4, 2]]
    for assumptions in ([], [1], [-2], [1, -4], [-1, -2], [3, -4]):
        flat, reference = CDCLSolver(), ReferenceCDCLSolver()
        flat.add_cnf(CNF(clauses))
        reference.add_cnf(CNF(clauses))
        assert flat.solve(assumptions=assumptions) is reference.solve(
            assumptions=assumptions
        ), assumptions
