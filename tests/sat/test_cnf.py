"""Tests for the CNF container and DIMACS serialisation."""

import pytest

from repro.sat import CNF


def test_empty_formula():
    cnf = CNF()
    assert cnf.num_vars == 0
    assert cnf.num_clauses == 0
    assert cnf.evaluate({})


def test_add_clause_tracks_variables():
    cnf = CNF()
    cnf.add_clause([1, -3])
    assert cnf.num_vars == 3
    assert cnf.num_clauses == 1
    assert cnf.clauses[0] == (1, -3)


def test_duplicate_literals_are_removed():
    cnf = CNF()
    cnf.add_clause([2, 2, -1])
    assert cnf.clauses[0] == (2, -1)


def test_tautologies_are_dropped():
    cnf = CNF()
    cnf.add_clause([1, -1, 2])
    assert cnf.num_clauses == 0


def test_zero_literal_rejected():
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.add_clause([1, 0])


def test_non_integer_literal_rejected():
    cnf = CNF()
    with pytest.raises(TypeError):
        cnf.add_clause([1, "2"])


def test_new_var_increments():
    cnf = CNF(num_vars=3)
    assert cnf.new_var() == 4
    assert cnf.new_var() == 5


def test_negative_num_vars_rejected():
    with pytest.raises(ValueError):
        CNF(num_vars=-1)


def test_evaluate():
    cnf = CNF([[1, 2], [-1, 3]])
    assert cnf.evaluate({1: True, 2: False, 3: True})
    assert not cnf.evaluate({1: True, 2: False, 3: False})
    assert cnf.evaluate({1: False, 2: True, 3: False})


def test_dimacs_roundtrip():
    cnf = CNF([[1, -2, 3], [-1], [2, 3]])
    text = cnf.to_dimacs()
    assert text.startswith("p cnf 3 3")
    parsed = CNF.from_dimacs(text)
    assert parsed.num_vars == cnf.num_vars
    assert parsed.clauses == cnf.clauses


def test_dimacs_parse_with_comments_and_blank_lines():
    text = """
c a comment
p cnf 4 2
1 -2 0
c another comment

3 4 0
"""
    cnf = CNF.from_dimacs(text)
    assert cnf.num_vars == 4
    assert cnf.clauses == ((1, -2), (3, 4))


def test_dimacs_malformed_problem_line():
    with pytest.raises(ValueError):
        CNF.from_dimacs("p dnf 3 1\n1 0\n")


def test_extend():
    cnf = CNF()
    cnf.extend([[1], [2, -3]])
    assert cnf.num_clauses == 2
