"""Tests for the ``chaos`` fault-injection wrapper backend.

The chaos backend is the robustness harness's fault source: these tests
lock its plan parsing, registry resolution, the determinism of its seeded
fault schedule, and the transient-fault contract (the inner clause
database survives an injected transient, so a retried solve returns the
true answer).
"""

import pytest

from repro.sat.backend import backend_info, create_backend, usable_backends
from repro.sat.chaos import CHAOS_SPEC_ENV, ChaosBackend, FaultPlan
from repro.sat.errors import (
    BackendError,
    PermanentBackendError,
    TransientBackendError,
)
from repro.sat.solver import SolveResult


def _solve_all(backend, clauses):
    for clause in clauses:
        while backend.num_vars < max(abs(lit) for lit in clause):
            backend.new_var()
        backend.add_clause(clause)
    return backend.solve()


# --------------------------------------------------------------------------- #
# FaultPlan parsing
# --------------------------------------------------------------------------- #
def test_from_spec_parses_every_key():
    plan = FaultPlan.from_spec(
        "seed=7,transient=0.5,consecutive=1,unknown=0.25,delay=0.01,crash-after=3"
    )
    assert plan.seed == 7
    assert plan.transient_rate == 0.5
    assert plan.max_consecutive_transients == 1
    assert plan.unknown_rate == 0.25
    assert plan.delay_seconds == 0.01
    assert plan.crash_after_solves == 3


def test_from_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="known keys"):
        FaultPlan.from_spec("tranzient=0.5")
    with pytest.raises(ValueError, match="known keys"):
        FaultPlan.from_spec("seed")  # no '='


def test_from_environment_reads_the_spec_variable(monkeypatch):
    monkeypatch.setenv(CHAOS_SPEC_ENV, "seed=3,transient=1.0")
    plan = FaultPlan.from_environment()
    assert plan.seed == 3 and plan.transient_rate == 1.0
    monkeypatch.delenv(CHAOS_SPEC_ENV)
    assert FaultPlan.from_environment() == FaultPlan.default()


def test_default_plan_is_retry_winnable():
    """The registry default must keep consecutive transients at or below
    the solver's default retry budget, or a plain ``chaos`` backend could
    fail a run that retries correctly."""
    from repro.smt.solver import DEFAULT_BACKEND_RETRIES

    plan = FaultPlan.default()
    assert plan.max_consecutive_transients <= DEFAULT_BACKEND_RETRIES
    assert plan.crash_after_solves is None
    assert plan.unknown_rate == 0.0


# --------------------------------------------------------------------------- #
# Registry resolution
# --------------------------------------------------------------------------- #
def test_chaos_is_registered_and_usable():
    assert "chaos" in usable_backends()
    info = backend_info("chaos")
    assert not info.race_variant  # the portfolio must never race it


def test_parameterised_names_resolve_to_derived_entries():
    info = backend_info("chaos:flat")
    assert info.name == "chaos:flat"
    assert info.is_available()
    backend = create_backend("chaos:flat")
    assert isinstance(backend, ChaosBackend)
    assert getattr(backend.inner, "backend_name", None) == "flat"


def test_unknown_parameterised_names_fail_eagerly():
    with pytest.raises(ValueError):
        backend_info("chaos:nonsense")
    with pytest.raises(ValueError):
        backend_info("nonsense:flat")


# --------------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------------- #
def test_no_fault_plan_is_a_transparent_proxy():
    backend = ChaosBackend(inner="flat", plan=FaultPlan())
    assert _solve_all(backend, [[1, 2], [-1], [-2, 3]]) is SolveResult.SAT
    model = backend.model()
    assert model[2] and model[3] and not model[1]
    stats = backend.statistics()
    assert stats["chaos_solves"] == 1
    assert stats["chaos_transient_faults"] == 0


def test_transient_faults_leave_the_inner_clause_db_intact():
    """The transient contract: a fault fires *before* the inner solve, so
    the retried solve sees the full clause database and returns the true
    answer."""
    plan = FaultPlan(seed=1, transient_rate=1.0, max_consecutive_transients=2)
    backend = ChaosBackend(inner="flat", plan=plan)
    for clause in [[1, 2], [-1], [-2]]:
        while backend.num_vars < 2:
            backend.new_var()
        backend.add_clause(clause)
    for _ in range(plan.max_consecutive_transients):
        with pytest.raises(TransientBackendError):
            backend.solve()
    # The consecutive cap forces the next solve through — and the answer
    # reflects every clause added before the faults.
    assert backend.solve() is SolveResult.UNSAT
    assert backend.statistics()["chaos_transient_faults"] == 2


def test_fault_sequence_is_deterministic_per_seed():
    def fault_pattern(seed):
        plan = FaultPlan(seed=seed, transient_rate=0.5, max_consecutive_transients=99)
        backend = ChaosBackend(inner="flat", plan=plan)
        backend.new_var()
        backend.add_clause([1])
        pattern = []
        for _ in range(12):
            try:
                backend.solve()
                pattern.append("ok")
            except TransientBackendError:
                pattern.append("fault")
        return pattern

    assert fault_pattern(7) == fault_pattern(7)
    assert fault_pattern(7) != fault_pattern(8)


def test_unknown_faults_return_unknown_without_touching_the_inner_solve():
    plan = FaultPlan(seed=0, unknown_rate=1.0)
    backend = ChaosBackend(inner="flat", plan=plan)
    backend.new_var()
    backend.add_clause([1])
    assert backend.solve() is SolveResult.UNKNOWN
    assert backend.statistics()["chaos_unknown_faults"] == 1


def test_crash_after_n_solves_is_permanent():
    plan = FaultPlan(crash_after_solves=2)
    backend = ChaosBackend(inner="flat", plan=plan)
    backend.new_var()
    backend.add_clause([1])
    assert backend.solve() is SolveResult.SAT
    assert backend.solve() is SolveResult.SAT
    for _ in range(3):  # permanent: every further solve fails
        with pytest.raises(PermanentBackendError):
            backend.solve()


def test_backend_errors_subclass_runtimeerror():
    """Existing callers catch RuntimeError at the backend seam; the new
    hierarchy must stay inside it."""
    assert issubclass(BackendError, RuntimeError)
    assert issubclass(TransientBackendError, BackendError)
    assert issubclass(PermanentBackendError, BackendError)
