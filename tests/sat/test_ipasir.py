"""Tests for the ctypes IPASIR backend.

Two harnesses cover the binding:

* ``toy_ipasir.c`` — a tiny C IPASIR implementation compiled on the fly
  (skipped when no C compiler is present), driving the *real* ctypes
  marshalling path: prototypes, int32 literals, handle lifetime, the
  optional ``ccadical_conflicts`` stats getter.
* A pure-Python fake library object — exercising the prototype-guard
  fallbacks (plain callables reject ``argtypes``/``restype`` writes) and
  the registered-but-unusable degradation without any native code.

A final optional section runs against a *real* system solver library
(CaDiCaL et al.) when one is loadable, proving learned-clause reuse across
assumption-guarded probes — the property the backend exists for.
"""

import random
import shutil
import subprocess
from pathlib import Path

import pytest

from test_sat_solver import brute_force_satisfiable

from repro.sat import CNF, CDCLSolver, SolveResult
from repro.sat.backend import available_backends, create_backend, usable_backends
from repro.sat.ipasir import (
    IPASIR_LIB_ENV,
    IpasirBackend,
    find_ipasir_library,
    ipasir_signature,
    load_ipasir_library,
)


@pytest.fixture(scope="session")
def toy_library(tmp_path_factory):
    """Compile tests/sat/toy_ipasir.c into a shared library, or skip."""
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        pytest.skip("no C compiler available to build the toy IPASIR library")
    source = Path(__file__).with_name("toy_ipasir.c")
    out = tmp_path_factory.mktemp("ipasir") / "libtoyipasir.so"
    build = subprocess.run(
        [compiler, "-shared", "-fPIC", "-O1", str(source), "-o", str(out)],
        capture_output=True,
        text=True,
    )
    if build.returncode != 0:
        pytest.skip(f"toy IPASIR library failed to build: {build.stderr[:200]}")
    return out


@pytest.fixture
def toy_env(monkeypatch, toy_library):
    """Point $REPRO_IPASIR_LIB at the freshly built toy library."""
    monkeypatch.setenv(IPASIR_LIB_ENV, str(toy_library))
    return toy_library


def _random_cnf(rng: random.Random) -> CNF:
    n_vars = rng.randint(3, 8)
    cnf = CNF(num_vars=n_vars)
    for _ in range(rng.randint(2, int(4.6 * n_vars))):
        size = rng.randint(1, 3)
        chosen = rng.sample(range(1, n_vars + 1), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


# --------------------------------------------------------------------------- #
# Registration and graceful degradation
# --------------------------------------------------------------------------- #
def test_ipasir_is_registered_even_without_a_library():
    assert "ipasir" in available_backends()


def test_ipasir_unusable_without_a_loadable_library(monkeypatch, tmp_path):
    monkeypatch.setenv(IPASIR_LIB_ENV, str(tmp_path / "libnowhere.so"))
    assert find_ipasir_library() is None
    assert load_ipasir_library() is None
    assert "ipasir" not in usable_backends()
    with pytest.raises(RuntimeError, match="unavailable"):
        create_backend("ipasir")


def test_env_override_never_falls_through_to_probing(monkeypatch, tmp_path):
    """An explicit $REPRO_IPASIR_LIB that does not load must yield None —
    silently binding a different solver than the one requested would make
    measurements lie."""
    bogus = tmp_path / "libbroken.so"
    bogus.write_bytes(b"not an elf")
    monkeypatch.setenv(IPASIR_LIB_ENV, str(bogus))
    assert load_ipasir_library() is None
    assert find_ipasir_library() is None


# --------------------------------------------------------------------------- #
# The real ctypes path, against the compiled toy library
# --------------------------------------------------------------------------- #
def test_toy_library_loads_with_signature(toy_env):
    assert find_ipasir_library() == "toy-dpll-1.0"
    assert "ipasir" in usable_backends()
    backend = create_backend("ipasir")
    assert isinstance(backend, IpasirBackend)
    assert backend.signature == "toy-dpll-1.0"
    assert backend.supports_assumptions
    assert not backend.supports_phase_hints


def test_backend_solves_sat_and_unsat_natively(toy_env):
    backend = create_backend("ipasir")
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    backend.add_clause([-a])
    assert backend.solve() is SolveResult.SAT
    assert backend.model()[b] is True
    assert backend.model()[a] is False
    backend.add_clause([-b])
    assert backend.solve() is SolveResult.UNSAT


def test_assumptions_hold_for_one_solve_only(toy_env):
    backend = create_backend("ipasir")
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    assert backend.solve(assumptions=[-a, -b]) is SolveResult.UNSAT
    # The IPASIR contract: assumptions are cleared after every solve call.
    assert backend.solve() is SolveResult.SAT
    assert backend.solve(assumptions=[-a]) is SolveResult.SAT
    assert backend.model()[b] is True


def test_empty_clause_short_circuits_without_a_native_call(toy_env):
    backend = create_backend("ipasir")
    backend.new_var()
    assert backend.add_clause([]) is False
    assert backend.solve() is SolveResult.UNSAT
    assert backend.statistics()["ipasir_solves"] == 0


def test_statistics_report_solves_and_toy_conflicts(toy_env):
    backend = create_backend("ipasir")
    v = backend.new_var()
    backend.add_clause([v])
    assert backend.solve() is SolveResult.SAT
    assert backend.solve(assumptions=[v]) is SolveResult.SAT
    counters = backend.statistics()
    assert counters["ipasir_solves"] == 2
    assert counters["solve_seconds"] > 0
    # The toy library exports ccadical_conflicts (returning its solve
    # count), so the optional-stats path is exercised end to end.
    assert counters["conflicts"] == 2


def test_zero_literals_are_rejected(toy_env):
    backend = create_backend("ipasir")
    backend.new_var()
    with pytest.raises(ValueError):
        backend.add_clause([0])
    with pytest.raises(ValueError):
        backend.solve(assumptions=[0])


@pytest.mark.parametrize("seed", range(10))
def test_toy_backend_agrees_with_flat_core_and_oracle(toy_env, seed):
    rng = random.Random(21000 + seed)
    cnf = _random_cnf(rng)
    expected = brute_force_satisfiable(cnf)
    backend = create_backend("ipasir")
    backend.add_cnf(cnf)
    result = backend.solve()
    assert (result is SolveResult.SAT) == expected
    if result is SolveResult.SAT:
        assert cnf.evaluate(backend.model())
    # And under assumptions, against the flat core.
    assumptions = [
        v if rng.random() < 0.5 else -v
        for v in rng.sample(range(1, cnf.num_vars + 1), 2)
    ]
    flat = CDCLSolver()
    flat.add_cnf(cnf)
    assert backend.solve(assumptions=assumptions) is flat.solve(
        assumptions=assumptions
    )


def test_backend_accepts_a_library_path_directly(toy_library):
    backend = IpasirBackend(library=str(toy_library))
    v = backend.new_var()
    backend.add_clause([v])
    assert backend.solve() is SolveResult.SAT
    with pytest.raises(RuntimeError, match="did not load"):
        IpasirBackend(library=str(toy_library) + ".missing")


# --------------------------------------------------------------------------- #
# Pure-Python fake library: prototype guards and surface validation
# --------------------------------------------------------------------------- #
class _FakeIpasirLib:
    """Python object with the IPASIR surface (methods reject prototype
    writes, exactly like the guard comments in the backend claim)."""

    def __init__(self):
        self._handles = {}
        self._next = 1

    def ipasir_signature(self):
        return "pyfake-1.0"

    def ipasir_init(self):
        handle = self._next
        self._next += 1
        self._handles[handle] = {
            "clauses": [],
            "current": [],
            "assumptions": [],
            "model": {},
        }
        return handle

    def ipasir_release(self, handle):
        self._handles.pop(handle, None)

    def ipasir_add(self, handle, lit):
        state = self._handles[handle]
        if lit:
            state["current"].append(lit)
        else:
            state["clauses"].append(tuple(state["current"]))
            state["current"] = []

    def ipasir_assume(self, handle, lit):
        self._handles[handle]["assumptions"].append(lit)

    def ipasir_solve(self, handle):
        state = self._handles[handle]
        solver = CDCLSolver()
        num_vars = max(
            [abs(lit) for clause in state["clauses"] for lit in clause]
            + [abs(lit) for lit in state["assumptions"]]
            + [0]
        )
        while solver.num_vars < num_vars:
            solver.new_var()
        for clause in state["clauses"]:
            solver.add_clause(clause)
        result = solver.solve(assumptions=list(state["assumptions"]))
        state["assumptions"] = []
        if result is SolveResult.SAT:
            state["model"] = solver.model()
            return 10
        return 20

    def ipasir_val(self, handle, var):
        return var if self._handles[handle]["model"].get(var, False) else -var


def test_fake_python_library_drives_the_backend():
    backend = IpasirBackend(library=_FakeIpasirLib())
    assert backend.signature == "pyfake-1.0"
    a, b = backend.new_var(), backend.new_var()
    backend.add_clause([a, b])
    backend.add_clause([-a])
    assert backend.solve() is SolveResult.SAT
    assert backend.model()[b] is True
    assert backend.solve(assumptions=[-b]) is SolveResult.UNSAT
    assert backend.solve() is SolveResult.SAT


def test_object_without_the_surface_is_rejected():
    with pytest.raises(RuntimeError, match="IPASIR surface"):
        IpasirBackend(library=object())


def test_signature_helper_tolerates_broken_exports():
    class NoSignature:
        pass

    class RaisingSignature:
        def ipasir_signature(self):
            raise OSError("boom")

    assert ipasir_signature(NoSignature()) is None
    assert ipasir_signature(RaisingSignature()) is None


# --------------------------------------------------------------------------- #
# Live system library (CaDiCaL etc.), when one is installed
# --------------------------------------------------------------------------- #
def _live_cadical_backend():
    """An IpasirBackend over a real system CaDiCaL, or None."""
    import os

    if os.environ.get(IPASIR_LIB_ENV):
        # Respect the override (it may be the toy library in this very test
        # run); the live test wants the system solver specifically.
        return None
    lib = load_ipasir_library()
    if lib is None:
        return None
    signature = ipasir_signature(lib) or ""
    if "cadical" not in signature.lower():
        return None
    return IpasirBackend(library=lib)


def test_live_library_reuses_learned_clauses_across_probes():
    """The reason the backend exists: a second probe of the same horizon,
    with the same assumptions, must cost fewer conflicts than the first —
    learned clauses survive natively across ipasir_solve calls."""
    backend = _live_cadical_backend()
    if backend is None:
        pytest.skip("no system CaDiCaL library available")
    from test_chrono import php_cnf

    cnf = php_cnf(7, 6)
    guard = cnf.new_var()
    backend.add_cnf(cnf)
    before = backend.statistics().get("conflicts")
    if before is None:
        pytest.skip("library does not export a conflict counter")
    assert backend.solve(assumptions=[guard]) is SolveResult.UNSAT
    first = backend.statistics()["conflicts"] - before
    assert backend.solve(assumptions=[guard]) is SolveResult.UNSAT
    second = backend.statistics()["conflicts"] - before - first
    assert first > 0
    assert second < first
