/* A deliberately tiny IPASIR implementation used as a test fixture.
 *
 * Implements the required IPASIR surface (signature/init/release/add/
 * assume/solve/val/failed/set_terminate) over an exponential DPLL with
 * unit propagation — correct on the small formulas the test suite feeds
 * it, and enough to exercise the real ctypes marshalling of
 * repro.sat.ipasir.IpasirBackend without shipping a solver binary.
 *
 * Build: cc -shared -fPIC -O1 toy_ipasir.c -o libtoyipasir.so
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    int32_t **clauses;
    int *sizes;
    int nclauses, clause_cap;
    int32_t *current;
    int cur_len, cur_cap;
    int nvars;
    int32_t *assumptions;
    int nassume, assume_cap;
    signed char *model; /* 1-based; -1 false, 0 unknown, +1 true */
    int model_vars;
    int ok; /* 0 once an empty clause was added */
    long solves;
} Solver;

const char *ipasir_signature(void) { return "toy-dpll-1.0"; }

void *ipasir_init(void) {
    Solver *s = (Solver *)calloc(1, sizeof(Solver));
    s->ok = 1;
    return s;
}

void ipasir_release(void *p) {
    Solver *s = (Solver *)p;
    int i;
    if (!s)
        return;
    for (i = 0; i < s->nclauses; i++)
        free(s->clauses[i]);
    free(s->clauses);
    free(s->sizes);
    free(s->current);
    free(s->assumptions);
    free(s->model);
    free(s);
}

static void track_var(Solver *s, int32_t lit) {
    int v = lit < 0 ? -lit : lit;
    if (v > s->nvars)
        s->nvars = v;
}

void ipasir_add(void *p, int32_t lit) {
    Solver *s = (Solver *)p;
    if (lit != 0) {
        if (s->cur_len == s->cur_cap) {
            s->cur_cap = s->cur_cap ? 2 * s->cur_cap : 8;
            s->current = (int32_t *)realloc(s->current, s->cur_cap * sizeof(int32_t));
        }
        s->current[s->cur_len++] = lit;
        track_var(s, lit);
        return;
    }
    if (s->nclauses == s->clause_cap) {
        s->clause_cap = s->clause_cap ? 2 * s->clause_cap : 16;
        s->clauses = (int32_t **)realloc(s->clauses, s->clause_cap * sizeof(int32_t *));
        s->sizes = (int *)realloc(s->sizes, s->clause_cap * sizeof(int));
    }
    s->clauses[s->nclauses] = (int32_t *)malloc((s->cur_len ? s->cur_len : 1) * sizeof(int32_t));
    memcpy(s->clauses[s->nclauses], s->current, s->cur_len * sizeof(int32_t));
    s->sizes[s->nclauses] = s->cur_len;
    s->nclauses++;
    if (s->cur_len == 0)
        s->ok = 0;
    s->cur_len = 0;
}

void ipasir_assume(void *p, int32_t lit) {
    Solver *s = (Solver *)p;
    if (s->nassume == s->assume_cap) {
        s->assume_cap = s->assume_cap ? 2 * s->assume_cap : 8;
        s->assumptions = (int32_t *)realloc(s->assumptions, s->assume_cap * sizeof(int32_t));
    }
    s->assumptions[s->nassume++] = lit;
    track_var(s, lit);
}

static int lit_value(const signed char *assign, int32_t lit) {
    int v = assign[lit < 0 ? -lit : lit];
    return lit < 0 ? -v : v;
}

/* Unit propagation: returns 0 on conflict, 1 at fixpoint. */
static int propagate(Solver *s, signed char *assign) {
    int changed = 1, i, j;
    while (changed) {
        changed = 0;
        for (i = 0; i < s->nclauses; i++) {
            int unassigned = 0, satisfied = 0;
            int32_t unit = 0;
            for (j = 0; j < s->sizes[i]; j++) {
                int v = lit_value(assign, s->clauses[i][j]);
                if (v > 0) {
                    satisfied = 1;
                    break;
                }
                if (v == 0) {
                    unassigned++;
                    unit = s->clauses[i][j];
                }
            }
            if (satisfied)
                continue;
            if (unassigned == 0)
                return 0;
            if (unassigned == 1) {
                assign[unit < 0 ? -unit : unit] = unit < 0 ? -1 : 1;
                changed = 1;
            }
        }
    }
    return 1;
}

static int dpll(Solver *s, signed char *assign) {
    int var, v;
    signed char *copy;
    if (!propagate(s, assign))
        return 0;
    var = 0;
    for (v = 1; v <= s->nvars; v++)
        if (!assign[v]) {
            var = v;
            break;
        }
    if (!var)
        return 1;
    copy = (signed char *)malloc(s->nvars + 1);
    memcpy(copy, assign, s->nvars + 1);
    copy[var] = 1;
    if (dpll(s, copy)) {
        memcpy(assign, copy, s->nvars + 1);
        free(copy);
        return 1;
    }
    memcpy(copy, assign, s->nvars + 1);
    copy[var] = -1;
    if (dpll(s, copy)) {
        memcpy(assign, copy, s->nvars + 1);
        free(copy);
        return 1;
    }
    free(copy);
    return 0;
}

int ipasir_solve(void *p) {
    Solver *s = (Solver *)p;
    signed char *assign = (signed char *)calloc(s->nvars + 1, 1);
    int i, sat = s->ok;
    s->solves++;
    for (i = 0; sat && i < s->nassume; i++) {
        int32_t lit = s->assumptions[i];
        int v = lit_value(assign, lit);
        if (v < 0)
            sat = 0;
        else
            assign[lit < 0 ? -lit : lit] = lit < 0 ? -1 : 1;
    }
    s->nassume = 0; /* assumptions hold for one solve call (IPASIR spec) */
    if (sat)
        sat = dpll(s, assign);
    if (sat) {
        free(s->model);
        s->model = assign;
        s->model_vars = s->nvars;
        return 10;
    }
    free(assign);
    return 20;
}

int32_t ipasir_val(void *p, int32_t lit) {
    Solver *s = (Solver *)p;
    int var = lit < 0 ? -lit : lit;
    int v = (s->model && var <= s->model_vars) ? s->model[var] : 0;
    if (v == 0)
        return 0;
    return (v > 0) == (lit > 0) ? lit : -lit;
}

int ipasir_failed(void *p, int32_t lit) {
    (void)p;
    (void)lit;
    return 0; /* no failed-assumption analysis in the toy solver */
}

void ipasir_set_terminate(void *p, void *state, int (*terminate)(void *)) {
    (void)p;
    (void)state;
    (void)terminate; /* toy solves are instant; the callback is never polled */
}

/* Coarse statistics getter mirroring CaDiCaL's ccadical_* C API shape, so
 * the optional-stats probing path of the backend is exercisable too. */
int64_t ccadical_conflicts(void *p) { return ((Solver *)p)->solves; }
