"""Tests for chronological backtracking + inprocessing in the flat core.

Chronological backtracking and inprocessing (clause vivification +
subsumption) are pure search heuristics: with the knobs off the solver must
behave exactly like the pre-chrono core (counters present but zero), and
with them on — even at pathologically aggressive settings — every verdict
and model must match the chrono-off solver and the brute-force oracle.
"""

import random

import pytest

from test_sat_solver import brute_force_satisfiable

from repro.sat import CNF, CDCLSolver, SolveResult
from repro.sat.solver import SolverStatistics


def php_cnf(pigeons: int, holes: int) -> CNF:
    """The pigeonhole formula: UNSAT iff pigeons > holes, with real
    refutation depth — the classic chrono/inprocessing workout."""
    cnf = CNF(num_vars=pigeons * holes)
    var = lambda i, j: i * holes + j + 1  # noqa: E731
    for i in range(pigeons):
        cnf.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                cnf.add_clause([-var(i1, j), -var(i2, j)])
    return cnf


def random_cnf(rng: random.Random, n_vars: int = 8, density: float = 4.8) -> CNF:
    cnf = CNF(num_vars=n_vars)
    for _ in range(int(density * n_vars)):
        size = rng.randint(1, 3)
        chosen = rng.sample(range(1, n_vars + 1), size)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


# --------------------------------------------------------------------------- #
# Knobs and counters
# --------------------------------------------------------------------------- #
def test_chrono_counters_exist_and_stay_zero_when_off():
    solver = CDCLSolver(chrono=False, inprocessing=False)
    solver.add_cnf(php_cnf(4, 3))
    assert solver.solve() is SolveResult.UNSAT
    counters = solver.statistics()
    assert counters["chrono_backtracks"] == 0
    assert counters["vivified_literals"] == 0
    assert counters["subsumed_clauses"] == 0


def test_chrono_fires_on_a_deep_unsat_refutation():
    solver = CDCLSolver(chrono=True, chrono_threshold=1, inprocessing=False)
    solver.add_cnf(php_cnf(5, 4))
    assert solver.solve() is SolveResult.UNSAT
    assert solver.statistics()["chrono_backtracks"] > 0


def test_inprocessing_vivifies_on_a_long_search():
    solver = CDCLSolver(chrono=False, inprocessing=True, inprocess_interval=1)
    solver.add_cnf(php_cnf(6, 5))
    assert solver.solve() is SolveResult.UNSAT
    assert solver.statistics()["vivified_literals"] > 0


def test_subsumption_kills_and_strengthens_clauses():
    # [1, 2] subsumes [1, 2, 3]; [-1, 2] self-subsumes [1, 2, 4] to [2, 4].
    solver = CDCLSolver(inprocessing=True)
    for _ in range(4):
        solver.new_var()
    solver.add_clause([1, 2, 3])
    solver.add_clause([1, 2])
    solver.add_clause([1, 2, 4])
    solver.add_clause([-1, 2])
    assert solver._inprocess()
    counters = solver.statistics()
    assert counters["subsumed_clauses"] >= 1
    assert solver.solve() is SolveResult.SAT
    assert solver.model()[2] is True


def test_inprocessed_clause_db_export_stays_equisatisfiable():
    """After aggressive inprocessing, to_cnf() must still be equisatisfiable
    with the original formula (promoted subsumers replace their victims)."""
    for seed in range(8):
        cnf = random_cnf(random.Random(5100 + seed))
        expected = brute_force_satisfiable(cnf)
        solver = CDCLSolver(chrono_threshold=1, inprocess_interval=1)
        solver.add_cnf(cnf)
        first = solver.solve()
        assert (first is SolveResult.SAT) == expected
        exported = solver.to_cnf()
        check = CDCLSolver(chrono=False, inprocessing=False)
        check.add_cnf(exported)
        assert (check.solve() is SolveResult.SAT) == expected


# --------------------------------------------------------------------------- #
# Differential soundness
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(12))
def test_aggressive_chrono_agrees_with_chrono_off(seed):
    cnf = random_cnf(random.Random(6200 + seed))
    expected = brute_force_satisfiable(cnf)
    aggressive = CDCLSolver(chrono_threshold=1, inprocess_interval=1)
    plain = CDCLSolver(chrono=False, inprocessing=False)
    for solver in (aggressive, plain):
        solver.add_cnf(cnf)
        result = solver.solve()
        assert (result is SolveResult.SAT) == expected
        if result is SolveResult.SAT:
            assert cnf.evaluate(solver.model())


@pytest.mark.parametrize("seed", range(8))
def test_incremental_assumption_reuse_survives_inprocessing(seed):
    """Probing under assumptions after inprocessing rounds must keep
    answering like a fresh chrono-off solver — learned-clause surgery must
    never leak into assumption-level semantics."""
    rng = random.Random(7300 + seed)
    cnf = random_cnf(rng, n_vars=7, density=4.0)
    solver = CDCLSolver(chrono_threshold=1, inprocess_interval=1)
    solver.add_cnf(cnf)
    solver.solve()
    for _ in range(3):
        assumptions = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, cnf.num_vars + 1), 2)
        ]
        fresh = CDCLSolver(chrono=False, inprocessing=False)
        fresh.add_cnf(cnf)
        assert solver.solve(assumptions=assumptions) is fresh.solve(
            assumptions=assumptions
        )


def test_chrono_respects_resource_limits():
    solver = CDCLSolver(chrono_threshold=1, inprocess_interval=1)
    solver.add_cnf(php_cnf(7, 6))
    assert solver.solve(max_conflicts=5) is SolveResult.UNKNOWN
    # The solver stays usable after an interrupted probe.
    assert solver.solve() is SolveResult.UNSAT


# --------------------------------------------------------------------------- #
# Statistics rate guards (the solve_seconds == 0 satellite)
# --------------------------------------------------------------------------- #
def test_statistics_rates_are_zero_before_any_solve():
    stats = SolverStatistics()
    stats.propagations = 1000
    stats.conflicts = 10
    assert stats.propagations_per_second == 0.0
    assert stats.conflicts_per_second == 0.0


def test_statistics_rates_stay_finite_on_instant_solves():
    stats = SolverStatistics()
    stats.propagations = 1000
    stats.conflicts = 10
    stats.solve_seconds = 5e-10  # below clock granularity, but non-zero
    assert stats.propagations_per_second > 0
    assert stats.propagations_per_second != float("inf")
    assert stats.conflicts_per_second != float("inf")
