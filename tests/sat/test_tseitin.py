"""Tests for the Tseitin gate encoder."""

import itertools


from repro.sat import CNF, CDCLSolver, SolveResult, TseitinEncoder


def all_models(solver_factory, n_inputs):
    """Yield all combinations of input truth values."""
    return itertools.product([False, True], repeat=n_inputs)


def check_gate(gate_builder, reference, n_inputs):
    """Verify that a Tseitin gate matches its truth-table *reference*.

    For every input combination the gate output is forced to both
    polarities; exactly the polarity agreeing with the reference function
    must be satisfiable.
    """
    for bits in itertools.product([False, True], repeat=n_inputs):
        for forced in (True, False):
            solver = CDCLSolver()
            enc = TseitinEncoder(solver)
            inputs = [solver.new_var() for _ in range(n_inputs)]
            out = gate_builder(enc, inputs)
            for var, value in zip(inputs, bits):
                solver.add_clause([var if value else -var])
            solver.add_clause([out if forced else -out])
            result = solver.solve()
            expected = reference(*bits) == forced
            assert (result is SolveResult.SAT) == expected, (bits, forced)


def test_and_gate_truth_table():
    check_gate(lambda enc, ins: enc.AND(ins), lambda a, b: a and b, 2)


def test_and_gate_three_inputs():
    check_gate(lambda enc, ins: enc.AND(ins), lambda a, b, c: a and b and c, 3)


def test_or_gate_truth_table():
    check_gate(lambda enc, ins: enc.OR(ins), lambda a, b: a or b, 2)


def test_xor_gate_truth_table():
    check_gate(lambda enc, ins: enc.XOR(ins[0], ins[1]), lambda a, b: a != b, 2)


def test_iff_gate_truth_table():
    check_gate(lambda enc, ins: enc.IFF(ins[0], ins[1]), lambda a, b: a == b, 2)


def test_implies_gate_truth_table():
    check_gate(
        lambda enc, ins: enc.IMPLIES(ins[0], ins[1]), lambda a, b: (not a) or b, 2
    )


def test_ite_gate_truth_table():
    check_gate(
        lambda enc, ins: enc.ITE(ins[0], ins[1], ins[2]),
        lambda c, t, e: t if c else e,
        3,
    )


def test_not_gate():
    cnf = CNF()
    enc = TseitinEncoder(cnf)
    v = cnf.new_var()
    assert enc.NOT(v) == -v
    assert enc.NOT(-v) == v


def test_constant_literals():
    solver = CDCLSolver()
    enc = TseitinEncoder(solver)
    t = enc.true_literal()
    f = enc.false_literal()
    assert f == -t
    solver.add_clause([t])
    assert solver.solve() is SolveResult.SAT
    assert solver.model()[abs(t)] is True


def test_and_with_empty_input_is_true():
    solver = CDCLSolver()
    enc = TseitinEncoder(solver)
    out = enc.AND([])
    solver.add_clause([out])
    assert solver.solve() is SolveResult.SAT


def test_and_with_contradictory_inputs_is_false():
    solver = CDCLSolver()
    enc = TseitinEncoder(solver)
    v = solver.new_var()
    out = enc.AND([v, -v])
    solver.add_clause([out])
    assert solver.solve() is SolveResult.UNSAT


def test_gate_caching_reuses_output():
    cnf = CNF()
    enc = TseitinEncoder(cnf)
    a, b = cnf.new_var(), cnf.new_var()
    out1 = enc.AND([a, b])
    out2 = enc.AND([b, a])
    assert out1 == out2


def test_ite_same_branches_shortcut():
    cnf = CNF()
    enc = TseitinEncoder(cnf)
    c, x = cnf.new_var(), cnf.new_var()
    assert enc.ITE(c, x, x) == x


def test_assert_true_and_clause():
    solver = CDCLSolver()
    enc = TseitinEncoder(solver)
    a, b = solver.new_var(), solver.new_var()
    enc.assert_true(a)
    enc.assert_clause([-a, b])
    assert solver.solve() is SolveResult.SAT
    model = solver.model()
    assert model[a] and model[b]
