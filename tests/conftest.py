"""Shared fixtures for the test suite."""

import pathlib

import pytest

#: Absolute path of the package sources, injected into fake solver scripts
#: so the subprocess can reuse the in-process CDCL core.
_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

#: A fake external SAT solver speaking the competition convention (10/20
#: exit codes, ``s``/``v`` lines, comment chatter that must not be parsed
#: as a model).  Solving is deferred to the in-process CDCL core, so the
#: ``dimacs-subprocess`` backend can be exercised end-to-end — through the
#: real subprocess machinery — without any system solver.
FAKE_COMPETITION_SOLVER = f"""#!/usr/bin/env python3
import sys
sys.path.insert(0, {_SRC!r})
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolveResult

cnf = CNF.from_dimacs(open(sys.argv[1]).read())
solver = CDCLSolver()
solver.add_cnf(cnf)
result = solver.solve()
print("c fake competition-style SAT solver")
print("c 12 34 decoy-statistics 56")
if result is SolveResult.SAT:
    model = solver.model()
    lits = [v if model.get(v, False) else -v for v in range(1, cnf.num_vars + 1)]
    print("s SATISFIABLE")
    print("v " + " ".join(map(str, lits)) + " 0")
    sys.exit(10)
print("s UNSATISFIABLE")
sys.exit(20)
"""

#: The same fake solver speaking the minisat/glucose result-file convention:
#: the model goes to the file named by the second argument, stdout carries
#: only chatter.  Install it under a ``minisat*`` basename so the backend
#: selects the convention.
FAKE_RESULT_FILE_SOLVER = f"""#!/usr/bin/env python3
import sys
sys.path.insert(0, {_SRC!r})
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver, SolveResult

cnf = CNF.from_dimacs(open(sys.argv[1]).read())
solver = CDCLSolver()
solver.add_cnf(cnf)
result = solver.solve()
with open(sys.argv[2], "w") as out:
    if result is SolveResult.SAT:
        model = solver.model()
        lits = [v if model.get(v, False) else -v for v in range(1, cnf.num_vars + 1)]
        out.write("SAT\\n" + " ".join(map(str, lits)) + " 0\\n")
    else:
        out.write("UNSAT\\n")
print("this solver prints chatter on stdout, not the model")
sys.exit(10 if result is SolveResult.SAT else 20)
"""

_FAKE_SOLVER_STYLES = {
    "competition": FAKE_COMPETITION_SOLVER,
    "result-file": FAKE_RESULT_FILE_SOLVER,
}


@pytest.fixture
def write_fake_solver(tmp_path):
    """Factory writing an executable fake solver script into ``tmp_path``."""

    def write(name: str, style: str = "competition") -> pathlib.Path:
        script = tmp_path / name
        script.write_text(_FAKE_SOLVER_STYLES[style])
        script.chmod(0o755)
        return script

    return write


@pytest.fixture
def fake_sat_solver(tmp_path, monkeypatch, write_fake_solver):
    """Install a competition-style fake solver binary for the whole test."""
    from repro.sat.backend import SOLVER_BINARY_ENV

    script = write_fake_solver("fake-sat-solver")
    monkeypatch.setenv(SOLVER_BINARY_ENV, str(script))
    return script
