"""End-to-end integration tests across the whole stack.

These tests exercise the exact pipeline the paper describes: QEC code ->
state-preparation circuit -> zoned scheduling -> validation -> metrics, and
verify cross-cutting invariants that no single module can check on its own.
"""

import pytest

from repro.arch import bottom_storage_layout, evaluation_layouts, reduced_layout
from repro.core import (
    SchedulingProblem,
    SMTScheduler,
    StructuredScheduler,
    validate_schedule,
)
from repro.metrics import approximate_success_probability
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit
from repro.qec.verification import prepares_logical_zero
from repro.simulator import TableauSimulator


@pytest.mark.parametrize("code_name", available_codes())
def test_full_pipeline_per_code(code_name):
    """Code -> circuit -> schedule -> validation -> ASP, for every code."""
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    assert prepares_logical_zero(prep, code)

    problem = SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    schedule = StructuredScheduler().schedule(problem)
    validate_schedule(schedule)

    breakdown = approximate_success_probability(schedule, prep)
    assert 0 < breakdown.asp < 1
    assert breakdown.timing.total_ms > 0


def test_scheduled_gates_reproduce_the_logical_state():
    """Replaying the schedule's CZ gates (in schedule order) still prepares
    the logical zero state — scheduling only reorders commuting CZ gates."""
    code = get_code("steane")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    )
    simulator = TableauSimulator(code.num_qubits)
    for qubit in range(code.num_qubits):
        simulator.h(qubit)
    for a, b in schedule.executed_gates:
        simulator.cz(a, b)
    from repro.circuit.gates import Gate

    for qubit, kinds in prep.local_corrections.items():
        for kind in kinds:
            simulator.apply_gate(Gate(kind, (qubit,)))
    for stabilizer in code.stabilizers:
        assert simulator.is_stabilized_by(stabilizer)
    for logical in code.logical_z_operators():
        assert simulator.is_stabilized_by(logical)


def test_every_layout_executes_every_gate_exactly_once():
    code = get_code("tetrahedral")
    prep = state_preparation_circuit(code)
    for architecture in evaluation_layouts().values():
        schedule = StructuredScheduler().schedule(
            SchedulingProblem.from_circuit(architecture, prep)
        )
        assert sorted(schedule.executed_gates) == sorted(prep.cz_gates)


def test_smt_and_structured_agree_on_feasibility():
    """Both backends produce validator-approved schedules of the same gates."""
    layout = reduced_layout("bottom", x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)
    gates = [(0, 1), (1, 2)]
    problem = SchedulingProblem.from_gates(layout, 3, gates)
    smt_result = SMTScheduler(time_limit_per_instance=120).schedule(problem)
    structured = StructuredScheduler().schedule(problem)
    assert smt_result.found
    for schedule in (smt_result.schedule, structured):
        report = validate_schedule(schedule, raise_on_error=False)
        assert report.ok
        assert sorted(schedule.executed_gates) == gates
    # And the optimal backend's ASP is at least as good.
    asp_smt = approximate_success_probability(smt_result.schedule).asp
    asp_structured = approximate_success_probability(structured).asp
    assert asp_smt >= asp_structured - 1e-9
