"""Unit tests for the deadline/budget governance primitive.

Every test drives the :class:`~repro.core.budget.Deadline` with an
injectable fake clock, so the accounting, slicing, and conflict-budget
composition are exercised deterministically — no sleeps, no wall-clock
flakiness.
"""

import pickle

import pytest

from repro.core.budget import Deadline, DeadlineExceeded


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_unbounded_deadline_never_expires():
    deadline = Deadline.unbounded()
    assert not deadline.bounded
    assert deadline.remaining() is None
    assert not deadline.expired()
    deadline.check("anything")  # must not raise


def test_after_none_is_unbounded():
    assert not Deadline.after(None).bounded


def test_remaining_shrinks_with_the_clock_and_floors_at_zero():
    clock = FakeClock()
    deadline = Deadline.after(10.0, clock=clock)
    assert deadline.remaining() == pytest.approx(10.0)
    clock.advance(4.0)
    assert deadline.remaining() == pytest.approx(6.0)
    assert not deadline.expired()
    clock.advance(100.0)
    assert deadline.remaining() == 0.0
    assert deadline.expired()


def test_check_raises_with_context_after_expiry():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    deadline.check("probe")
    clock.advance(2.0)
    with pytest.raises(DeadlineExceeded, match="probe"):
        deadline.check("probe")


def test_slice_takes_the_tighter_of_cap_and_remaining():
    clock = FakeClock()
    deadline = Deadline.after(10.0, clock=clock)
    # Remaining dominates a looser per-probe cap.
    assert deadline.slice(30.0) == pytest.approx(10.0)
    # A tighter per-probe cap dominates the remaining time.
    assert deadline.slice(2.0) == pytest.approx(2.0)
    # No per-probe cap: the remaining time is the budget.
    assert deadline.slice(None) == pytest.approx(10.0)
    # Unbounded deadline passes the cap through (None stays None).
    assert Deadline.unbounded().slice(5.0) == 5.0
    assert Deadline.unbounded().slice(None) is None


def test_slice_of_an_expired_deadline_is_zero():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    clock.advance(5.0)
    assert deadline.slice(30.0) == 0.0


def test_compose_conflicts_scales_by_remaining_fraction():
    clock = FakeClock()
    deadline = Deadline.after(10.0, clock=clock)
    # Remaining covers the whole per-probe window: budget unchanged.
    assert deadline.compose_conflicts(1000, per_probe=10.0) == 1000
    clock.advance(7.5)  # 2.5s of a 10s window left -> quarter budget
    assert deadline.compose_conflicts(1000, per_probe=10.0) == 250
    clock.advance(2.499)  # nearly nothing left -> floored at 1
    assert deadline.compose_conflicts(1000, per_probe=10.0) >= 1


def test_compose_conflicts_passthrough_cases():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    assert deadline.compose_conflicts(None, per_probe=10.0) is None
    # Nothing to scale against without a per-probe time cap.
    assert deadline.compose_conflicts(1000, per_probe=None) == 1000
    assert Deadline.unbounded().compose_conflicts(1000, per_probe=10.0) == 1000


def test_pickle_drops_the_custom_clock_and_keeps_the_instant():
    clock = FakeClock(now=100.0)
    deadline = Deadline.after(5.0, clock=clock)
    restored = pickle.loads(pickle.dumps(deadline))
    # The absolute instant survives; the clock reverts to time.monotonic
    # (the only clock meaningful across processes).
    assert restored.expires_at == deadline.expires_at
    assert restored.remaining() is not None


def test_pickled_unbounded_deadline_stays_unbounded():
    restored = pickle.loads(pickle.dumps(Deadline.unbounded()))
    assert not restored.bounded
    assert restored.remaining() is None
