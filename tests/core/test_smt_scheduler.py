"""Tests for the SMT formulation and the optimal scheduler.

The instances are intentionally tiny (2-4 qubits on reduced architectures):
the encoding is identical to the full-size one, and the pure-Python SAT core
decides these within seconds.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.encoding import encode_instance
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.smt import CheckResult


def tiny_layout(kind):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


def tiny_problem(kind, num_qubits, gates):
    return SchedulingProblem.from_gates(tiny_layout(kind), num_qubits, gates)


# --------------------------------------------------------------------------- #
# Fixed-stage encodings
# --------------------------------------------------------------------------- #
def test_single_gate_single_stage_is_sat():
    instance = encode_instance(tiny_layout("none"), 2, [(0, 1)], num_stages=1)
    assert instance.check().is_sat()
    schedule = instance.extract_schedule()
    validate_schedule(schedule, require_shielding=False)
    assert schedule.num_rydberg_stages == 1
    assert schedule.executed_gates == [(0, 1)]


def test_two_gates_sharing_a_qubit_need_two_stages():
    layout = tiny_layout("none")
    too_small = encode_instance(layout, 3, [(0, 1), (1, 2)], num_stages=1)
    assert too_small.check().is_unsat()
    enough = encode_instance(layout, 3, [(0, 1), (1, 2)], num_stages=2)
    assert enough.check().is_sat()


def test_shielding_requires_extra_stage_on_zoned_layout():
    """The paper's Fig. 2 effect: the zoned layout needs a transfer stage."""
    layout = tiny_layout("bottom")
    two_stages = encode_instance(layout, 3, [(0, 1), (1, 2)], num_stages=2)
    assert two_stages.check().is_unsat()
    three_stages = encode_instance(layout, 3, [(0, 1), (1, 2)], num_stages=3)
    assert three_stages.check().is_sat()
    schedule = three_stages.extract_schedule()
    validate_schedule(schedule)
    assert schedule.num_rydberg_stages == 2
    assert schedule.num_transfer_stages == 1
    assert schedule.total_unshielded_idle() == 0


def test_disjoint_gates_share_a_stage():
    instance = encode_instance(tiny_layout("none"), 4, [(0, 1), (2, 3)], num_stages=1)
    assert instance.check().is_sat()
    schedule = instance.extract_schedule()
    assert schedule.num_rydberg_stages == 1
    assert len(schedule.stages[0].gates) == 2


def test_invalid_gate_rejected():
    with pytest.raises(ValueError):
        encode_instance(tiny_layout("none"), 2, [(0, 0)], num_stages=1)
    with pytest.raises(ValueError):
        SchedulingProblem.from_gates(tiny_layout("none"), 2, [(0, 0)])


def test_unknown_result_with_tiny_conflict_budget():
    instance = encode_instance(tiny_layout("bottom"), 3, [(0, 1), (1, 2)], num_stages=3)
    result = instance.check(max_conflicts=1)
    assert result in (CheckResult.UNKNOWN, CheckResult.SAT, CheckResult.UNSAT)


# --------------------------------------------------------------------------- #
# Iterative-deepening scheduler
# --------------------------------------------------------------------------- #
def test_scheduler_finds_minimum_stage_count():
    scheduler = SMTScheduler(time_limit_per_instance=120)
    report = scheduler.schedule(tiny_problem("none", 3, [(0, 1), (1, 2)]))
    assert report.found and report.optimal
    assert report.schedule.num_stages == 2
    assert report.stages_tried == [2]
    assert report.strategy == "linear"


def test_scheduler_zoned_layout_adds_transfer_stage():
    scheduler = SMTScheduler(time_limit_per_instance=120)
    report = scheduler.schedule(tiny_problem("bottom", 3, [(0, 1), (1, 2)]))
    assert report.found and report.optimal
    assert report.schedule.num_stages == 3
    assert report.schedule.num_transfer_stages == 1


def test_scheduler_respects_max_stages():
    scheduler = SMTScheduler(max_stages=1)
    report = scheduler.schedule(tiny_problem("bottom", 3, [(0, 1), (1, 2)]))
    assert not report.found
    assert report.schedule is None


def test_scheduler_rejects_raw_gate_lists():
    scheduler = SMTScheduler()
    with pytest.raises(TypeError):
        scheduler.schedule(2, [(0, 1)])


def test_scheduler_statistics_and_bound():
    problem = tiny_problem("none", 4, [(0, 1), (1, 2), (1, 3)])
    assert problem.lower_bound() == 3
    report = SMTScheduler(time_limit_per_instance=120).schedule(
        tiny_problem("none", 2, [(0, 1)])
    )
    assert report.statistics.get("sat_clauses", 0) > 0
    assert report.solver_seconds >= 0.0
    assert report.lower_bound == 1


# --------------------------------------------------------------------------- #
# Backend agreement
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "gates, num_qubits",
    [
        ([(0, 1)], 2),
        ([(0, 1), (2, 3)], 4),
        ([(0, 1), (1, 2)], 3),
    ],
)
def test_smt_never_needs_more_rydberg_stages_than_structured(gates, num_qubits):
    """The optimal backend is at least as good as the constructive one."""
    problem = tiny_problem("bottom", num_qubits, gates)
    smt = SMTScheduler(time_limit_per_instance=120).schedule(problem)
    structured = StructuredScheduler().schedule(problem)
    assert smt.found
    assert smt.schedule.num_rydberg_stages <= structured.num_rydberg_stages
    assert smt.schedule.num_stages <= structured.num_stages
