"""Tests for the incremental minimum-stage search.

The assumption-guarded stage extension must return the same minimal stage
count — and validator-clean schedules — as the cold-start path on every
instance, while reusing one SAT solver across the whole search.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.encoding import encode_incremental_instance
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule
from repro.evaluation.runner import SMT_INSTANCES
from repro.qec import get_code
from repro.qec.state_prep import state_preparation_circuit
from repro.smt import CheckResult, Solver


def tiny_layout(kind):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


def steane_subinstance(qubits=(0, 1, 2, 4, 5)):
    """Gates of the Steane prep circuit restricted to *qubits*, compacted."""
    prep = state_preparation_circuit(get_code("steane"))
    keep = set(qubits)
    remap = {q: i for i, q in enumerate(sorted(keep))}
    gates = [
        (remap[a], remap[b]) for a, b in prep.cz_gates if a in keep and b in keep
    ]
    assert gates, "sub-instance must keep at least one gate"
    return len(remap), gates


INSTANCES = {**SMT_INSTANCES, "steane-sub": steane_subinstance()}


# --------------------------------------------------------------------------- #
# Agreement with the cold-start path
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(INSTANCES))
def test_incremental_matches_coldstart(layout_kind, instance_name):
    num_qubits, gates = INSTANCES[instance_name]
    problem = SchedulingProblem.from_gates(tiny_layout(layout_kind), num_qubits, gates)
    results = {}
    for incremental in (True, False):
        scheduler = SMTScheduler(
            time_limit_per_instance=300, incremental=incremental
        )
        report = scheduler.schedule(problem)
        assert report.found and report.optimal
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        results[incremental] = report
    assert results[True].schedule.num_stages == results[False].schedule.num_stages
    assert results[True].stages_tried == results[False].stages_tried
    assert (
        results[True].schedule.num_rydberg_stages
        == results[False].schedule.num_rydberg_stages
    )


def test_incremental_scheduler_respects_max_stages():
    scheduler = SMTScheduler(max_stages=1, incremental=True)
    report = scheduler.schedule(
        SchedulingProblem.from_gates(tiny_layout("bottom"), 3, [(0, 1), (1, 2)])
    )
    assert not report.found
    assert report.schedule is None


def test_incremental_capacity_rebuild_still_optimal(monkeypatch):
    """Outgrowing the initial gate-stage capacity rebuilds transparently.

    The v2 analytic bounds start the triangle walk at 4, so a scheduler run
    no longer outgrows even a minimal headroom; the rebuild mechanics are
    driven through the shared ``SearchContext`` directly instead.
    """
    import repro.core.strategies.base as strategies_base
    from repro.core.strategies import SearchLimits
    from repro.core.strategies.base import SearchContext

    monkeypatch.setattr(strategies_base, "_CAPACITY_HEADROOM", 1)
    problem = SchedulingProblem.from_gates(
        tiny_layout("bottom"), 3, [(0, 1), (1, 2), (0, 2)]
    )
    context = SearchContext(problem, SearchLimits(time_limit=300))
    assert context.decide(4) is CheckResult.UNSAT
    first_instance = context.instance
    assert first_instance.max_stages < 7  # headroom of 1 above the horizon
    # Deciding beyond the capacity must rebuild a fresh, larger instance and
    # still answer correctly on both sides of the optimum (5 stages).
    assert context.decide(7) is CheckResult.SAT
    assert context.instance is not first_instance
    assert context.decide(5) is CheckResult.SAT
    schedule = context.extract(5)
    assert schedule.num_stages == 5
    validate_schedule(schedule, require_shielding=True)


# --------------------------------------------------------------------------- #
# Instance-level mechanics
# --------------------------------------------------------------------------- #
def test_incremental_instance_extends_in_place():
    architecture = tiny_layout("bottom")
    instance = encode_incremental_instance(
        architecture, 3, [(0, 1), (1, 2)], num_stages=2, max_stages=6
    )
    solver = instance.solver
    assert solver.incremental
    assert instance.check(time_limit=300) is CheckResult.UNSAT
    clauses_after_first = solver.statistics()["sat_clauses"]
    instance.extend_to(3)
    assert instance.solver is solver, "extension must reuse the same solver"
    assert instance.check(time_limit=300) is CheckResult.SAT
    # The second check only encoded the delta on top of the existing clauses.
    assert solver.statistics()["sat_clauses"] > clauses_after_first
    schedule = instance.extract_schedule()
    validate_schedule(schedule)
    assert schedule.num_stages == 3


def test_incremental_instance_decides_smaller_horizons_in_place():
    """A grown instance still decides earlier horizons via assumptions."""
    instance = encode_incremental_instance(
        tiny_layout("bottom"), 3, [(0, 1), (1, 2)], num_stages=4, max_stages=6
    )
    assert instance.check(time_limit=300, horizon=4) is CheckResult.SAT
    assert instance.check(time_limit=300, horizon=2) is CheckResult.UNSAT
    assert instance.check(time_limit=300, horizon=3) is CheckResult.SAT
    schedule = instance.extract_schedule(horizon=3)
    validate_schedule(schedule)
    assert schedule.num_stages == 3
    with pytest.raises(ValueError):
        instance.check(horizon=5)
    with pytest.raises(ValueError):
        instance.check(horizon=0)


def test_incremental_instance_rejects_growth_beyond_capacity():
    instance = encode_incremental_instance(
        tiny_layout("none"), 2, [(0, 1)], num_stages=1, max_stages=2
    )
    instance.extend_to(2)
    with pytest.raises(ValueError):
        instance.extend_to(3)


def test_extend_to_is_idempotent():
    instance = encode_incremental_instance(
        tiny_layout("none"), 2, [(0, 1)], num_stages=1, max_stages=4
    )
    instance.extend_to(1)
    assert instance.num_stages == 1
    assert instance.check(time_limit=300) is CheckResult.SAT


# --------------------------------------------------------------------------- #
# Incremental SMT solver facade
# --------------------------------------------------------------------------- #
def test_incremental_solver_reuses_state_across_checks():
    solver = Solver(incremental=True)
    x = solver.int_var("x", 0, 7)
    flag = solver.bool_var("flag")
    solver.add(flag.implies(x >= 5))
    assert solver.check(assumptions=[flag]).is_sat()
    assert solver.model()[x] >= 5
    # The assumption is not asserted: without it, x is unconstrained.
    solver.add(x <= 4)
    assert solver.check().is_sat()
    assert solver.model()[x] <= 4
    # Under the assumption the combined constraints are now contradictory.
    assert solver.check(assumptions=[flag]).is_unsat()
    # ... but the formula itself stays satisfiable.
    assert solver.check().is_sat()


def test_incremental_solver_rejects_push_pop():
    solver = Solver(incremental=True)
    with pytest.raises(RuntimeError):
        solver.push()
    with pytest.raises(RuntimeError):
        solver.pop()


def test_coldstart_solver_supports_assumptions_too():
    solver = Solver()
    a = solver.bool_var("a")
    b = solver.bool_var("b")
    solver.add(a | b)
    assert solver.check(assumptions=[~a, ~b]).is_unsat()
    assert solver.check(assumptions=[~a]).is_sat()
    assert solver.model()[b] is True
